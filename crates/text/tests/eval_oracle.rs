//! Property test: the indexed evaluator agrees with a naive per-document
//! matcher on randomly generated collections and search expressions.

use proptest::prelude::*;
use textjoin_text::doc::{DocId, Document, TextSchema};
use textjoin_text::expr::{BasicTerm, SearchExpr, TermKind};
use textjoin_text::index::Collection;
use textjoin_text::token::{normalize_phrase, tokenize};

const VOCAB: &[&str] = &["red", "green", "blue", "redgreen", "cyan", "magenta"];

fn word() -> impl Strategy<Value = &'static str> {
    prop::sample::select(VOCAB)
}

#[derive(Debug, Clone)]
struct Spec {
    docs: Vec<(Vec<&'static str>, Vec<&'static str>)>, // (title words, authors)
}

fn spec() -> impl Strategy<Value = Spec> {
    prop::collection::vec(
        (
            prop::collection::vec(word(), 0..5),
            prop::collection::vec(word(), 0..3),
        ),
        1..10,
    )
    .prop_map(|docs| Spec { docs })
}

/// Random expression trees over title/author terms.
fn expr(depth: u32) -> BoxedStrategy<SearchExpr> {
    let leaf = (word(), prop::bool::ANY, 0u8..4).prop_map(|(w, title, kind)| {
        let schema = TextSchema::bibliographic();
        let field = if title {
            schema.field_by_name("title").unwrap()
        } else {
            schema.field_by_name("author").unwrap()
        };
        match kind {
            0 => SearchExpr::term_in(w, field),
            1 => SearchExpr::Term(BasicTerm {
                kind: TermKind::Prefix(w[..2.min(w.len())].to_owned()),
                field: Some(field),
            }),
            2 => SearchExpr::term_in(&format!("{w} {w}"), field), // phrase
            _ => SearchExpr::Near {
                a: BasicTerm::parse_text(w, Some(field)),
                b: BasicTerm::parse_text("blue", Some(field)),
                distance: 2,
            },
        }
    });
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(SearchExpr::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(SearchExpr::or),
            (inner.clone(), inner).prop_map(|(a, b)| SearchExpr::AndNot(
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
    .boxed()
}

fn build(spec: &Spec) -> Collection {
    let schema = TextSchema::bibliographic();
    let ti = schema.field_by_name("title").unwrap();
    let au = schema.field_by_name("author").unwrap();
    let mut coll = Collection::new(schema);
    for (title, authors) in &spec.docs {
        let mut d = Document::new();
        if !title.is_empty() {
            d.push(ti, title.join(" "));
        }
        for a in authors {
            d.push(au, *a);
        }
        coll.add_document(d);
    }
    coll
}

/// Naive matcher: no index, no set ops — per-document recursion.
fn naive_match(doc: &Document, e: &SearchExpr) -> bool {
    match e {
        SearchExpr::Term(t) => naive_term(doc, t),
        SearchExpr::Near { a, b, distance } => {
            // Word-only proximity within a single field value.
            let (Some(wa), Some(wb)) = (term_word(a), term_word(b)) else {
                return false;
            };
            let fields: Vec<_> = match (a.field, b.field) {
                (Some(f), Some(g)) if f == g => vec![f],
                _ => return false,
            };
            for f in fields {
                for v in doc.values(f) {
                    let toks = tokenize(v);
                    for x in toks.iter().filter(|t| t.word == wa) {
                        for y in toks.iter().filter(|t| t.word == wb) {
                            let gap = i64::from(y.pos) - i64::from(x.pos);
                            if gap.abs() <= i64::from(*distance) {
                                return true;
                            }
                        }
                    }
                }
            }
            false
        }
        SearchExpr::And(cs) => cs.iter().all(|c| naive_match(doc, c)),
        SearchExpr::Or(cs) => cs.iter().any(|c| naive_match(doc, c)),
        SearchExpr::AndNot(a, b) => naive_match(doc, a) && !naive_match(doc, b),
    }
}

fn term_word(t: &BasicTerm) -> Option<String> {
    match &t.kind {
        TermKind::Word(w) => Some(w.clone()),
        TermKind::Phrase(ws) => ws.first().cloned(),
        TermKind::Prefix(_) => None,
    }
}

fn naive_term(doc: &Document, t: &BasicTerm) -> bool {
    let schema = TextSchema::bibliographic();
    let fields: Vec<_> = match t.field {
        Some(f) => vec![f],
        None => schema.iter().map(|(id, _)| id).collect(),
    };
    for f in fields {
        for v in doc.values(f) {
            let toks = tokenize(v);
            let ok = match &t.kind {
                TermKind::Word(w) => toks.iter().any(|tk| &tk.word == w),
                TermKind::Prefix(p) => toks.iter().any(|tk| tk.word.starts_with(p.as_str())),
                TermKind::Phrase(ws) => {
                    let words: Vec<&str> = toks.iter().map(|tk| tk.word.as_str()).collect();
                    let ned: Vec<&str> = ws.iter().map(String::as_str).collect();
                    !ned.is_empty()
                        && words.len() >= ned.len()
                        && words.windows(ned.len()).any(|w| w == ned.as_slice())
                }
            };
            if ok {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn evaluator_matches_naive_oracle(s in spec(), e in expr(3)) {
        let coll = build(&s);
        let out = textjoin_text::eval::evaluate(&coll, &e);
        let got: std::collections::BTreeSet<u32> =
            out.docs.ids().iter().map(|d| d.0).collect();
        let mut expected = std::collections::BTreeSet::new();
        for i in 0..coll.doc_count() {
            let doc = coll.document(DocId(i as u32)).unwrap();
            if naive_match(doc, &e) {
                expected.insert(i as u32);
            }
        }
        prop_assert_eq!(got, expected, "expr: {:?}", e);
    }

    #[test]
    fn phrase_normalization_consistent(s in spec(), a in word(), b in word()) {
        // Searching "A B" equals searching the normalized phrase.
        let coll = build(&s);
        let schema = coll.schema().clone();
        let ti = schema.field_by_name("title").unwrap();
        let raw = format!("{} {}", a.to_uppercase(), b);
        let e1 = SearchExpr::term_in(&raw, ti);
        let normalized = normalize_phrase(&raw).join(" ");
        let e2 = SearchExpr::term_in(&normalized, ti);
        let r1 = textjoin_text::eval::evaluate(&coll, &e1);
        let r2 = textjoin_text::eval::evaluate(&coll, &e2);
        prop_assert_eq!(r1.docs, r2.docs);
    }
}
