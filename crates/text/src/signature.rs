//! Signature files — the other classic text access method (Section 2.1).
//!
//! The paper surveys two access methods for Boolean text systems: inverted
//! indexes and signature files, and "concentrates on inversion-based
//! systems" because inversion wins at scale [Fal92]. This module implements
//! the signature-file alternative so that claim is testable in this
//! codebase: each document gets a fixed-width bit signature — the
//! superimposed hash codes of its words — and a conjunctive word query is
//! answered by scanning all signatures for a superset of the query's bits,
//! then eliminating false positives against the stored documents.
//!
//! The bench suite compares the two backends; the equivalence tests pin
//! that they answer conjunctive word searches identically.

use crate::doc::{DocId, Document, FieldId, TextSchema};
use crate::token::{normalize_word, tokenize};

/// Bits set per word (the classic `k` parameter of superimposed coding).
const BITS_PER_WORD: usize = 3;

/// A per-field, per-document signature store.
#[derive(Debug, Clone)]
pub struct SignatureIndex {
    schema: TextSchema,
    /// Signature width in 64-bit blocks.
    blocks: usize,
    /// `sigs[doc][field]` → signature blocks.
    sigs: Vec<Vec<Vec<u64>>>,
    docs: Vec<Document>,
}

fn hash_word(word: &str, salt: u64) -> u64 {
    // FNV-1a with a salt — deterministic across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in word.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SignatureIndex {
    /// Creates an empty signature index with the given signature width
    /// (rounded up to a multiple of 64 bits).
    pub fn new(schema: TextSchema, signature_bits: usize) -> Self {
        Self {
            schema,
            blocks: signature_bits.div_ceil(64).max(1),
            sigs: Vec::new(),
            docs: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &TextSchema {
        &self.schema
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Signature width in bits.
    pub fn signature_bits(&self) -> usize {
        self.blocks * 64
    }

    fn word_bits(&self, word: &str) -> Vec<(usize, u64)> {
        let nbits = self.signature_bits() as u64;
        (0..BITS_PER_WORD)
            .map(|k| {
                let bit = hash_word(word, k as u64) % nbits;
                ((bit / 64) as usize, 1u64 << (bit % 64))
            })
            .collect()
    }

    /// Adds a document, building one signature per field.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.docs.len() as u32);
        let mut per_field = vec![vec![0u64; self.blocks]; self.schema.len()];
        for (field, values) in doc.iter() {
            for value in values {
                for tok in tokenize(value) {
                    for (block, mask) in self.word_bits(&tok.word) {
                        per_field[field.0 as usize][block] |= mask;
                    }
                }
            }
        }
        self.sigs.push(per_field);
        self.docs.push(doc);
        id
    }

    /// The stored document.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.0 as usize)
    }

    /// Candidate documents for a conjunctive word query: every signature
    /// containing all the query bits. Contains **false positives**; no
    /// false negatives.
    pub fn candidates(&self, terms: &[(String, FieldId)]) -> Vec<DocId> {
        // Build the query signature per field.
        let mut query = vec![vec![0u64; self.blocks]; self.schema.len()];
        for (word, field) in terms {
            let w = normalize_word(word);
            for (block, mask) in self.word_bits(&w) {
                query[field.0 as usize][block] |= mask;
            }
        }
        let mut out = Vec::new();
        'docs: for (i, sig) in self.sigs.iter().enumerate() {
            for f in 0..self.schema.len() {
                for b in 0..self.blocks {
                    if sig[f][b] & query[f][b] != query[f][b] {
                        continue 'docs;
                    }
                }
            }
            out.push(DocId(i as u32));
        }
        out
    }

    /// Exact conjunctive word search: candidates filtered by verifying each
    /// word against the stored document (false-positive elimination).
    /// Returns `(matches, candidates_scanned)` so callers can measure the
    /// false-positive rate.
    pub fn search_conjunctive(&self, terms: &[(String, FieldId)]) -> (Vec<DocId>, usize) {
        let cands = self.candidates(terms);
        let scanned = cands.len();
        let matches = cands
            .into_iter()
            .filter(|&id| {
                let doc = self.document(id).expect("candidate ids are valid");
                terms.iter().all(|(word, field)| {
                    let w = normalize_word(word);
                    doc.values(*field)
                        .iter()
                        .any(|v| tokenize(v).iter().any(|t| t.word == w))
                })
            })
            .collect();
        (matches, scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SearchExpr;
    use crate::index::Collection;

    fn fixture() -> (SignatureIndex, Collection, FieldId, FieldId) {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut sig = SignatureIndex::new(schema.clone(), 256);
        let mut inv = Collection::new(schema);
        let docs = [
            ("belief update semantics", "Radhika"),
            ("text retrieval systems", "Gravano"),
            ("text indexing", "Kao"),
            ("query optimization", "Garcia"),
        ];
        for (t, a) in docs {
            let d = Document::new().with(ti, t).with(au, a);
            sig.add_document(d.clone());
            inv.add_document(d);
        }
        (sig, inv, ti, au)
    }

    #[test]
    fn no_false_negatives() {
        let (sig, _, ti, _) = fixture();
        let cands = sig.candidates(&[("text".into(), ti)]);
        // doc1 and doc2 must be among candidates (maybe more).
        assert!(cands.contains(&DocId(1)));
        assert!(cands.contains(&DocId(2)));
    }

    #[test]
    fn verification_eliminates_false_positives() {
        let (sig, _, ti, au) = fixture();
        let (matches, scanned) =
            sig.search_conjunctive(&[("text".into(), ti), ("gravano".into(), au)]);
        assert_eq!(matches, vec![DocId(1)]);
        assert!(scanned >= matches.len());
    }

    #[test]
    fn agrees_with_inverted_index_on_conjunctions() {
        let (sig, inv, ti, au) = fixture();
        let queries: Vec<Vec<(String, FieldId)>> = vec![
            vec![("belief".into(), ti)],
            vec![("text".into(), ti)],
            vec![("text".into(), ti), ("kao".into(), au)],
            vec![("missing".into(), ti)],
            vec![("update".into(), ti), ("radhika".into(), au)],
        ];
        for q in queries {
            let (sig_ids, _) = sig.search_conjunctive(&q);
            let expr = SearchExpr::and(
                q.iter()
                    .map(|(w, f)| SearchExpr::term_in(w, *f))
                    .collect(),
            );
            let inv_ids = crate::eval::evaluate(&inv, &expr).docs.ids().to_vec();
            assert_eq!(sig_ids, inv_ids, "query {q:?}");
        }
    }

    #[test]
    fn field_separation() {
        let (sig, _, ti, au) = fixture();
        // 'gravano' is an author, not a title word.
        let (m, _) = sig.search_conjunctive(&[("gravano".into(), ti)]);
        assert!(m.is_empty());
        let (m, _) = sig.search_conjunctive(&[("gravano".into(), au)]);
        assert_eq!(m, vec![DocId(1)]);
    }

    #[test]
    fn narrow_signatures_fill_up() {
        // A deliberately tiny signature saturates, yielding candidates for
        // everything but still zero false negatives after verification.
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let mut sig = SignatureIndex::new(schema, 8); // rounds up to 64
        for i in 0..20 {
            sig.add_document(Document::new().with(ti, format!("word{i} common filler text")));
        }
        let (m, scanned) = sig.search_conjunctive(&[("word7".into(), ti)]);
        assert_eq!(m, vec![DocId(7)]);
        assert!(scanned >= 1);
    }

    #[test]
    fn empty_query_matches_everything() {
        let (sig, _, _, _) = fixture();
        let (m, _) = sig.search_conjunctive(&[]);
        assert_eq!(m.len(), 4);
    }
}
