//! Sorted posting lists and linear-time set operations.
//!
//! In an inverted index (paper, Section 2.1), each word is associated with an
//! inverted list of *postings* recording the docids of documents in which the
//! word appears; a posting may also carry the field and the word position.
//! Lists are kept sorted, so Boolean set operations (and positional phrase /
//! proximity checks) run in time linear in the lengths of the input lists —
//! the assumption under which the paper's processing cost is proportional to
//! the *sum of the lengths of the inverted lists processed* (constant `c_p`).

use crate::doc::{DocId, FieldId};

/// One posting: a word occurrence in a specific field position of a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Document in which the word occurs.
    pub doc: DocId,
    /// Field in which the word occurs.
    pub field: FieldId,
    /// Index of the field value within the (multi-valued) field.
    pub value_idx: u16,
    /// Word position within that field value.
    pub pos: u32,
}

/// A sorted inverted list. Postings are ordered by
/// `(doc, field, value_idx, pos)`; the ordering invariant is maintained by
/// construction (documents are indexed in docid order) and checked in debug
/// builds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a list from pre-sorted postings.
    ///
    /// # Panics
    /// Debug builds panic if `postings` is not sorted.
    pub fn from_sorted(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0] <= w[1]));
        Self { postings }
    }

    /// Appends a posting, which must sort at or after the current tail.
    pub fn push(&mut self, p: Posting) {
        debug_assert!(self.postings.last().is_none_or(|last| *last <= p));
        self.postings.push(p);
    }

    /// Number of postings (the list *length* the cost model charges for).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The raw postings, sorted.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Number of distinct documents in the list.
    pub fn doc_count(&self) -> usize {
        let mut n = 0;
        let mut last: Option<DocId> = None;
        for p in &self.postings {
            if last != Some(p.doc) {
                n += 1;
                last = Some(p.doc);
            }
        }
        n
    }

    /// The distinct, sorted docids in the list.
    pub fn docs(&self) -> DocSet {
        let mut ids = Vec::new();
        for p in &self.postings {
            if ids.last() != Some(&p.doc) {
                ids.push(p.doc);
            }
        }
        DocSet::from_sorted(ids)
    }

    /// Restricts the list to postings in `field`.
    pub fn in_field(&self, field: FieldId) -> PostingList {
        PostingList::from_sorted(
            self.postings
                .iter()
                .filter(|p| p.field == field)
                .copied()
                .collect(),
        )
    }
}

/// A sorted, deduplicated set of docids — the docid-level view on which the
/// Boolean connectives operate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocSet {
    ids: Vec<DocId>,
}

impl DocSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from sorted, deduplicated ids.
    ///
    /// # Panics
    /// Debug builds panic if `ids` is not strictly increasing.
    pub fn from_sorted(ids: Vec<DocId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        Self { ids }
    }

    /// Builds from arbitrary ids (sorts and dedups).
    pub fn from_unsorted(mut ids: Vec<DocId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted ids.
    pub fn ids(&self) -> &[DocId] {
        &self.ids
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: DocId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Set intersection by linear merge.
    pub fn intersect(&self, other: &DocSet) -> DocSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        DocSet::from_sorted(out)
    }

    /// Set union by linear merge.
    pub fn union(&self, other: &DocSet) -> DocSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len() + other.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        DocSet::from_sorted(out)
    }

    /// Set difference `self \ other` by linear merge.
    pub fn difference(&self, other: &DocSet) -> DocSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len());
        while i < self.ids.len() {
            if j >= other.ids.len() {
                out.extend_from_slice(&self.ids[i..]);
                break;
            }
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        DocSet::from_sorted(out)
    }
}

/// Positional join used for phrase and proximity search.
///
/// Returns the docids in which some posting of `a` and some posting of `b`
/// occur in the *same field value* of the same document with
/// `pos(b) - pos(a)` in `[min_gap, max_gap]`. For a two-word phrase,
/// `min_gap = max_gap = 1`; for `near10`, use `[-10, 10]` with
/// `symmetric = true` handled by the caller passing a negative `min_gap`.
pub fn positional_join(a: &PostingList, b: &PostingList, min_gap: i64, max_gap: i64) -> DocSet {
    let mut out = Vec::new();
    let (pa, pb) = (a.postings(), b.postings());
    let mut i = 0;
    let mut j = 0;
    while i < pa.len() && j < pb.len() {
        let ka = (pa[i].doc, pa[i].field, pa[i].value_idx);
        let kb = (pb[j].doc, pb[j].field, pb[j].value_idx);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Same (doc, field, value): scan the two position runs.
                let i_end = pa[i..].iter().take_while(|p| (p.doc, p.field, p.value_idx) == ka).count() + i;
                let j_end = pb[j..].iter().take_while(|p| (p.doc, p.field, p.value_idx) == kb).count() + j;
                'outer: for x in &pa[i..i_end] {
                    for y in &pb[j..j_end] {
                        let gap = i64::from(y.pos) - i64::from(x.pos);
                        if gap >= min_gap && gap <= max_gap {
                            if out.last() != Some(&ka.0) {
                                out.push(ka.0);
                            }
                            break 'outer;
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    DocSet::from_unsorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(ids: &[u32]) -> DocSet {
        DocSet::from_sorted(ids.iter().map(|&i| DocId(i)).collect())
    }

    #[test]
    fn intersect_union_difference() {
        let a = ds(&[1, 3, 5, 7]);
        let b = ds(&[3, 4, 5, 8]);
        assert_eq!(a.intersect(&b), ds(&[3, 5]));
        assert_eq!(a.union(&b), ds(&[1, 3, 4, 5, 7, 8]));
        assert_eq!(a.difference(&b), ds(&[1, 7]));
        assert_eq!(b.difference(&a), ds(&[4, 8]));
    }

    #[test]
    fn ops_with_empty() {
        let a = ds(&[1, 2]);
        let e = DocSet::new();
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.union(&e), a);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
    }

    #[test]
    fn from_unsorted_dedups() {
        let s = DocSet::from_unsorted(vec![DocId(5), DocId(1), DocId(5), DocId(3)]);
        assert_eq!(s, ds(&[1, 3, 5]));
    }

    #[test]
    fn contains_binary_search() {
        let a = ds(&[2, 4, 6]);
        assert!(a.contains(DocId(4)));
        assert!(!a.contains(DocId(5)));
    }

    fn pl(entries: &[(u32, u16, u16, u32)]) -> PostingList {
        PostingList::from_sorted(
            entries
                .iter()
                .map(|&(d, f, v, p)| Posting {
                    doc: DocId(d),
                    field: FieldId(f),
                    value_idx: v,
                    pos: p,
                })
                .collect(),
        )
    }

    #[test]
    fn posting_list_docs_dedup() {
        let l = pl(&[(1, 0, 0, 0), (1, 0, 0, 4), (2, 1, 0, 1)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.doc_count(), 2);
        assert_eq!(l.docs(), ds(&[1, 2]));
    }

    #[test]
    fn in_field_filters() {
        let l = pl(&[(1, 0, 0, 0), (1, 1, 0, 0), (2, 0, 0, 3)]);
        let f0 = l.in_field(FieldId(0));
        assert_eq!(f0.len(), 2);
        assert_eq!(f0.docs(), ds(&[1, 2]));
    }

    #[test]
    fn phrase_positional_join() {
        // doc1: "belief update" in field0 value0; doc2 has the words apart.
        let belief = pl(&[(1, 0, 0, 0), (2, 0, 0, 0)]);
        let update = pl(&[(1, 0, 0, 1), (2, 0, 0, 5)]);
        let adjacent = positional_join(&belief, &update, 1, 1);
        assert_eq!(adjacent, ds(&[1]));
        // near5 (either order): doc2's gap of 5 qualifies.
        let near5 = positional_join(&belief, &update, -5, 5);
        assert_eq!(near5, ds(&[1, 2]));
    }

    #[test]
    fn positional_join_requires_same_value() {
        // Words adjacent in positions but in *different* values of a
        // multi-valued field must not match as a phrase.
        let a = pl(&[(1, 0, 0, 0)]);
        let b = pl(&[(1, 0, 1, 1)]);
        assert!(positional_join(&a, &b, 1, 1).is_empty());
    }

    #[test]
    fn positional_join_multiple_runs() {
        let a = pl(&[(1, 0, 0, 0), (3, 0, 0, 2), (3, 0, 0, 9)]);
        let b = pl(&[(1, 0, 0, 7), (3, 0, 0, 3)]);
        assert_eq!(positional_join(&a, &b, 1, 1), ds(&[3]));
    }
}
