//! Sharded text collections: one logical service over many physical servers.
//!
//! A production-scale Mercury-style deployment spreads its collection across
//! many search endpoints. [`ShardedTextServer`] models that: a [`Collection`]
//! is partitioned deterministically (seeded hash of the docid) across N
//! inner [`TextServer`]s, each with its own fault plan, term cap, and
//! [`Usage`] ledger. Every service operation is a scatter/gather:
//!
//! * `search`/`probe` scatter the expression to **all** shards (each shard
//!   charges its own `c_i` — the per-shard invocation charge) and
//!   union-merge the postings in global docid order;
//! * `retrieve` routes to the single shard owning the docid;
//! * the aggregate [`Usage`] is the exact sum of the shard ledgers plus the
//!   aggregate-level counters (cap rejections, client backoff charged to
//!   the service as a whole), so the cost decomposition
//!   `c_i·I + c_p·P + c_s·S + c_l·L + backoff` keeps holding.
//!
//! Partial failure is typed: when a caller's per-shard retry loop gives up
//! on one shard mid-gather, it wraps the per-shard results gathered so far
//! into a [`PartialShardError`] (carried by `TextError::Shard`), so no
//! paid-for shard response is silently dropped and callers can either
//! re-route the missing sub-query or fail cleanly — never return a wrong
//! multiset.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use textjoin_obs::{Charge, EventKind, MetricsSnapshot, Recorder};

use crate::batch::BatchResult;
use crate::doc::{DocId, Document, ShortDoc, TextSchema};
use crate::expr::SearchExpr;
use crate::index::Collection;
use crate::parse::parse_search;
use crate::server::{
    CostConstants, PartialRetrieveError, SearchResult, TextError, TextServer, Usage,
};
use crate::service::TextService;
use crate::stats::VocabularyStats;

/// A shard that exhausted its retries mid-gather. Carries the per-shard
/// results already gathered (and charged) before the failure, so callers
/// can account for — or re-route around — exactly what is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialShardError {
    /// Per-shard results gathered before the failure, index-parallel to the
    /// shards: `Some` for shards that answered, `None` for the failed shard
    /// and any shard not yet reached. Empty when the gather carried no
    /// per-shard result sets (probe and batch gathers).
    pub partial: Vec<Option<SearchResult>>,
    /// Index of the shard that failed.
    pub failed_shard: usize,
    /// The underlying (transient, retry-exhausted) failure.
    pub error: TextError,
}

impl PartialShardError {
    /// Number of shards that had already answered when the gather failed.
    pub fn gathered(&self) -> usize {
        self.partial.iter().filter(|r| r.is_some()).count()
    }
}

impl fmt::Display for PartialShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} failed mid-gather: gathered {}/{} shards: {}",
            self.failed_shard,
            self.gathered(),
            self.partial.len(),
            self.error
        )
    }
}

impl std::error::Error for PartialShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// `splitmix64` — the same deterministic mixer the fault plans use, applied
/// to docids so the partition is a seeded hash, not a modulo striping.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic partition of one [`Collection`] across N metered
/// [`TextServer`] shards, presenting the same [`TextService`] surface.
///
/// Each logical shard owns R replica servers holding identical copies of
/// the shard's slice, each with its own fault plan, term cap, and ledger.
/// One replica is the seeded-deterministic **primary**; the others form a
/// failover rotation (`routing_order`). R defaults to 1, in which case
/// every path below degenerates to the unreplicated behavior exactly.
#[derive(Debug)]
pub struct ShardedTextServer {
    /// `replicas[i]` = the copies of shard `i`'s slice;
    /// `replicas[i][primary[i]]` is the preferred one.
    replicas: Vec<Vec<TextServer>>,
    /// Per shard: index of the primary replica.
    primary: Vec<usize>,
    /// Global docid → (owning shard, local docid).
    route: Vec<(usize, DocId)>,
    /// Per shard: local docid → global docid (increasing by construction).
    to_global: Vec<Vec<DocId>>,
    /// Aggregate-level counters: cap rejections and client backoff charged
    /// to the service as a whole rather than to one shard.
    extra: RefCell<Usage>,
    partition_seed: u64,
    /// Flight recorder shared with every shard (shard events carry their
    /// stamped shard index; aggregate-ledger events carry `shard: None`).
    recorder: RefCell<Option<Rc<Recorder>>>,
}

impl ShardedTextServer {
    /// Partitions `coll` across `n_shards` servers with the default
    /// (Mercury-calibrated) constants. The partition is the seeded hash
    /// `splitmix64(seed ⊕ docid) mod n_shards`, so the same `(collection,
    /// seed, n_shards)` always yields the same placement.
    pub fn new(coll: &Collection, n_shards: usize, seed: u64) -> Self {
        Self::with_constants(coll, n_shards, seed, CostConstants::default())
    }

    /// Same, with explicit cost constants (shared by every shard so the
    /// aggregate decomposition uses a single constant set).
    pub fn with_constants(
        coll: &Collection,
        n_shards: usize,
        seed: u64,
        constants: CostConstants,
    ) -> Self {
        Self::replicated_with_constants(coll, n_shards, 1, seed, constants)
    }

    /// Partitions `coll` across `n_shards` logical shards of `n_replicas`
    /// servers each, with default constants. Placement of both documents
    /// and primaries is a seeded hash, so the same `(collection, seed,
    /// n_shards, n_replicas)` always yields the same topology.
    pub fn replicated(coll: &Collection, n_shards: usize, n_replicas: usize, seed: u64) -> Self {
        Self::replicated_with_constants(coll, n_shards, n_replicas, seed, CostConstants::default())
    }

    /// Same, with explicit cost constants.
    pub fn replicated_with_constants(
        coll: &Collection,
        n_shards: usize,
        n_replicas: usize,
        seed: u64,
        constants: CostConstants,
    ) -> Self {
        assert!(n_shards > 0, "a sharded server needs at least one shard");
        assert!(n_replicas > 0, "each shard needs at least one replica");
        let mut colls: Vec<Collection> =
            (0..n_shards).map(|_| Collection::new(coll.schema().clone())).collect();
        let mut route = Vec::with_capacity(coll.doc_count());
        let mut to_global: Vec<Vec<DocId>> = vec![Vec::new(); n_shards];
        for g in 0..coll.doc_count() {
            let global = DocId(g as u32);
            let doc = coll.document(global).expect("dense docids").clone();
            let shard = (splitmix64(seed ^ u64::from(global.0)) % n_shards as u64) as usize;
            let local = colls[shard].add_document(doc);
            route.push((shard, local));
            to_global[shard].push(global);
        }
        let mut replicas: Vec<Vec<TextServer>> = Vec::with_capacity(n_shards);
        let mut primary = Vec::with_capacity(n_shards);
        for (i, c) in colls.into_iter().enumerate() {
            let copies: Vec<TextServer> = (0..n_replicas)
                .map(|_| TextServer::with_constants(c.clone(), constants))
                .collect();
            for s in &copies {
                s.set_shard_index(i);
            }
            // Seeded primary placement: mixed separately from the document
            // partition so the two deals are independent. R=1 pins it to 0.
            primary.push((splitmix64(seed ^ 0xCAB1E ^ i as u64) % n_replicas as u64) as usize);
            replicas.push(copies);
        }
        Self {
            replicas,
            primary,
            route,
            to_global,
            extra: RefCell::new(Usage::default()),
            partition_seed: seed,
            recorder: RefCell::new(None),
        }
    }

    /// Attaches (or detaches) a flight recorder, shared with every replica
    /// of every shard so all events land in one totally-ordered trace.
    pub fn set_recorder(&self, rec: Option<Rc<Recorder>>) {
        for copies in &self.replicas {
            for s in copies {
                s.set_recorder(rec.clone());
            }
        }
        *self.recorder.borrow_mut() = rec;
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<Rc<Recorder>> {
        self.recorder.borrow().clone()
    }

    fn emit(&self, kind: EventKind) {
        if let Some(rec) = &*self.recorder.borrow() {
            rec.emit(kind);
        }
    }

    /// Per-shard collection statistics as a metrics snapshot: document
    /// counts and, per field, vocabulary size, total document frequency,
    /// and mean fanout, under `shard{i}.stats.*` keys (plus the aggregate
    /// under plain `stats.*`). Built from the free `export_stats` of each
    /// shard, so reading it charges nothing — this is the shard-local
    /// statistics export the planner reads for selectivity estimation.
    pub fn stats_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        let schema = self.replicas[0][0].collection().schema();
        let fill = |prefix: &str, stats: &VocabularyStats, m: &mut MetricsSnapshot| {
            m.set_counter(&format!("{prefix}stats.docs"), stats.doc_count as u64);
            for (fid, def) in schema.iter() {
                if let Some(fs) = stats.field(fid) {
                    let base = format!("{prefix}stats.field.{}", def.name);
                    m.set_counter(&format!("{base}.vocabulary"), fs.vocabulary as u64);
                    m.set_counter(&format!("{base}.total_df"), fs.total_df);
                    m.set_value(&format!("{base}.mean_fanout"), fs.mean_fanout());
                }
            }
        };
        for i in 0..self.replicas.len() {
            fill(&format!("shard{i}."), &self.shard(i).export_stats(), &mut m);
        }
        fill("", &TextService::export_stats(self), &mut m);
        m
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of replicas per shard (1 = unreplicated).
    pub fn replication_factor(&self) -> usize {
        self.replicas[0].len()
    }

    /// The partition seed in force.
    pub fn partition_seed(&self) -> u64 {
        self.partition_seed
    }

    /// Shared read access to shard `i`'s **primary** replica (its ledger,
    /// cap, fault plan).
    pub fn shard(&self, i: usize) -> &TextServer {
        &self.replicas[i][self.primary[i]]
    }

    /// Mutable access to shard `i`'s primary replica, for installing
    /// per-shard fault plans and term caps.
    pub fn shard_mut(&mut self, i: usize) -> &mut TextServer {
        let p = self.primary[i];
        &mut self.replicas[i][p]
    }

    /// Shared read access to replica `r` of shard `i`.
    pub fn replica(&self, i: usize, r: usize) -> &TextServer {
        &self.replicas[i][r]
    }

    /// Mutable access to replica `r` of shard `i`.
    pub fn replica_mut(&mut self, i: usize, r: usize) -> &mut TextServer {
        &mut self.replicas[i][r]
    }

    /// Index of shard `i`'s primary replica.
    pub fn primary_of(&self, i: usize) -> usize {
        self.primary[i]
    }

    /// Shard `i`'s replica routing order: the primary first, then the
    /// secondaries in rotation. Deterministic for a given topology.
    pub fn routing_order(&self, i: usize) -> Vec<usize> {
        let n = self.replicas[i].len();
        let p = self.primary[i];
        (0..n).map(|k| (p + k) % n).collect()
    }

    /// The shard owning global docid `id`, or `None` for unknown ids.
    pub fn owner_of(&self, id: DocId) -> Option<usize> {
        self.route.get(id.0 as usize).map(|&(s, _)| s)
    }

    /// Snapshot of shard `i`'s ledger: the sum over all its replicas, so
    /// the aggregate identity `usage() = extra + Σ shard_usage(i)` holds
    /// no matter which replica absorbed a charge.
    pub fn shard_usage(&self, i: usize) -> Usage {
        let mut total = Usage::default();
        for s in &self.replicas[i] {
            total.accumulate(&s.usage());
        }
        total
    }

    /// Searches replica `r` of shard `i` only, remapping result docids to
    /// global ids. Charges (and faults) exactly like a search on that
    /// replica's server.
    pub fn search_replica(
        &self,
        i: usize,
        r: usize,
        expr: &SearchExpr,
    ) -> Result<SearchResult, TextError> {
        let mut res = self.replicas[i][r].search(expr)?;
        for d in &mut res.docs {
            d.id = self.to_global[i][d.id.0 as usize];
        }
        Ok(res)
    }

    /// Searches shard `i`'s primary replica only, remapping result docids
    /// to global ids.
    pub fn search_shard(&self, i: usize, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        self.search_replica(i, self.primary[i], expr)
    }

    /// Probes shard `i` only, returning global docids.
    pub fn probe_shard(&self, i: usize, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        Ok(self.search_shard(i, expr)?.ids())
    }

    /// Runs a batch on replica `r` of shard `i` only, remapping every
    /// member result's docids to global ids (the replica applies its own
    /// invocation rebates).
    pub fn batch_replica(
        &self,
        i: usize,
        r: usize,
        exprs: &[SearchExpr],
    ) -> Result<BatchResult, TextError> {
        let mut b = self.replicas[i][r].search_batch(exprs)?;
        for res in &mut b.results {
            for d in &mut res.docs {
                d.id = self.to_global[i][d.id.0 as usize];
            }
        }
        Ok(b)
    }

    /// Runs a batch on shard `i`'s primary replica only.
    pub fn batch_shard(&self, i: usize, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        self.batch_replica(i, self.primary[i], exprs)
    }

    /// Retrieves global docid `id` from replica `r` of shard `i`. Errors
    /// with `UnknownDoc` when `id` is unknown or not owned by shard `i`.
    pub fn retrieve_replica(&self, i: usize, r: usize, id: DocId) -> Result<Document, TextError> {
        match self.route.get(id.0 as usize) {
            Some(&(owner, local)) if owner == i => self.replicas[i][r].retrieve(local),
            _ => Err(TextError::UnknownDoc(id)),
        }
    }

    /// Charges simulated retry backoff against shard `i`'s primary ledger
    /// (the shard that caused the wait pays for it). Because
    /// [`shard_usage`](Self::shard_usage) sums every replica and the
    /// aggregate [`usage`](TextService::usage) sums the same ledgers, the
    /// backoff lands in both views at once — they cannot drift.
    pub fn charge_shard_backoff(&self, i: usize, seconds: f64) {
        self.charge_replica_backoff(i, self.primary[i], seconds);
    }

    /// Charges simulated retry backoff against one specific replica's
    /// ledger (failover retry loops attribute the wait to the replica that
    /// caused it).
    pub fn charge_replica_backoff(&self, i: usize, r: usize, seconds: f64) {
        self.replicas[i][r].charge_backoff(seconds);
    }

    /// Rebates a previously charged usage delta against one specific
    /// replica's ledger — the cancellation path for a hedged read whose
    /// leg lost the race. Exactly inverts the leg's charges field-for-field
    /// (see [`TextServer::rebate`]), so both the shard sum and the
    /// aggregate ledger forget the cancelled work.
    pub fn rebate_replica(&self, i: usize, r: usize, delta: &Usage) {
        self.replicas[i][r].rebate(delta);
    }

    /// Union-merges per-shard results into one result set in global docid
    /// order. Shard result sets are disjoint (the partition) and each is
    /// already sorted, so this is a pure merge.
    pub fn merge(parts: Vec<SearchResult>) -> SearchResult {
        let mut docs: Vec<ShortDoc> = parts.into_iter().flat_map(|r| r.docs).collect();
        docs.sort_by_key(|d| d.id);
        SearchResult { docs }
    }

    /// Rejects expressions over the aggregate cap before any shard is
    /// contacted (mirrors the single server: rejected searches are free).
    fn validate_cap(&self, expr: &SearchExpr) -> Result<(), TextError> {
        let cap = TextService::max_terms(self);
        let count = expr.term_count();
        if count > cap {
            self.extra.borrow_mut().rejected += 1;
            self.emit(EventKind::Call {
                op: "search",
                shard: None,
                terms: count as u64,
                err: Some(format!("rejected: {count} terms > aggregate cap {cap}")),
                charge: Charge {
                    rejected: 1,
                    ..Charge::default()
                },
            });
            return Err(TextError::TooManyTerms { count, max: cap });
        }
        Ok(())
    }

    /// One failover pass over shard `i`'s routing order: a single search
    /// attempt per replica, moving to the next replica (with a `Failover`
    /// event) when one fails transiently. Non-transient errors (cap
    /// renegotiations, syntax) propagate raw so the callers' re-packaging
    /// lattices keep working unchanged. With R=1 this is exactly one
    /// attempt on the shard, as before replication existed.
    fn failover_search(&self, i: usize, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        let order = self.routing_order(i);
        let mut last: Option<TextError> = None;
        for (pos, &r) in order.iter().enumerate() {
            match self.search_replica(i, r, expr) {
                Ok(res) => return Ok(res),
                Err(e) if e.is_transient() => {
                    if let Some(&next) = order.get(pos + 1) {
                        self.emit(EventKind::Failover {
                            shard: i,
                            replica: next,
                        });
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("routing order is never empty"))
    }

    /// Batch counterpart of [`failover_search`](Self::failover_search).
    fn failover_batch(&self, i: usize, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        let order = self.routing_order(i);
        let mut last: Option<TextError> = None;
        for (pos, &r) in order.iter().enumerate() {
            match self.batch_replica(i, r, exprs) {
                Ok(b) => return Ok(b),
                Err(e) if e.is_transient() => {
                    if let Some(&next) = order.get(pos + 1) {
                        self.emit(EventKind::Failover {
                            shard: i,
                            replica: next,
                        });
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("routing order is never empty"))
    }

    /// Single-attempt-per-replica scatter/gather over all shards, in shard
    /// order. A shard whose every replica fails transiently wraps the
    /// results gathered so far into a [`PartialShardError`]. Callers
    /// wanting per-shard retries orchestrate
    /// [`search_replica`](Self::search_replica) themselves.
    fn scatter_search(&self, expr: &SearchExpr) -> Result<Vec<SearchResult>, TextError> {
        let mut done: Vec<Option<SearchResult>> = vec![None; self.replicas.len()];
        for i in 0..self.replicas.len() {
            match self.failover_search(i, expr) {
                Ok(r) => done[i] = Some(r),
                Err(e) if e.is_transient() => {
                    return Err(TextError::Shard(Box::new(PartialShardError {
                        partial: done,
                        failed_shard: i,
                        error: e,
                    })))
                }
                Err(e) => return Err(e),
            }
        }
        Ok(done.into_iter().map(|r| r.expect("all gathered")).collect())
    }

    /// Resumes a failed gather from the partial results a
    /// [`PartialShardError`] carried: shards that already answered are
    /// reused verbatim — their postings were transmitted and paid for once
    /// and are never re-bought — and only the missing shards' keyspace is
    /// re-scattered, each leg failing over through the shard's replica
    /// routing order. Fails with a fresh `TextError::Shard` (carrying the
    /// updated partial) only when every replica of a missing shard is still
    /// down. A `partial` whose length does not match the shard count (e.g.
    /// the empty partial of a batch gather) is treated as all-missing.
    pub fn complete_gather(
        &self,
        partial: &[Option<SearchResult>],
        expr: &SearchExpr,
    ) -> Result<SearchResult, TextError> {
        let mut done: Vec<Option<SearchResult>> = if partial.len() == self.replicas.len() {
            partial.to_vec()
        } else {
            vec![None; self.replicas.len()]
        };
        for i in 0..done.len() {
            if done[i].is_some() {
                continue;
            }
            match self.failover_search(i, expr) {
                Ok(r) => done[i] = Some(r),
                Err(e) if e.is_transient() => {
                    return Err(TextError::Shard(Box::new(PartialShardError {
                        partial: done,
                        failed_shard: i,
                        error: e,
                    })))
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Self::merge(
            done.into_iter().map(|r| r.expect("all gathered")).collect(),
        ))
    }
}

impl TextService for ShardedTextServer {
    fn schema(&self) -> &TextSchema {
        self.replicas[0][0].collection().schema()
    }

    fn doc_count(&self) -> usize {
        self.route.len()
    }

    /// The minimum cap over every replica of every shard: a package legal
    /// under the aggregate cap is legal on every server a failover could
    /// route it to.
    fn max_terms(&self) -> usize {
        self.replicas
            .iter()
            .flatten()
            .map(|s| s.max_terms())
            .min()
            .expect("at least one shard")
    }

    fn constants(&self) -> CostConstants {
        self.replicas[0][0].constants()
    }

    /// Exact sum of the per-replica ledgers plus the aggregate-level
    /// counters.
    fn usage(&self) -> Usage {
        let mut total = *self.extra.borrow();
        for s in self.replicas.iter().flatten() {
            total.accumulate(&s.usage());
        }
        total
    }

    fn reset_usage(&self) {
        *self.extra.borrow_mut() = Usage::default();
        for s in self.replicas.iter().flatten() {
            s.reset_usage();
        }
    }

    /// Backoff charged against the service as a whole (when the caller does
    /// not attribute the wait to one shard — per-shard retry loops use
    /// [`charge_shard_backoff`](Self::charge_shard_backoff) instead).
    fn charge_backoff(&self, seconds: f64) {
        {
            let mut u = self.extra.borrow_mut();
            u.retries += 1;
            u.time_backoff += seconds;
        }
        self.emit(EventKind::Backoff {
            shard: None,
            seconds,
            charge: Charge {
                retries: 1,
                time_backoff: seconds,
                ..Charge::default()
            },
        });
    }

    fn search(&self, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        self.validate_cap(expr)?;
        Ok(Self::merge(self.scatter_search(expr)?))
    }

    fn search_str(&self, query: &str) -> Result<SearchResult, TextError> {
        let expr = parse_search(query, TextService::schema(self))?;
        TextService::search(self, &expr)
    }

    fn probe(&self, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        Ok(TextService::search(self, expr)?.ids())
    }

    /// Routes to the owning shard, failing over through its replica
    /// routing order on transient errors (single attempt per replica).
    fn retrieve(&self, id: DocId) -> Result<Document, TextError> {
        match self.route.get(id.0 as usize) {
            Some(&(shard, local)) => {
                let order = self.routing_order(shard);
                let mut last: Option<TextError> = None;
                for (pos, &r) in order.iter().enumerate() {
                    match self.replicas[shard][r].retrieve(local) {
                        Ok(doc) => return Ok(doc),
                        Err(e) if e.is_transient() => {
                            if let Some(&next) = order.get(pos + 1) {
                                self.emit(EventKind::Failover {
                                    shard,
                                    replica: next,
                                });
                            }
                            last = Some(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(last.expect("routing order is never empty"))
            }
            None => Err(TextError::UnknownDoc(id)),
        }
    }

    fn retrieve_all(&self, ids: &[DocId]) -> Result<Vec<Document>, Box<PartialRetrieveError>> {
        let mut docs = Vec::with_capacity(ids.len());
        for &id in ids {
            match TextService::retrieve(self, id) {
                Ok(doc) => docs.push(doc),
                Err(error) => {
                    return Err(Box::new(PartialRetrieveError {
                        docs,
                        failed: id,
                        error,
                    }))
                }
            }
        }
        Ok(docs)
    }

    /// Scatters the whole batch to every shard (each applies its own
    /// invocation rebate) and union-merges member-wise. Caps are validated
    /// against the aggregate cap up front, so a rejected batch is free.
    fn search_batch(&self, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        for e in exprs {
            self.validate_cap(e)?;
        }
        let mut per_shard = Vec::with_capacity(self.replicas.len());
        for i in 0..self.replicas.len() {
            match self.failover_batch(i, exprs) {
                Ok(b) => per_shard.push(b),
                Err(e) if e.is_transient() => {
                    return Err(TextError::Shard(Box::new(PartialShardError {
                        partial: Vec::new(),
                        failed_shard: i,
                        error: e,
                    })))
                }
                Err(e) => return Err(e),
            }
        }
        let results = (0..exprs.len())
            .map(|j| Self::merge(per_shard.iter().map(|b| b.results[j].clone()).collect()))
            .collect();
        Ok(BatchResult { results })
    }

    fn export_stats(&self) -> VocabularyStats {
        VocabularyStats::merged((0..self.replicas.len()).map(|i| self.shard(i).export_stats()))
    }

    fn reconstruct_short(&self, id: DocId) -> Option<ShortDoc> {
        let &(shard, local) = self.route.get(id.0 as usize)?;
        let coll = self.shard(shard).collection();
        coll.document(local)
            .map(|d| d.short_form(id, coll.schema()))
    }

    fn as_sharded(&self) -> Option<&ShardedTextServer> {
        Some(self)
    }

    fn recorder(&self) -> Option<Rc<Recorder>> {
        ShardedTextServer::recorder(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{Document, TextSchema};
    use crate::faults::{Fault, FaultPlan};

    fn corpus(n: usize) -> Collection {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        for i in 0..n {
            c.add_document(
                Document::new()
                    .with(ti, format!("shared subject {i}"))
                    .with(au, format!("author{i}")),
            );
        }
        c
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let coll = corpus(40);
        let a = ShardedTextServer::new(&coll, 4, 7);
        let b = ShardedTextServer::new(&coll, 4, 7);
        assert_eq!(a.doc_count(), 40);
        let sizes: Vec<usize> = (0..4).map(|i| a.shard(i).doc_count()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 40);
        assert!(sizes.iter().all(|&s| s > 0), "seeded hash spreads docs: {sizes:?}");
        for g in 0..40 {
            assert_eq!(a.owner_of(DocId(g)), b.owner_of(DocId(g)));
        }
        // A different seed re-deals the placement.
        let c = ShardedTextServer::new(&coll, 4, 8);
        assert!((0..40).any(|g| a.owner_of(DocId(g)) != c.owner_of(DocId(g))));
    }

    #[test]
    fn scatter_search_matches_single_server_in_global_id_order() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&sharded, "TI='shared'").unwrap();
        assert_eq!(got.ids(), want.ids(), "same docids, global order");
        assert_eq!(got.docs, want.docs, "same short forms");
    }

    #[test]
    fn scatter_charges_each_shard_an_invocation() {
        let coll = corpus(40);
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        TextService::search_str(&sharded, "TI='shared'").unwrap();
        for i in 0..4 {
            assert_eq!(sharded.shard_usage(i).invocations, 1, "shard {i}");
        }
        let u = TextService::usage(&sharded);
        assert_eq!(u.invocations, 4, "per-shard invocation charges aggregate");
        let mut summed = Usage::default();
        for i in 0..4 {
            summed.accumulate(&sharded.shard_usage(i));
        }
        assert_eq!(u, summed, "aggregate ledger is the exact shard sum");
    }

    #[test]
    fn retrieve_routes_to_the_owning_shard_only() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let want = single.retrieve(DocId(11)).unwrap();
        let got = TextService::retrieve(&sharded, DocId(11)).unwrap();
        assert_eq!(got, want);
        let owner = sharded.owner_of(DocId(11)).unwrap();
        for i in 0..4 {
            let u = sharded.shard_usage(i);
            if i == owner {
                assert_eq!(u.docs_long, 1);
            } else {
                assert_eq!(u, Usage::default(), "shard {i} untouched");
            }
        }
        assert!(matches!(
            TextService::retrieve(&sharded, DocId(999)),
            Err(TextError::UnknownDoc(DocId(999)))
        ));
    }

    #[test]
    fn aggregate_cap_is_min_over_shards_and_rejects_free() {
        let coll = corpus(40);
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded.shard_mut(2).set_max_terms(2);
        assert_eq!(TextService::max_terms(&sharded), 2);
        let err =
            TextService::search_str(&sharded, "AU='a' or AU='b' or AU='c'").unwrap_err();
        assert!(matches!(err, TextError::TooManyTerms { count: 3, max: 2 }));
        let u = TextService::usage(&sharded);
        assert_eq!((u.invocations, u.rejected), (0, 1), "rejected uncharged");
    }

    #[test]
    fn transient_shard_failure_carries_partial_gather() {
        let coll = corpus(40);
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded
            .shard_mut(2)
            .set_fault_plan(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
        let err = TextService::search_str(&sharded, "TI='shared'").unwrap_err();
        let TextError::Shard(pse) = err else {
            panic!("expected a shard error, got {err}");
        };
        assert_eq!(pse.failed_shard, 2);
        assert_eq!(pse.gathered(), 2, "shards 0 and 1 had answered");
        assert!(pse.partial[0].is_some() && pse.partial[1].is_some());
        assert!(pse.partial[2].is_none() && pse.partial[3].is_none());
        // The failed attempt was still charged on shard 2's ledger.
        assert_eq!(sharded.shard_usage(2).faults, 1);
        assert_eq!(sharded.shard_usage(2).invocations, 1);
    }

    #[test]
    fn merged_stats_equal_single_server_stats() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let a = single.export_stats();
        let b = TextService::export_stats(&sharded);
        assert_eq!(b.doc_count, 40);
        let au = TextService::schema(&sharded).field_by_name("author").unwrap();
        let ti = TextService::schema(&sharded).field_by_name("title").unwrap();
        for field in [au, ti] {
            let fa = a.field(field).unwrap();
            let fb = b.field(field).unwrap();
            assert_eq!(fa.vocabulary, fb.vocabulary);
            assert_eq!(fa.total_df, fb.total_df);
            assert_eq!(fa.histogram, fb.histogram);
        }
        assert_eq!(a.fanout("shared", ti), b.fanout("shared", ti));
        assert_eq!(TextService::usage(&sharded).total_cost(), 0.0, "export is free");
    }

    #[test]
    fn reconstruct_short_stamps_global_ids() {
        let coll = corpus(10);
        let sharded = ShardedTextServer::new(&coll, 3, 7);
        let sf = TextService::reconstruct_short(&sharded, DocId(6)).unwrap();
        assert_eq!(sf.id, DocId(6));
        let single = TextServer::new(coll);
        assert_eq!(
            sf,
            TextService::reconstruct_short(&single, DocId(6)).unwrap()
        );
    }

    #[test]
    fn replica_placement_is_deterministic_and_serves_identically() {
        let coll = corpus(40);
        let a = ShardedTextServer::replicated(&coll, 4, 3, 7);
        let b = ShardedTextServer::replicated(&coll, 4, 3, 7);
        assert_eq!(a.replication_factor(), 3);
        for i in 0..4 {
            assert_eq!(a.primary_of(i), b.primary_of(i));
            assert_eq!(a.routing_order(i)[0], a.primary_of(i));
            let mut sorted = a.routing_order(i);
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "routing order is a permutation");
        }
        // Unreplicated construction pins every primary to replica 0.
        let r1 = ShardedTextServer::new(&coll, 4, 7);
        for i in 0..4 {
            assert_eq!(r1.primary_of(i), 0);
            assert_eq!(r1.routing_order(i), vec![0]);
        }
        // Replication never changes the answer.
        let single = TextServer::new(coll.clone());
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&a, "TI='shared'").unwrap();
        assert_eq!(got.docs, want.docs);
        // The healthy path charges only the primaries.
        let u = TextService::usage(&a);
        assert_eq!(u.invocations, 4, "secondaries are free while primaries answer");
    }

    #[test]
    fn dead_primary_fails_over_to_a_secondary() {
        let coll = corpus(40);
        let mut s = ShardedTextServer::replicated(&coll, 4, 2, 7);
        let p = s.primary_of(2);
        s.replica_mut(2, p).set_fault_plan(FaultPlan::dead(9));
        let single = TextServer::new(coll.clone());
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&s, "TI='shared'").unwrap();
        assert_eq!(got.docs, want.docs, "failover preserves the result");
        // The dead primary was charged its failed attempt; the secondary
        // served the real one.
        let sec = (p + 1) % 2;
        assert_eq!(s.replica(2, p).usage().faults, 1);
        assert_eq!(s.replica(2, sec).usage().invocations, 1);
        // Shard and aggregate ledgers both see every replica's charges.
        assert_eq!(s.shard_usage(2).faults, 1);
        let mut summed = *s.extra.borrow();
        for i in 0..4 {
            summed.accumulate(&s.shard_usage(i));
        }
        assert_eq!(TextService::usage(&s), summed);
        // Owner-routed retrieves fail over the same way.
        let victim = (0..40)
            .map(DocId)
            .find(|&g| s.owner_of(g) == Some(2))
            .unwrap();
        let doc = TextService::retrieve(&s, victim).unwrap();
        assert_eq!(doc, single.retrieve(victim).unwrap());
    }

    #[test]
    fn complete_gather_reuses_paid_partials() {
        let coll = corpus(40);
        let mut s = ShardedTextServer::new(&coll, 4, 7);
        s.shard_mut(2)
            .set_fault_plan(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
        let expr = parse_search("TI='shared'", TextService::schema(&s)).unwrap();
        let err = TextService::search(&s, &expr).unwrap_err();
        let TextError::Shard(pse) = err else {
            panic!("expected a shard error");
        };
        let before = s.shard_usage(0);
        let done = s.complete_gather(&pse.partial, &expr).unwrap();
        assert_eq!(
            s.shard_usage(0),
            before,
            "already-gathered shards are reused, never re-bought"
        );
        let single = TextServer::new(coll.clone());
        assert_eq!(done.docs, single.search(&expr).unwrap().docs);
    }

    #[test]
    fn rebate_replica_unbooks_a_cancelled_leg_everywhere() {
        let coll = corpus(40);
        let s = ShardedTextServer::replicated(&coll, 4, 2, 7);
        let expr = parse_search("TI='shared'", TextService::schema(&s)).unwrap();
        let loser = (s.primary_of(1) + 1) % 2;
        let aggregate_before = TextService::usage(&s);
        let leg_before = s.replica(1, loser).usage();
        s.search_replica(1, loser, &expr).unwrap();
        let leg = s.replica(1, loser).usage().since(&leg_before);
        assert!(leg.total_cost() > 0.0, "the leg did chargeable work");
        s.rebate_replica(1, loser, &leg);
        assert_eq!(s.replica(1, loser).usage(), leg_before);
        assert_eq!(s.shard_usage(1), Usage::default());
        assert_eq!(TextService::usage(&s), aggregate_before);
    }

    #[test]
    fn batch_scatters_with_per_shard_rebates() {
        let coll = corpus(20);
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let au = TextService::schema(&sharded).field_by_name("author").unwrap();
        let exprs: Vec<SearchExpr> = (0..5)
            .map(|i| SearchExpr::term_in(&format!("author{i}"), au))
            .collect();
        let batch = TextService::search_batch(&sharded, &exprs).unwrap();
        assert_eq!(batch.results.len(), 5);
        for (i, r) in batch.results.iter().enumerate() {
            assert_eq!(r.ids(), vec![DocId(i as u32)], "member {i} finds its doc");
        }
        // Each shard charged one net invocation for the whole batch.
        let u = TextService::usage(&sharded);
        assert_eq!(u.invocations, 4, "batch rebate applied per shard");
    }
}
