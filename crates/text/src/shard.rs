//! Sharded text collections: one logical service over many physical servers.
//!
//! A production-scale Mercury-style deployment spreads its collection across
//! many search endpoints. [`ShardedTextServer`] models that: a [`Collection`]
//! is partitioned deterministically (seeded hash of the docid) across N
//! inner [`TextServer`]s, each with its own fault plan, term cap, and
//! [`Usage`] ledger. Every service operation is a scatter/gather:
//!
//! * `search`/`probe` scatter the expression to **all** shards (each shard
//!   charges its own `c_i` — the per-shard invocation charge) and
//!   union-merge the postings in global docid order;
//! * `retrieve` routes to the single shard owning the docid;
//! * the aggregate [`Usage`] is the exact sum of the shard ledgers plus the
//!   aggregate-level counters (cap rejections, client backoff charged to
//!   the service as a whole), so the cost decomposition
//!   `c_i·I + c_p·P + c_s·S + c_l·L + backoff` keeps holding.
//!
//! Partial failure is typed: when a caller's per-shard retry loop gives up
//! on one shard mid-gather, it wraps the per-shard results gathered so far
//! into a [`PartialShardError`] (carried by `TextError::Shard`), so no
//! paid-for shard response is silently dropped and callers can either
//! re-route the missing sub-query or fail cleanly — never return a wrong
//! multiset.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use textjoin_obs::{Charge, EventKind, MetricsSnapshot, Recorder};

use crate::batch::BatchResult;
use crate::doc::{DocId, Document, ShortDoc, TextSchema};
use crate::expr::{BasicTerm, SearchExpr, TermKind};
use crate::faults::Fault;
use crate::index::Collection;
use crate::parse::parse_search;
use crate::rebalance::{
    MigrationJournal, MigrationPlan, MigrationProgress, MigrationState, MoveJournal, MoveStatus,
    StagedDoc,
};
use crate::server::{
    CostConstants, PartialRetrieveError, SearchResult, TextError, TextServer, Usage,
};
use crate::service::TextService;
use crate::stats::VocabularyStats;

/// A shard that exhausted its retries mid-gather. Carries the per-shard
/// results already gathered (and charged) before the failure, so callers
/// can account for — or re-route around — exactly what is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialShardError {
    /// Per-shard results gathered before the failure, index-parallel to the
    /// shards: `Some` for shards that answered, `None` for the failed shard
    /// and any shard not yet reached. Empty when the gather carried no
    /// per-shard result sets (probe and batch gathers).
    pub partial: Vec<Option<SearchResult>>,
    /// Index of the shard that failed.
    pub failed_shard: usize,
    /// The underlying (transient, retry-exhausted) failure.
    pub error: TextError,
    /// Topology epoch in force when the gather failed. Resuming through
    /// [`ShardedTextServer::complete_gather_from`] compares it against the
    /// current epoch to invalidate partial slots a concurrent migration
    /// commit made stale — so migration-vs-fault diagnoses read directly
    /// off the error chain.
    pub epoch: u64,
}

impl PartialShardError {
    /// Number of shards that had already answered when the gather failed.
    pub fn gathered(&self) -> usize {
        self.partial.iter().filter(|r| r.is_some()).count()
    }
}

impl fmt::Display for PartialShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} failed mid-gather at epoch {}: gathered {}/{} shards: {}",
            self.failed_shard,
            self.epoch,
            self.gathered(),
            self.partial.len(),
            self.error
        )
    }
}

impl std::error::Error for PartialShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// `splitmix64` — the same deterministic mixer the fault plans use, applied
/// to docids so the partition is a seeded hash, not a modulo striping.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic partition of one [`Collection`] across N metered
/// [`TextServer`] shards, presenting the same [`TextService`] surface.
///
/// Each logical shard owns R replica servers holding identical copies of
/// the shard's slice, each with its own fault plan, term cap, and ledger.
/// One replica is the seeded-deterministic **primary**; the others form a
/// failover rotation (`routing_order`). R defaults to 1, in which case
/// every path below degenerates to the unreplicated behavior exactly.
#[derive(Debug)]
pub struct ShardedTextServer {
    /// `replicas[i]` = the copies of shard `i`'s slice;
    /// `replicas[i][primary[i]]` is the preferred one.
    replicas: Vec<Vec<TextServer>>,
    /// Per shard: index of the primary replica.
    primary: Vec<usize>,
    /// Global docid → (owning shard, local docid). Interior-mutable: a
    /// committed migration batch re-routes its documents in place.
    route: RefCell<Vec<(usize, DocId)>>,
    /// Per shard: local docid → global docid. Increasing by construction;
    /// migration staging appends the in-flight globals at the destination
    /// (so remapping stays a table lookup, and results re-sort by global
    /// id after the remap).
    to_global: Vec<Vec<DocId>>,
    /// Per shard: local docids physically present but invisible to
    /// queries — staged-not-yet-committed copies on a destination, and
    /// moved-away originals on a source after commit.
    hidden: RefCell<Vec<BTreeSet<DocId>>>,
    /// Aggregate-level counters: cap rejections and client backoff charged
    /// to the service as a whole rather than to one shard.
    extra: RefCell<Usage>,
    partition_seed: u64,
    /// Flight recorder shared with every shard (shard events carry their
    /// stamped shard index; aggregate-ledger events carry `shard: None`).
    recorder: RefCell<Option<Rc<Recorder>>>,
    /// Topology epoch: bumped by every committed (or aborted) migration
    /// batch. Routing decisions are stamped with it; gathers compare.
    epoch: Cell<u64>,
    /// `(epoch, src, dst)` per epoch bump — the log gathers consult to
    /// re-scatter only the shards a concurrent commit touched.
    epoch_log: RefCell<Vec<(u64, usize, usize)>>,
    /// The active migration, if any.
    migration: RefCell<Option<MigrationState>>,
    /// The dedicated migration usage bucket: every transfer-leg charge
    /// lands here, disjoint from the per-shard query ledgers, and is
    /// added into the aggregate [`usage`](TextService::usage).
    migration_usage: RefCell<Usage>,
    /// Whether scatter paths consult per-shard vocabulary stats to skip
    /// provably irrelevant shards. Off by default: pruning changes the
    /// per-shard invoice shape, so callers opt in.
    stats_routing: Cell<bool>,
    /// Cached per-shard vocabulary stats for routing decisions
    /// (invalidated when a migration stages new physical content).
    shard_stats: RefCell<Option<Rc<Vec<VocabularyStats>>>>,
    /// When > 0, every `pacing`-th query leg advances the active migration
    /// by one batch first — the deterministic interleaving knob that runs
    /// migrations *under* live queries.
    pacing: Cell<u64>,
    /// Query legs observed since the last paced migration step.
    ops_since_step: Cell<u64>,
}

impl ShardedTextServer {
    /// Partitions `coll` across `n_shards` servers with the default
    /// (Mercury-calibrated) constants. The partition is the seeded hash
    /// `splitmix64(seed ⊕ docid) mod n_shards`, so the same `(collection,
    /// seed, n_shards)` always yields the same placement.
    pub fn new(coll: &Collection, n_shards: usize, seed: u64) -> Self {
        Self::with_constants(coll, n_shards, seed, CostConstants::default())
    }

    /// Same, with explicit cost constants (shared by every shard so the
    /// aggregate decomposition uses a single constant set).
    pub fn with_constants(
        coll: &Collection,
        n_shards: usize,
        seed: u64,
        constants: CostConstants,
    ) -> Self {
        Self::replicated_with_constants(coll, n_shards, 1, seed, constants)
    }

    /// Partitions `coll` across `n_shards` logical shards of `n_replicas`
    /// servers each, with default constants. Placement of both documents
    /// and primaries is a seeded hash, so the same `(collection, seed,
    /// n_shards, n_replicas)` always yields the same topology.
    pub fn replicated(coll: &Collection, n_shards: usize, n_replicas: usize, seed: u64) -> Self {
        Self::replicated_with_constants(coll, n_shards, n_replicas, seed, CostConstants::default())
    }

    /// Same, with explicit cost constants.
    pub fn replicated_with_constants(
        coll: &Collection,
        n_shards: usize,
        n_replicas: usize,
        seed: u64,
        constants: CostConstants,
    ) -> Self {
        assert!(n_shards > 0, "a sharded server needs at least one shard");
        assert!(n_replicas > 0, "each shard needs at least one replica");
        let mut colls: Vec<Collection> =
            (0..n_shards).map(|_| Collection::new(coll.schema().clone())).collect();
        let mut route = Vec::with_capacity(coll.doc_count());
        let mut to_global: Vec<Vec<DocId>> = vec![Vec::new(); n_shards];
        for g in 0..coll.doc_count() {
            let global = DocId(g as u32);
            let doc = coll.document(global).expect("dense docids").clone();
            let shard = (splitmix64(seed ^ u64::from(global.0)) % n_shards as u64) as usize;
            let local = colls[shard].add_document(doc);
            route.push((shard, local));
            to_global[shard].push(global);
        }
        let mut replicas: Vec<Vec<TextServer>> = Vec::with_capacity(n_shards);
        let mut primary = Vec::with_capacity(n_shards);
        for (i, c) in colls.into_iter().enumerate() {
            let copies: Vec<TextServer> = (0..n_replicas)
                .map(|_| TextServer::with_constants(c.clone(), constants))
                .collect();
            for s in &copies {
                s.set_shard_index(i);
            }
            // Seeded primary placement: mixed separately from the document
            // partition so the two deals are independent. R=1 pins it to 0.
            primary.push((splitmix64(seed ^ 0xCAB1E ^ i as u64) % n_replicas as u64) as usize);
            replicas.push(copies);
        }
        Self {
            replicas,
            primary,
            route: RefCell::new(route),
            to_global,
            hidden: RefCell::new(vec![BTreeSet::new(); n_shards]),
            extra: RefCell::new(Usage::default()),
            partition_seed: seed,
            recorder: RefCell::new(None),
            epoch: Cell::new(0),
            epoch_log: RefCell::new(Vec::new()),
            migration: RefCell::new(None),
            migration_usage: RefCell::new(Usage::default()),
            stats_routing: Cell::new(false),
            shard_stats: RefCell::new(None),
            pacing: Cell::new(0),
            ops_since_step: Cell::new(0),
        }
    }

    /// Attaches (or detaches) a flight recorder, shared with every replica
    /// of every shard so all events land in one totally-ordered trace.
    pub fn set_recorder(&self, rec: Option<Rc<Recorder>>) {
        for copies in &self.replicas {
            for s in copies {
                s.set_recorder(rec.clone());
            }
        }
        *self.recorder.borrow_mut() = rec;
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<Rc<Recorder>> {
        self.recorder.borrow().clone()
    }

    fn emit(&self, kind: EventKind) {
        if let Some(rec) = &*self.recorder.borrow() {
            rec.emit(kind);
        }
    }

    /// Per-shard collection statistics as a metrics snapshot: document
    /// counts and, per field, vocabulary size, total document frequency,
    /// and mean fanout, under `shard{i}.stats.*` keys (plus the aggregate
    /// under plain `stats.*`). Built from the free `export_stats` of each
    /// shard, so reading it charges nothing — this is the shard-local
    /// statistics export the planner reads for selectivity estimation.
    pub fn stats_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        let schema = self.replicas[0][0].collection().schema();
        let fill = |prefix: &str, stats: &VocabularyStats, m: &mut MetricsSnapshot| {
            m.set_counter(&format!("{prefix}stats.docs"), stats.doc_count as u64);
            for (fid, def) in schema.iter() {
                if let Some(fs) = stats.field(fid) {
                    let base = format!("{prefix}stats.field.{}", def.name);
                    m.set_counter(&format!("{base}.vocabulary"), fs.vocabulary as u64);
                    m.set_counter(&format!("{base}.total_df"), fs.total_df);
                    m.set_value(&format!("{base}.mean_fanout"), fs.mean_fanout());
                }
            }
        };
        for i in 0..self.replicas.len() {
            fill(&format!("shard{i}."), &self.shard(i).export_stats(), &mut m);
        }
        fill("", &TextService::export_stats(self), &mut m);
        m
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of replicas per shard (1 = unreplicated).
    pub fn replication_factor(&self) -> usize {
        self.replicas[0].len()
    }

    /// The partition seed in force.
    pub fn partition_seed(&self) -> u64 {
        self.partition_seed
    }

    /// Shared read access to shard `i`'s **primary** replica (its ledger,
    /// cap, fault plan).
    pub fn shard(&self, i: usize) -> &TextServer {
        &self.replicas[i][self.primary[i]]
    }

    /// Mutable access to shard `i`'s primary replica, for installing
    /// per-shard fault plans and term caps.
    pub fn shard_mut(&mut self, i: usize) -> &mut TextServer {
        let p = self.primary[i];
        &mut self.replicas[i][p]
    }

    /// Shared read access to replica `r` of shard `i`.
    pub fn replica(&self, i: usize, r: usize) -> &TextServer {
        &self.replicas[i][r]
    }

    /// Mutable access to replica `r` of shard `i`.
    pub fn replica_mut(&mut self, i: usize, r: usize) -> &mut TextServer {
        &mut self.replicas[i][r]
    }

    /// Index of shard `i`'s primary replica.
    pub fn primary_of(&self, i: usize) -> usize {
        self.primary[i]
    }

    /// Shard `i`'s replica routing order: the primary first, then the
    /// secondaries in rotation. Deterministic for a given topology.
    pub fn routing_order(&self, i: usize) -> Vec<usize> {
        let n = self.replicas[i].len();
        let p = self.primary[i];
        (0..n).map(|k| (p + k) % n).collect()
    }

    /// The shard owning global docid `id`, or `None` for unknown ids.
    /// Reflects committed migration batches immediately.
    pub fn owner_of(&self, id: DocId) -> Option<usize> {
        self.route.borrow().get(id.0 as usize).map(|&(s, _)| s)
    }

    /// Snapshot of shard `i`'s ledger: the sum over all its replicas, so
    /// the aggregate identity `usage() = extra + Σ shard_usage(i)` holds
    /// no matter which replica absorbed a charge.
    pub fn shard_usage(&self, i: usize) -> Usage {
        let mut total = Usage::default();
        for s in &self.replicas[i] {
            total.accumulate(&s.usage());
        }
        total
    }

    /// Searches replica `r` of shard `i` only, remapping result docids to
    /// global ids. Charges (and faults) exactly like a search on that
    /// replica's server.
    pub fn search_replica(
        &self,
        i: usize,
        r: usize,
        expr: &SearchExpr,
    ) -> Result<SearchResult, TextError> {
        self.pace_migration();
        let mut res = self.replicas[i][r].search(expr)?;
        {
            let hidden = self.hidden.borrow();
            if !hidden[i].is_empty() {
                res.docs.retain(|d| !hidden[i].contains(&d.id));
            }
        }
        for d in &mut res.docs {
            d.id = self.to_global[i][d.id.0 as usize];
        }
        // Staged copies append out of global order; re-sort after the remap.
        res.docs.sort_by_key(|d| d.id);
        Ok(res)
    }

    /// Searches shard `i`'s primary replica only, remapping result docids
    /// to global ids.
    pub fn search_shard(&self, i: usize, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        self.search_replica(i, self.primary[i], expr)
    }

    /// Probes shard `i` only, returning global docids.
    pub fn probe_shard(&self, i: usize, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        Ok(self.search_shard(i, expr)?.ids())
    }

    /// Runs a batch on replica `r` of shard `i` only, remapping every
    /// member result's docids to global ids (the replica applies its own
    /// invocation rebates).
    pub fn batch_replica(
        &self,
        i: usize,
        r: usize,
        exprs: &[SearchExpr],
    ) -> Result<BatchResult, TextError> {
        self.pace_migration();
        let mut b = self.replicas[i][r].search_batch(exprs)?;
        let hidden = self.hidden.borrow();
        for res in &mut b.results {
            if !hidden[i].is_empty() {
                res.docs.retain(|d| !hidden[i].contains(&d.id));
            }
            for d in &mut res.docs {
                d.id = self.to_global[i][d.id.0 as usize];
            }
            res.docs.sort_by_key(|d| d.id);
        }
        Ok(b)
    }

    /// Runs a batch on shard `i`'s primary replica only.
    pub fn batch_shard(&self, i: usize, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        self.batch_replica(i, self.primary[i], exprs)
    }

    /// Retrieves global docid `id` from replica `r` of shard `i`. Errors
    /// with `UnknownDoc` when `id` is unknown or not owned by shard `i`.
    pub fn retrieve_replica(&self, i: usize, r: usize, id: DocId) -> Result<Document, TextError> {
        let routed = self.route.borrow().get(id.0 as usize).copied();
        match routed {
            Some((owner, local)) if owner == i => self.replicas[i][r].retrieve(local),
            _ => Err(TextError::UnknownDoc(id)),
        }
    }

    /// Charges simulated retry backoff against shard `i`'s primary ledger
    /// (the shard that caused the wait pays for it). Because
    /// [`shard_usage`](Self::shard_usage) sums every replica and the
    /// aggregate [`usage`](TextService::usage) sums the same ledgers, the
    /// backoff lands in both views at once — they cannot drift.
    pub fn charge_shard_backoff(&self, i: usize, seconds: f64) {
        self.charge_replica_backoff(i, self.primary[i], seconds);
    }

    /// Charges simulated retry backoff against one specific replica's
    /// ledger (failover retry loops attribute the wait to the replica that
    /// caused it).
    pub fn charge_replica_backoff(&self, i: usize, r: usize, seconds: f64) {
        self.replicas[i][r].charge_backoff(seconds);
    }

    /// Rebates a previously charged usage delta against one specific
    /// replica's ledger — the cancellation path for a hedged read whose
    /// leg lost the race. Exactly inverts the leg's charges field-for-field
    /// (see [`TextServer::rebate`]), so both the shard sum and the
    /// aggregate ledger forget the cancelled work.
    pub fn rebate_replica(&self, i: usize, r: usize, delta: &Usage) {
        self.replicas[i][r].rebate(delta);
    }

    /// Union-merges per-shard results into one result set in global docid
    /// order. Shard result sets are disjoint (the partition) and each is
    /// already sorted, so this is a pure merge.
    pub fn merge(parts: Vec<SearchResult>) -> SearchResult {
        let mut docs: Vec<ShortDoc> = parts.into_iter().flat_map(|r| r.docs).collect();
        docs.sort_by_key(|d| d.id);
        SearchResult { docs }
    }

    /// Rejects expressions over the aggregate cap before any shard is
    /// contacted (mirrors the single server: rejected searches are free).
    fn validate_cap(&self, expr: &SearchExpr) -> Result<(), TextError> {
        let cap = TextService::max_terms(self);
        let count = expr.term_count();
        if count > cap {
            self.extra.borrow_mut().rejected += 1;
            self.emit(EventKind::Call {
                op: "search",
                shard: None,
                terms: count as u64,
                err: Some(format!("rejected: {count} terms > aggregate cap {cap}")),
                charge: Charge {
                    rejected: 1,
                    ..Charge::default()
                },
            });
            return Err(TextError::TooManyTerms { count, max: cap });
        }
        Ok(())
    }

    /// One failover pass over shard `i`'s routing order: a single search
    /// attempt per replica, moving to the next replica (with a `Failover`
    /// event) when one fails transiently. Non-transient errors (cap
    /// renegotiations, syntax) propagate raw so the callers' re-packaging
    /// lattices keep working unchanged. With R=1 this is exactly one
    /// attempt on the shard, as before replication existed.
    fn failover_search(&self, i: usize, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        let order = self.routing_order(i);
        let mut last: Option<TextError> = None;
        for (pos, &r) in order.iter().enumerate() {
            match self.search_replica(i, r, expr) {
                Ok(res) => return Ok(res),
                Err(e) if e.is_transient() => {
                    if let Some(&next) = order.get(pos + 1) {
                        self.emit(EventKind::Failover {
                            shard: i,
                            replica: next,
                        });
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("routing order is never empty"))
    }

    /// Batch counterpart of [`failover_search`](Self::failover_search).
    fn failover_batch(&self, i: usize, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        let order = self.routing_order(i);
        let mut last: Option<TextError> = None;
        for (pos, &r) in order.iter().enumerate() {
            match self.batch_replica(i, r, exprs) {
                Ok(b) => return Ok(b),
                Err(e) if e.is_transient() => {
                    if let Some(&next) = order.get(pos + 1) {
                        self.emit(EventKind::Failover {
                            shard: i,
                            replica: next,
                        });
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("routing order is never empty"))
    }

    /// The epoch-watching gather loop shared by scatter and resumption.
    /// Fills the `None` slots of `done` (shards pruned by stats routing
    /// receive a free empty result), then checks the topology epoch: if a
    /// migration batch committed since `from_epoch`, the slots of the
    /// shards it touched are invalidated (a charge-free [`RoutingStale`]
    /// event names them) and only those legs re-run at the new epoch.
    /// Terminates because migrations are finite.
    ///
    /// [`RoutingStale`]: textjoin_obs::EventKind::RoutingStale
    fn gather_loop(
        &self,
        mut done: Vec<Option<SearchResult>>,
        expr: &SearchExpr,
        mut from_epoch: u64,
    ) -> Result<Vec<SearchResult>, TextError> {
        let mut relevant = self.relevant_shards(expr);
        loop {
            let now = self.epoch.get();
            if now != from_epoch {
                let affected = self.shards_touched_since(from_epoch);
                self.emit(EventKind::RoutingStale {
                    from_epoch,
                    to_epoch: now,
                    shards: affected.clone(),
                });
                for &i in &affected {
                    done[i] = None;
                }
                relevant = self.relevant_shards(expr);
                from_epoch = now;
            }
            for i in 0..done.len() {
                if done[i].is_some() {
                    continue;
                }
                if !relevant[i] {
                    done[i] = Some(SearchResult { docs: Vec::new() });
                    continue;
                }
                match self.failover_search(i, expr) {
                    Ok(r) => done[i] = Some(r),
                    Err(e) if e.is_transient() => {
                        return Err(TextError::Shard(Box::new(PartialShardError {
                            partial: done,
                            failed_shard: i,
                            error: e,
                            epoch: self.epoch.get(),
                        })))
                    }
                    Err(e) => return Err(e),
                }
            }
            if self.epoch.get() == from_epoch {
                return Ok(done.into_iter().map(|r| r.expect("all gathered")).collect());
            }
        }
    }

    /// Single-attempt-per-replica scatter/gather over all shards, in shard
    /// order. A shard whose every replica fails transiently wraps the
    /// results gathered so far into a [`PartialShardError`]. Callers
    /// wanting per-shard retries orchestrate
    /// [`search_replica`](Self::search_replica) themselves.
    fn scatter_search(&self, expr: &SearchExpr) -> Result<Vec<SearchResult>, TextError> {
        let done = vec![None; self.replicas.len()];
        self.gather_loop(done, expr, self.epoch.get())
    }

    /// Resumes a failed gather from the partial results a
    /// [`PartialShardError`] carried: shards that already answered are
    /// reused verbatim — their postings were transmitted and paid for once
    /// and are never re-bought — and only the missing shards' keyspace is
    /// re-scattered, each leg failing over through the shard's replica
    /// routing order. Fails with a fresh `TextError::Shard` (carrying the
    /// updated partial) only when every replica of a missing shard is still
    /// down. A `partial` whose length does not match the shard count (e.g.
    /// the empty partial of a batch gather) is treated as all-missing.
    /// Resumes at the current epoch; callers holding a
    /// [`PartialShardError`] should prefer
    /// [`complete_gather_from`](Self::complete_gather_from) with the
    /// error's stamped epoch, which additionally invalidates partial slots
    /// a migration commit made stale.
    pub fn complete_gather(
        &self,
        partial: &[Option<SearchResult>],
        expr: &SearchExpr,
    ) -> Result<SearchResult, TextError> {
        self.complete_gather_from(partial, expr, self.epoch.get())
    }

    /// [`complete_gather`](Self::complete_gather) for a gather whose
    /// routing was decided at `from_epoch`: partial slots for shards a
    /// migration batch has touched since are discarded (their reuse could
    /// double-count or drop a moved document) and re-gathered at the
    /// current epoch, announced by a charge-free `RoutingStale` event.
    pub fn complete_gather_from(
        &self,
        partial: &[Option<SearchResult>],
        expr: &SearchExpr,
        from_epoch: u64,
    ) -> Result<SearchResult, TextError> {
        let done: Vec<Option<SearchResult>> = if partial.len() == self.replicas.len() {
            partial.to_vec()
        } else {
            vec![None; self.replicas.len()]
        };
        Ok(Self::merge(self.gather_loop(done, expr, from_epoch)?))
    }

    // ---- online rebalancing -------------------------------------------

    /// The current topology epoch (also exposed through
    /// [`TextService::topology_epoch`]).
    pub fn topology_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Shards touched (as source or destination) by commits and aborts
    /// since `epoch`, sorted and deduplicated.
    pub fn shards_touched_since(&self, epoch: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .epoch_log
            .borrow()
            .iter()
            .filter(|&&(e, _, _)| e > epoch)
            .flat_map(|&(_, s, d)| [s, d])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Announces (via a charge-free `RoutingStale` event) that a gather
    /// routed at `from_epoch` observed a later epoch, and returns the
    /// shards whose partial results must be re-gathered. For callers that
    /// orchestrate per-shard legs themselves (the core execution layer);
    /// the service-level scatter paths do this internally.
    pub fn note_routing_stale(&self, from_epoch: u64) -> Vec<usize> {
        let affected = self.shards_touched_since(from_epoch);
        self.emit(EventKind::RoutingStale {
            from_epoch,
            to_epoch: self.epoch.get(),
            shards: affected.clone(),
        });
        affected
    }

    /// Opts scatter paths in (or out) of stats-aware routing: when on,
    /// shards whose vocabulary provably holds no postings for the query's
    /// terms are skipped, turning the fan-out from N into the number of
    /// relevant shards. Off by default — pruning changes the per-shard
    /// invoice shape, and the planner must fold the reduced fan-out into
    /// its costs in lockstep (see `CostParams::with_scatter_fanout`).
    pub fn set_stats_routing(&self, on: bool) {
        self.stats_routing.set(on);
    }

    /// Whether stats-aware routing is on.
    pub fn stats_routing_enabled(&self) -> bool {
        self.stats_routing.get()
    }

    /// Runs the active migration one batch forward for every `every`-th
    /// query leg (0 disables): the deterministic interleaving that puts
    /// topology changes *under* live queries.
    pub fn set_migration_pacing(&self, every: u64) {
        self.pacing.set(every);
        self.ops_since_step.set(0);
    }

    /// Snapshot of the dedicated migration usage bucket — disjoint from
    /// every per-shard query ledger, included in the aggregate
    /// [`usage`](TextService::usage).
    pub fn migration_usage(&self) -> Usage {
        *self.migration_usage.borrow()
    }

    /// The current journal, if a migration was ever begun.
    pub fn journal(&self) -> Option<MigrationJournal> {
        self.migration.borrow().as_ref().map(|m| m.journal.clone())
    }

    /// Whether any move still has work left.
    pub fn migration_active(&self) -> bool {
        self.migration
            .borrow()
            .as_ref()
            .is_some_and(|m| !m.journal.finished())
    }

    /// The non-terminal move the next batch will execute: `(move index,
    /// src, dst)`.
    pub fn current_move(&self) -> Option<(usize, usize, usize)> {
        let st = self.migration.borrow();
        let state = st.as_ref()?;
        let mut cur = state.current;
        while cur < state.plan.moves.len()
            && matches!(
                state.journal.entries[cur].status,
                MoveStatus::Done | MoveStatus::Aborted
            )
        {
            cur += 1;
        }
        if cur >= state.plan.moves.len() {
            return None;
        }
        let e = &state.journal.entries[cur];
        Some((cur, e.src, e.dst))
    }

    /// Per-shard relevance of `expr` under stats-aware routing: `false`
    /// means the shard's exported vocabulary proves no document there can
    /// match, so its scatter leg is skipped for free. The per-shard stats
    /// include staged-but-hidden physical copies, which only *overcounts*
    /// — pruning never hides a real match. All-true when routing is off.
    pub fn relevant_shards(&self, expr: &SearchExpr) -> Vec<bool> {
        if !self.stats_routing.get() {
            return vec![true; self.replicas.len()];
        }
        let stats = self.shard_stats_for_routing();
        let schema = self.replicas[0][0].collection().schema();
        stats
            .iter()
            .map(|s| Self::expr_may_match(s, schema, expr))
            .collect()
    }

    /// The cached per-shard vocabulary stats backing routing decisions.
    /// Export is free; the cache is invalidated when a migration stages
    /// new physical content.
    fn shard_stats_for_routing(&self) -> Rc<Vec<VocabularyStats>> {
        if let Some(s) = self.shard_stats.borrow().as_ref() {
            return s.clone();
        }
        let stats = Rc::new(
            (0..self.replicas.len())
                .map(|i| self.shard(i).export_stats())
                .collect::<Vec<_>>(),
        );
        *self.shard_stats.borrow_mut() = Some(stats.clone());
        stats
    }

    fn term_may_match(stats: &VocabularyStats, schema: &TextSchema, t: &BasicTerm) -> bool {
        let fields: Vec<_> = match t.field {
            Some(f) => vec![f],
            None => schema.iter().map(|(fid, _)| fid).collect(),
        };
        fields.into_iter().any(|f| {
            let Some(fs) = stats.field(f) else {
                return false;
            };
            match &t.kind {
                TermKind::Word(w) => fs.occurs(w),
                TermKind::Prefix(p) => fs.occurs_prefix(p),
                TermKind::Phrase(ws) => ws.iter().all(|w| fs.occurs(w)),
            }
        })
    }

    /// Conservative may-match: `false` only when the vocabulary *proves*
    /// the shard irrelevant. `AndNot` consults only the positive side; an
    /// empty `And` is vacuously relevant, an empty `Or` never matches.
    fn expr_may_match(stats: &VocabularyStats, schema: &TextSchema, expr: &SearchExpr) -> bool {
        match expr {
            SearchExpr::Term(t) => Self::term_may_match(stats, schema, t),
            SearchExpr::Near { a, b, .. } => {
                Self::term_may_match(stats, schema, a) && Self::term_may_match(stats, schema, b)
            }
            SearchExpr::And(cs) => cs.iter().all(|c| Self::expr_may_match(stats, schema, c)),
            SearchExpr::Or(cs) => cs.iter().any(|c| Self::expr_may_match(stats, schema, c)),
            SearchExpr::AndNot(lhs, _) => Self::expr_may_match(stats, schema, lhs),
        }
    }

    /// Stages `plan` for online execution and returns the initial journal.
    ///
    /// Staging gives every destination replica an invisible physical copy
    /// of each in-flight document (so any replica can serve it the moment
    /// its batch commits) and extends the local→global tables. Staging is
    /// free: the *chargeable* transfer is simulated by the `xfer.out` /
    /// `xfer.in` legs of [`migrate_batch`](Self::migrate_batch), which
    /// book into the dedicated [migration bucket](Self::migration_usage).
    /// Routing is untouched until a batch commits, so queries keep seeing
    /// exactly the pre-migration topology. Panics on a malformed plan or
    /// when a migration is already in flight (misuse, same contract as the
    /// constructor asserts).
    pub fn begin_migration(&mut self, plan: MigrationPlan) -> MigrationJournal {
        assert!(
            self.migration
                .borrow()
                .as_ref()
                .is_none_or(|m| m.journal.finished()),
            "a migration is already in flight"
        );
        let n_shards = self.replicas.len();
        let mut staged_all = Vec::with_capacity(plan.moves.len());
        let mut entries = Vec::with_capacity(plan.moves.len());
        let mut total_docs = 0u64;
        for m in &plan.moves {
            assert!(
                m.src < n_shards && m.dst < n_shards,
                "move names an unknown shard"
            );
            assert_ne!(m.src, m.dst, "a move never targets its own source");
            let mut staged = Vec::new();
            for g in m.range.0 .0..m.range.1 .0 {
                let global = DocId(g);
                let (owner, src_local) = self.route.borrow()[g as usize];
                if owner != m.src {
                    continue;
                }
                let doc = self.replicas[m.src][0]
                    .collection()
                    .document(src_local)
                    .expect("routed docids are dense")
                    .clone();
                let before = self.replicas[m.dst][0].collection().total_postings();
                let mut dst_local = None;
                for r in 0..self.replicas[m.dst].len() {
                    let local = self.replicas[m.dst][r]
                        .collection_mut()
                        .add_document(doc.clone());
                    match dst_local {
                        None => dst_local = Some(local),
                        Some(prev) => {
                            assert_eq!(prev, local, "replica collections stay identical")
                        }
                    }
                }
                let dst_local = dst_local.expect("at least one replica");
                let postings =
                    (self.replicas[m.dst][0].collection().total_postings() - before) as u64;
                self.hidden.borrow_mut()[m.dst].insert(dst_local);
                self.to_global[m.dst].push(global);
                staged.push(StagedDoc {
                    global,
                    src_local,
                    dst_local,
                    postings,
                });
            }
            entries.push(MoveJournal {
                src: m.src,
                dst: m.dst,
                docs: staged.len() as u64,
                high_water: None,
                status: if staged.is_empty() {
                    MoveStatus::Done
                } else {
                    MoveStatus::Pending
                },
            });
            total_docs += staged.len() as u64;
            staged_all.push(staged);
        }
        // New physical content on the destinations: routing stats must
        // recompute (they now overcount by the staged copies — sound).
        *self.shard_stats.borrow_mut() = None;
        let journal = MigrationJournal {
            begun_at_epoch: self.epoch.get(),
            entries,
        };
        self.emit(EventKind::MigrationBegin {
            moves: plan.moves.len() as u64,
            docs: total_docs,
            epoch: self.epoch.get(),
        });
        *self.migration.borrow_mut() = Some(MigrationState {
            plan,
            journal: journal.clone(),
            staged: staged_all,
            current: 0,
            cursor: 0,
            in_flight: 0,
            delivered: 0,
        });
        journal
    }

    /// Books one transfer-leg attempt into the migration bucket and emits
    /// the matching `Call` event (op `xfer.out`/`xfer.in`), so the
    /// trace↔ledger audit covers transfers exactly.
    fn book_xfer(&self, op: &'static str, shard: usize, err: Option<String>, charge: Charge) {
        {
            let mut u = self.migration_usage.borrow_mut();
            u.invocations += charge.invocations as u64;
            u.postings_processed += charge.postings as u64;
            u.docs_long += charge.docs_long as u64;
            u.faults += charge.faults as u64;
            u.time_invocation += charge.time_invocation;
            u.time_processing += charge.time_processing;
            u.time_transmission += charge.time_transmission;
            u.time_backoff += charge.time_backoff;
        }
        self.emit(EventKind::Call {
            op,
            shard: Some(shard),
            terms: 0,
            err,
            charge,
        });
    }

    /// Runs the active migration one batch forward, reading the source
    /// replicas in their routing order. See
    /// [`migrate_batch_via`](Self::migrate_batch_via).
    pub fn migrate_batch(&self) -> Result<MigrationProgress, TextError> {
        self.migrate_batch_via(None)
    }

    /// Runs one bounded batch of the active migration, with an optional
    /// explicit source replica order (the retry layer passes one that
    /// demotes a breaker-open primary, forcing replica-sourced transfer).
    ///
    /// A batch is two charged legs plus a commit:
    ///
    /// 1. **source leg** (`xfer.out`): one invocation plus `c_l` per
    ///    document, failing over through the source replicas; every
    ///    faulted attempt is booked. If every replica refuses, nothing is
    ///    in flight and the call fails transiently — the journal cursor is
    ///    unchanged.
    /// 2. **destination leg** (`xfer.in`): one invocation plus `c_p` per
    ///    posting. A `Timeout` delivers (and charges) a prefix; the
    ///    journal remembers it, so resumption ingests only the remainder —
    ///    transferred postings are never re-bought. If every replica
    ///    refuses, the fetched batch stays in flight and the next call
    ///    resumes the destination leg (`MigrationResume`) without
    ///    re-reading the source.
    /// 3. **commit**: the batch's documents flip visibility (hidden on the
    ///    source, visible on the destination), re-route, bump the topology
    ///    epoch, and advance the journal high-water mark.
    pub fn migrate_batch_via(
        &self,
        src_order: Option<&[usize]>,
    ) -> Result<MigrationProgress, TextError> {
        struct Work {
            mv: usize,
            src: usize,
            dst: usize,
            start: usize,
            n: usize,
            resumed: bool,
            delivered: u64,
            batch_postings: u64,
        }
        let work = {
            let mut st = self.migration.borrow_mut();
            let Some(state) = st.as_mut() else {
                return Ok(MigrationProgress::Idle);
            };
            while state.current < state.plan.moves.len()
                && matches!(
                    state.journal.entries[state.current].status,
                    MoveStatus::Done | MoveStatus::Aborted
                )
            {
                state.current += 1;
                state.cursor = 0;
            }
            if state.current >= state.plan.moves.len() {
                return Ok(MigrationProgress::Idle);
            }
            let mv = state.current;
            let entry = &state.journal.entries[mv];
            let staged = &state.staged[mv];
            let resumed = state.in_flight > 0;
            let n = if resumed {
                state.in_flight
            } else {
                state.plan.batch_docs.min(staged.len() - state.cursor)
            };
            let start = state.cursor;
            let batch_postings = staged[start..start + n].iter().map(|d| d.postings).sum();
            Work {
                mv,
                src: entry.src,
                dst: entry.dst,
                start,
                n,
                resumed,
                delivered: state.delivered,
                batch_postings,
            }
        };
        let c = self.replicas[0][0].constants();
        if work.resumed {
            self.emit(EventKind::MigrationResume {
                mv: work.mv as u64,
                src: work.src,
                dst: work.dst,
                docs: work.n as u64,
                epoch: self.epoch.get(),
            });
        } else {
            let order = match src_order {
                Some(o) => o.to_vec(),
                None => self.routing_order(work.src),
            };
            let mut fetched = false;
            for (pos, &r) in order.iter().enumerate() {
                let server = &self.replicas[work.src][r];
                match server.fault_plan().next_search_fault(server.max_terms()) {
                    Some(Fault::Unavailable) => {
                        self.book_xfer(
                            "xfer.out",
                            work.src,
                            Some("transfer source unavailable".to_string()),
                            Charge {
                                invocations: 1,
                                faults: 1,
                                time_invocation: c.c_i,
                                ..Charge::default()
                            },
                        );
                        if let Some(&next) = order.get(pos + 1) {
                            self.emit(EventKind::Failover {
                                shard: work.src,
                                replica: next,
                            });
                        }
                    }
                    Some(Fault::Timeout { after_postings }) => {
                        // An out-leg timeout yields no usable documents:
                        // long forms are all-or-nothing per doc, and the
                        // batch is re-read whole from the next replica.
                        self.book_xfer(
                            "xfer.out",
                            work.src,
                            Some(format!(
                                "transfer source timeout after {after_postings} postings"
                            )),
                            Charge {
                                invocations: 1,
                                faults: 1,
                                time_invocation: c.c_i,
                                ..Charge::default()
                            },
                        );
                        if let Some(&next) = order.get(pos + 1) {
                            self.emit(EventKind::Failover {
                                shard: work.src,
                                replica: next,
                            });
                        }
                    }
                    fault => {
                        // None, CapReduced (caps do not bound transfers),
                        // or Slow (latency-only) — the read succeeds.
                        let slow = match fault {
                            Some(Fault::Slow { delta_s }) => f64::from(delta_s),
                            _ => 0.0,
                        };
                        self.book_xfer(
                            "xfer.out",
                            work.src,
                            None,
                            Charge {
                                invocations: 1,
                                docs_long: work.n as i64,
                                time_invocation: c.c_i,
                                time_transmission: c.c_l * work.n as f64,
                                time_backoff: slow,
                                ..Charge::default()
                            },
                        );
                        fetched = true;
                        break;
                    }
                }
            }
            if !fetched {
                return Err(TextError::Unavailable);
            }
            let mut st = self.migration.borrow_mut();
            let state = st.as_mut().expect("active migration");
            state.in_flight = work.n;
            state.delivered = 0;
            state.journal.entries[work.mv].status = MoveStatus::InProgress;
        }
        let mut delivered = work.delivered;
        let order = self.routing_order(work.dst);
        let mut ingested = false;
        for (pos, &r) in order.iter().enumerate() {
            let server = &self.replicas[work.dst][r];
            match server.fault_plan().next_search_fault(server.max_terms()) {
                Some(Fault::Unavailable) => {
                    self.book_xfer(
                        "xfer.in",
                        work.dst,
                        Some("transfer destination unavailable".to_string()),
                        Charge {
                            invocations: 1,
                            faults: 1,
                            time_invocation: c.c_i,
                            ..Charge::default()
                        },
                    );
                    if let Some(&next) = order.get(pos + 1) {
                        self.emit(EventKind::Failover {
                            shard: work.dst,
                            replica: next,
                        });
                    }
                }
                Some(Fault::Timeout { after_postings }) => {
                    let part = after_postings.min(work.batch_postings - delivered);
                    self.book_xfer(
                        "xfer.in",
                        work.dst,
                        Some(format!(
                            "transfer destination timeout after {part} postings"
                        )),
                        Charge {
                            invocations: 1,
                            faults: 1,
                            postings: part as i64,
                            time_invocation: c.c_i,
                            time_processing: c.c_p * part as f64,
                            ..Charge::default()
                        },
                    );
                    delivered += part;
                    if let Some(&next) = order.get(pos + 1) {
                        self.emit(EventKind::Failover {
                            shard: work.dst,
                            replica: next,
                        });
                    }
                }
                fault => {
                    let slow = match fault {
                        Some(Fault::Slow { delta_s }) => f64::from(delta_s),
                        _ => 0.0,
                    };
                    let rem = work.batch_postings - delivered;
                    self.book_xfer(
                        "xfer.in",
                        work.dst,
                        None,
                        Charge {
                            invocations: 1,
                            postings: rem as i64,
                            time_invocation: c.c_i,
                            time_processing: c.c_p * rem as f64,
                            time_backoff: slow,
                            ..Charge::default()
                        },
                    );
                    delivered = work.batch_postings;
                    ingested = true;
                    break;
                }
            }
        }
        if !ingested {
            // The fetched batch stays in flight; the postings already
            // delivered are journaled so resumption never re-buys them.
            let mut st = self.migration.borrow_mut();
            let state = st.as_mut().expect("active migration");
            state.delivered = delivered;
            return Err(TextError::Unavailable);
        }
        let (high_water, move_done, finished) = {
            let mut st = self.migration.borrow_mut();
            let state = st.as_mut().expect("active migration");
            let batch = &state.staged[work.mv][work.start..work.start + work.n];
            {
                let mut hidden = self.hidden.borrow_mut();
                let mut route = self.route.borrow_mut();
                for sd in batch {
                    hidden[work.src].insert(sd.src_local);
                    hidden[work.dst].remove(&sd.dst_local);
                    route[sd.global.0 as usize] = (work.dst, sd.dst_local);
                }
            }
            let high_water = batch.last().expect("batches are non-empty").global;
            state.cursor += work.n;
            state.in_flight = 0;
            state.delivered = 0;
            let entry = &mut state.journal.entries[work.mv];
            entry.high_water = Some(high_water);
            let move_done = state.cursor == state.staged[work.mv].len();
            if move_done {
                entry.status = MoveStatus::Done;
                state.current += 1;
                state.cursor = 0;
            }
            (high_water, move_done, state.journal.finished())
        };
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        self.epoch_log.borrow_mut().push((epoch, work.src, work.dst));
        self.emit(EventKind::MigrationBatch {
            mv: work.mv as u64,
            src: work.src,
            dst: work.dst,
            docs: work.n as u64,
            postings: work.batch_postings,
            high_water: u64::from(high_water.0),
            epoch,
        });
        Ok(MigrationProgress::Committed {
            mv: work.mv,
            docs: work.n,
            resumed: work.resumed,
            move_done,
            finished,
        })
    }

    /// Cleanly abandons the current move: its committed documents revert
    /// to the pre-move routing (visibility flips back), the journal marks
    /// it `Aborted`, and the epoch bumps so in-flight gathers re-scatter
    /// the affected shards. Sunk transfer charges stay booked — they were
    /// spent — but rows are never wrong. Returns `false` when there is no
    /// move to abort.
    pub fn abort_current_move(&self) -> bool {
        let (mv, src, dst, committed) = {
            let mut st = self.migration.borrow_mut();
            let Some(state) = st.as_mut() else {
                return false;
            };
            while state.current < state.plan.moves.len()
                && matches!(
                    state.journal.entries[state.current].status,
                    MoveStatus::Done | MoveStatus::Aborted
                )
            {
                state.current += 1;
                state.cursor = 0;
            }
            if state.current >= state.plan.moves.len() {
                return false;
            }
            let mv = state.current;
            let src = state.journal.entries[mv].src;
            let dst = state.journal.entries[mv].dst;
            let committed = state.cursor;
            {
                let mut hidden = self.hidden.borrow_mut();
                let mut route = self.route.borrow_mut();
                for sd in &state.staged[mv][..committed] {
                    hidden[src].remove(&sd.src_local);
                    hidden[dst].insert(sd.dst_local);
                    route[sd.global.0 as usize] = (src, sd.src_local);
                }
            }
            let entry = &mut state.journal.entries[mv];
            entry.status = MoveStatus::Aborted;
            entry.high_water = None;
            state.cursor = 0;
            state.in_flight = 0;
            state.delivered = 0;
            state.current += 1;
            (mv, src, dst, committed)
        };
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        self.epoch_log.borrow_mut().push((epoch, src, dst));
        self.emit(EventKind::MigrationAbort {
            mv: mv as u64,
            src,
            dst,
            reverted: committed as u64,
            epoch,
        });
        true
    }

    /// Drives the active migration to completion (for fault-free paths;
    /// transient transfer failures propagate for the caller's retry loop,
    /// resuming from the journal).
    pub fn run_migration(&self) -> Result<(), TextError> {
        loop {
            match self.migrate_batch()? {
                MigrationProgress::Idle => return Ok(()),
                MigrationProgress::Committed { .. } => {}
            }
        }
    }

    /// The per-query-leg migration pacing tick (free when pacing is off or
    /// no migration is active). A transiently failed step simply waits for
    /// the next tick — that retry is exactly the journal-resume path.
    fn pace_migration(&self) {
        let every = self.pacing.get();
        if every == 0 || !self.migration_active() {
            return;
        }
        let n = self.ops_since_step.get() + 1;
        if n >= every {
            self.ops_since_step.set(0);
            let _ = self.migrate_batch();
        } else {
            self.ops_since_step.set(n);
        }
    }
}

impl TextService for ShardedTextServer {
    fn schema(&self) -> &TextSchema {
        self.replicas[0][0].collection().schema()
    }

    fn doc_count(&self) -> usize {
        self.route.borrow().len()
    }

    /// The minimum cap over every replica of every shard: a package legal
    /// under the aggregate cap is legal on every server a failover could
    /// route it to.
    fn max_terms(&self) -> usize {
        self.replicas
            .iter()
            .flatten()
            .map(|s| s.max_terms())
            .min()
            .expect("at least one shard")
    }

    fn constants(&self) -> CostConstants {
        self.replicas[0][0].constants()
    }

    /// Exact sum of the per-replica ledgers plus the aggregate-level
    /// counters.
    fn usage(&self) -> Usage {
        let mut total = *self.extra.borrow();
        total.accumulate(&self.migration_usage.borrow());
        for s in self.replicas.iter().flatten() {
            total.accumulate(&s.usage());
        }
        total
    }

    fn reset_usage(&self) {
        *self.extra.borrow_mut() = Usage::default();
        for s in self.replicas.iter().flatten() {
            s.reset_usage();
        }
    }

    /// Backoff charged against the service as a whole (when the caller does
    /// not attribute the wait to one shard — per-shard retry loops use
    /// [`charge_shard_backoff`](Self::charge_shard_backoff) instead).
    fn charge_backoff(&self, seconds: f64) {
        {
            let mut u = self.extra.borrow_mut();
            u.retries += 1;
            u.time_backoff += seconds;
        }
        self.emit(EventKind::Backoff {
            shard: None,
            seconds,
            charge: Charge {
                retries: 1,
                time_backoff: seconds,
                ..Charge::default()
            },
        });
    }

    fn search(&self, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        self.validate_cap(expr)?;
        Ok(Self::merge(self.scatter_search(expr)?))
    }

    fn search_str(&self, query: &str) -> Result<SearchResult, TextError> {
        let expr = parse_search(query, TextService::schema(self))?;
        TextService::search(self, &expr)
    }

    fn probe(&self, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        Ok(TextService::search(self, expr)?.ids())
    }

    /// Routes to the owning shard, failing over through its replica
    /// routing order on transient errors (single attempt per replica).
    fn retrieve(&self, id: DocId) -> Result<Document, TextError> {
        let routed = self.route.borrow().get(id.0 as usize).copied();
        match routed {
            Some((shard, local)) => {
                let order = self.routing_order(shard);
                let mut last: Option<TextError> = None;
                for (pos, &r) in order.iter().enumerate() {
                    match self.replicas[shard][r].retrieve(local) {
                        Ok(doc) => return Ok(doc),
                        Err(e) if e.is_transient() => {
                            if let Some(&next) = order.get(pos + 1) {
                                self.emit(EventKind::Failover {
                                    shard,
                                    replica: next,
                                });
                            }
                            last = Some(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(last.expect("routing order is never empty"))
            }
            None => Err(TextError::UnknownDoc(id)),
        }
    }

    fn retrieve_all(&self, ids: &[DocId]) -> Result<Vec<Document>, Box<PartialRetrieveError>> {
        let mut docs = Vec::with_capacity(ids.len());
        for &id in ids {
            match TextService::retrieve(self, id) {
                Ok(doc) => docs.push(doc),
                Err(error) => {
                    return Err(Box::new(PartialRetrieveError {
                        docs,
                        failed: id,
                        error,
                    }))
                }
            }
        }
        Ok(docs)
    }

    /// Scatters the whole batch to every shard (each applies its own
    /// invocation rebate) and union-merges member-wise. Caps are validated
    /// against the aggregate cap up front, so a rejected batch is free.
    fn search_batch(&self, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        for e in exprs {
            self.validate_cap(e)?;
        }
        // A shard is relevant to the batch if any member may match there;
        // pruned shards answer every member with a free empty result.
        let batch_mask = |sh: &Self| -> Vec<bool> {
            let masks: Vec<Vec<bool>> = exprs.iter().map(|e| sh.relevant_shards(e)).collect();
            (0..sh.replicas.len())
                .map(|i| masks.iter().any(|m| m[i]) || masks.is_empty())
                .collect()
        };
        let mut from_epoch = self.epoch.get();
        let mut relevant = batch_mask(self);
        let mut per_shard: Vec<Option<BatchResult>> = vec![None; self.replicas.len()];
        loop {
            let now = self.epoch.get();
            if now != from_epoch {
                let affected = self.shards_touched_since(from_epoch);
                self.emit(EventKind::RoutingStale {
                    from_epoch,
                    to_epoch: now,
                    shards: affected.clone(),
                });
                for &i in &affected {
                    per_shard[i] = None;
                }
                relevant = batch_mask(self);
                from_epoch = now;
            }
            for i in 0..per_shard.len() {
                if per_shard[i].is_some() {
                    continue;
                }
                if !relevant[i] {
                    per_shard[i] = Some(BatchResult {
                        results: vec![SearchResult { docs: Vec::new() }; exprs.len()],
                    });
                    continue;
                }
                match self.failover_batch(i, exprs) {
                    Ok(b) => per_shard[i] = Some(b),
                    Err(e) if e.is_transient() => {
                        return Err(TextError::Shard(Box::new(PartialShardError {
                            partial: Vec::new(),
                            failed_shard: i,
                            error: e,
                            epoch: self.epoch.get(),
                        })))
                    }
                    Err(e) => return Err(e),
                }
            }
            if self.epoch.get() == from_epoch {
                break;
            }
        }
        let per_shard: Vec<BatchResult> =
            per_shard.into_iter().map(|b| b.expect("all gathered")).collect();
        let results = (0..exprs.len())
            .map(|j| Self::merge(per_shard.iter().map(|b| b.results[j].clone()).collect()))
            .collect();
        Ok(BatchResult { results })
    }

    fn export_stats(&self) -> VocabularyStats {
        VocabularyStats::merged((0..self.replicas.len()).map(|i| self.shard(i).export_stats()))
    }

    fn reconstruct_short(&self, id: DocId) -> Option<ShortDoc> {
        let (shard, local) = self.route.borrow().get(id.0 as usize).copied()?;
        let coll = self.shard(shard).collection();
        coll.document(local)
            .map(|d| d.short_form(id, coll.schema()))
    }

    fn as_sharded(&self) -> Option<&ShardedTextServer> {
        Some(self)
    }

    fn recorder(&self) -> Option<Rc<Recorder>> {
        ShardedTextServer::recorder(self)
    }

    fn topology_epoch(&self) -> u64 {
        self.epoch.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{Document, TextSchema};
    use crate::faults::{Fault, FaultPlan};

    fn corpus(n: usize) -> Collection {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        for i in 0..n {
            c.add_document(
                Document::new()
                    .with(ti, format!("shared subject {i}"))
                    .with(au, format!("author{i}")),
            );
        }
        c
    }

    #[test]
    fn partition_is_deterministic_and_total() {
        let coll = corpus(40);
        let a = ShardedTextServer::new(&coll, 4, 7);
        let b = ShardedTextServer::new(&coll, 4, 7);
        assert_eq!(a.doc_count(), 40);
        let sizes: Vec<usize> = (0..4).map(|i| a.shard(i).doc_count()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 40);
        assert!(sizes.iter().all(|&s| s > 0), "seeded hash spreads docs: {sizes:?}");
        for g in 0..40 {
            assert_eq!(a.owner_of(DocId(g)), b.owner_of(DocId(g)));
        }
        // A different seed re-deals the placement.
        let c = ShardedTextServer::new(&coll, 4, 8);
        assert!((0..40).any(|g| a.owner_of(DocId(g)) != c.owner_of(DocId(g))));
    }

    #[test]
    fn scatter_search_matches_single_server_in_global_id_order() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&sharded, "TI='shared'").unwrap();
        assert_eq!(got.ids(), want.ids(), "same docids, global order");
        assert_eq!(got.docs, want.docs, "same short forms");
    }

    #[test]
    fn scatter_charges_each_shard_an_invocation() {
        let coll = corpus(40);
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        TextService::search_str(&sharded, "TI='shared'").unwrap();
        for i in 0..4 {
            assert_eq!(sharded.shard_usage(i).invocations, 1, "shard {i}");
        }
        let u = TextService::usage(&sharded);
        assert_eq!(u.invocations, 4, "per-shard invocation charges aggregate");
        let mut summed = Usage::default();
        for i in 0..4 {
            summed.accumulate(&sharded.shard_usage(i));
        }
        assert_eq!(u, summed, "aggregate ledger is the exact shard sum");
    }

    #[test]
    fn retrieve_routes_to_the_owning_shard_only() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let want = single.retrieve(DocId(11)).unwrap();
        let got = TextService::retrieve(&sharded, DocId(11)).unwrap();
        assert_eq!(got, want);
        let owner = sharded.owner_of(DocId(11)).unwrap();
        for i in 0..4 {
            let u = sharded.shard_usage(i);
            if i == owner {
                assert_eq!(u.docs_long, 1);
            } else {
                assert_eq!(u, Usage::default(), "shard {i} untouched");
            }
        }
        assert!(matches!(
            TextService::retrieve(&sharded, DocId(999)),
            Err(TextError::UnknownDoc(DocId(999)))
        ));
    }

    #[test]
    fn aggregate_cap_is_min_over_shards_and_rejects_free() {
        let coll = corpus(40);
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded.shard_mut(2).set_max_terms(2);
        assert_eq!(TextService::max_terms(&sharded), 2);
        let err =
            TextService::search_str(&sharded, "AU='a' or AU='b' or AU='c'").unwrap_err();
        assert!(matches!(err, TextError::TooManyTerms { count: 3, max: 2 }));
        let u = TextService::usage(&sharded);
        assert_eq!((u.invocations, u.rejected), (0, 1), "rejected uncharged");
    }

    #[test]
    fn transient_shard_failure_carries_partial_gather() {
        let coll = corpus(40);
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded
            .shard_mut(2)
            .set_fault_plan(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
        let err = TextService::search_str(&sharded, "TI='shared'").unwrap_err();
        let TextError::Shard(pse) = err else {
            panic!("expected a shard error, got {err}");
        };
        assert_eq!(pse.failed_shard, 2);
        assert_eq!(pse.gathered(), 2, "shards 0 and 1 had answered");
        assert!(pse.partial[0].is_some() && pse.partial[1].is_some());
        assert!(pse.partial[2].is_none() && pse.partial[3].is_none());
        // The failed attempt was still charged on shard 2's ledger.
        assert_eq!(sharded.shard_usage(2).faults, 1);
        assert_eq!(sharded.shard_usage(2).invocations, 1);
    }

    #[test]
    fn merged_stats_equal_single_server_stats() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let a = single.export_stats();
        let b = TextService::export_stats(&sharded);
        assert_eq!(b.doc_count, 40);
        let au = TextService::schema(&sharded).field_by_name("author").unwrap();
        let ti = TextService::schema(&sharded).field_by_name("title").unwrap();
        for field in [au, ti] {
            let fa = a.field(field).unwrap();
            let fb = b.field(field).unwrap();
            assert_eq!(fa.vocabulary, fb.vocabulary);
            assert_eq!(fa.total_df, fb.total_df);
            assert_eq!(fa.histogram, fb.histogram);
        }
        assert_eq!(a.fanout("shared", ti), b.fanout("shared", ti));
        assert_eq!(TextService::usage(&sharded).total_cost(), 0.0, "export is free");
    }

    #[test]
    fn reconstruct_short_stamps_global_ids() {
        let coll = corpus(10);
        let sharded = ShardedTextServer::new(&coll, 3, 7);
        let sf = TextService::reconstruct_short(&sharded, DocId(6)).unwrap();
        assert_eq!(sf.id, DocId(6));
        let single = TextServer::new(coll);
        assert_eq!(
            sf,
            TextService::reconstruct_short(&single, DocId(6)).unwrap()
        );
    }

    #[test]
    fn replica_placement_is_deterministic_and_serves_identically() {
        let coll = corpus(40);
        let a = ShardedTextServer::replicated(&coll, 4, 3, 7);
        let b = ShardedTextServer::replicated(&coll, 4, 3, 7);
        assert_eq!(a.replication_factor(), 3);
        for i in 0..4 {
            assert_eq!(a.primary_of(i), b.primary_of(i));
            assert_eq!(a.routing_order(i)[0], a.primary_of(i));
            let mut sorted = a.routing_order(i);
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "routing order is a permutation");
        }
        // Unreplicated construction pins every primary to replica 0.
        let r1 = ShardedTextServer::new(&coll, 4, 7);
        for i in 0..4 {
            assert_eq!(r1.primary_of(i), 0);
            assert_eq!(r1.routing_order(i), vec![0]);
        }
        // Replication never changes the answer.
        let single = TextServer::new(coll.clone());
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&a, "TI='shared'").unwrap();
        assert_eq!(got.docs, want.docs);
        // The healthy path charges only the primaries.
        let u = TextService::usage(&a);
        assert_eq!(u.invocations, 4, "secondaries are free while primaries answer");
    }

    #[test]
    fn dead_primary_fails_over_to_a_secondary() {
        let coll = corpus(40);
        let mut s = ShardedTextServer::replicated(&coll, 4, 2, 7);
        let p = s.primary_of(2);
        s.replica_mut(2, p).set_fault_plan(FaultPlan::dead(9));
        let single = TextServer::new(coll.clone());
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&s, "TI='shared'").unwrap();
        assert_eq!(got.docs, want.docs, "failover preserves the result");
        // The dead primary was charged its failed attempt; the secondary
        // served the real one.
        let sec = (p + 1) % 2;
        assert_eq!(s.replica(2, p).usage().faults, 1);
        assert_eq!(s.replica(2, sec).usage().invocations, 1);
        // Shard and aggregate ledgers both see every replica's charges.
        assert_eq!(s.shard_usage(2).faults, 1);
        let mut summed = *s.extra.borrow();
        for i in 0..4 {
            summed.accumulate(&s.shard_usage(i));
        }
        assert_eq!(TextService::usage(&s), summed);
        // Owner-routed retrieves fail over the same way.
        let victim = (0..40)
            .map(DocId)
            .find(|&g| s.owner_of(g) == Some(2))
            .unwrap();
        let doc = TextService::retrieve(&s, victim).unwrap();
        assert_eq!(doc, single.retrieve(victim).unwrap());
    }

    #[test]
    fn complete_gather_reuses_paid_partials() {
        let coll = corpus(40);
        let mut s = ShardedTextServer::new(&coll, 4, 7);
        s.shard_mut(2)
            .set_fault_plan(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
        let expr = parse_search("TI='shared'", TextService::schema(&s)).unwrap();
        let err = TextService::search(&s, &expr).unwrap_err();
        let TextError::Shard(pse) = err else {
            panic!("expected a shard error");
        };
        let before = s.shard_usage(0);
        let done = s.complete_gather(&pse.partial, &expr).unwrap();
        assert_eq!(
            s.shard_usage(0),
            before,
            "already-gathered shards are reused, never re-bought"
        );
        let single = TextServer::new(coll.clone());
        assert_eq!(done.docs, single.search(&expr).unwrap().docs);
    }

    #[test]
    fn rebate_replica_unbooks_a_cancelled_leg_everywhere() {
        let coll = corpus(40);
        let s = ShardedTextServer::replicated(&coll, 4, 2, 7);
        let expr = parse_search("TI='shared'", TextService::schema(&s)).unwrap();
        let loser = (s.primary_of(1) + 1) % 2;
        let aggregate_before = TextService::usage(&s);
        let leg_before = s.replica(1, loser).usage();
        s.search_replica(1, loser, &expr).unwrap();
        let leg = s.replica(1, loser).usage().since(&leg_before);
        assert!(leg.total_cost() > 0.0, "the leg did chargeable work");
        s.rebate_replica(1, loser, &leg);
        assert_eq!(s.replica(1, loser).usage(), leg_before);
        assert_eq!(s.shard_usage(1), Usage::default());
        assert_eq!(TextService::usage(&s), aggregate_before);
    }

    #[test]
    fn batch_scatters_with_per_shard_rebates() {
        let coll = corpus(20);
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        let au = TextService::schema(&sharded).field_by_name("author").unwrap();
        let exprs: Vec<SearchExpr> = (0..5)
            .map(|i| SearchExpr::term_in(&format!("author{i}"), au))
            .collect();
        let batch = TextService::search_batch(&sharded, &exprs).unwrap();
        assert_eq!(batch.results.len(), 5);
        for (i, r) in batch.results.iter().enumerate() {
            assert_eq!(r.ids(), vec![DocId(i as u32)], "member {i} finds its doc");
        }
        // Each shard charged one net invocation for the whole batch.
        let u = TextService::usage(&sharded);
        assert_eq!(u.invocations, 4, "batch rebate applied per shard");
    }

    // ---- online rebalancing -------------------------------------------

    use crate::rebalance::{MigrationPlan, MigrationProgress, Move, MoveStatus};

    #[test]
    fn migration_preserves_results_and_reroutes_ownership() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        let plan = MigrationPlan::seeded(3, 4, 40, 3, 2);
        let journal = sharded.begin_migration(plan.clone());
        assert_eq!(journal.begun_at_epoch, 0);
        // Staging alone changes nothing visible and costs nothing.
        assert_eq!(TextService::topology_epoch(&sharded), 0);
        assert_eq!(sharded.migration_usage(), Usage::default());
        sharded.run_migration().unwrap();
        let journal = sharded.journal().unwrap();
        assert!(journal.finished());
        for (e, m) in journal.entries.iter().zip(&plan.moves) {
            assert_eq!(e.status, MoveStatus::Done, "move {m:?}");
            if e.docs > 0 {
                assert!(e.high_water.is_some());
                // Every staged docid now routes to the destination.
                for g in m.range.0 .0..m.range.1 .0 {
                    assert_ne!(sharded.owner_of(DocId(g)), Some(m.src));
                }
            }
        }
        assert!(TextService::topology_epoch(&sharded) > 0, "commits bump the epoch");
        // Transfers were charged: both legs, postings and long docs > 0.
        let mu = sharded.migration_usage();
        assert!(mu.invocations >= 2 && mu.postings_processed > 0 && mu.docs_long > 0);
        // Queries and retrieves still agree with the single server exactly.
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&sharded, "TI='shared'").unwrap();
        assert_eq!(got.ids(), want.ids());
        assert_eq!(got.docs, want.docs);
        for g in [0u32, 11, 23, 39] {
            assert_eq!(
                TextService::retrieve(&sharded, DocId(g)).unwrap(),
                single.retrieve(DocId(g)).unwrap()
            );
        }
    }

    #[test]
    fn migration_bucket_is_disjoint_from_query_ledgers() {
        let coll = corpus(40);
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded.begin_migration(MigrationPlan::seeded(3, 4, 40, 2, 4));
        sharded.run_migration().unwrap();
        let mu = sharded.migration_usage();
        assert!(mu.total_cost() > 0.0);
        // No per-shard query ledger saw a transfer charge...
        for i in 0..4 {
            assert_eq!(sharded.shard_usage(i), Usage::default(), "shard {i}");
        }
        // ...yet the aggregate ledger carries the bucket exactly.
        assert_eq!(TextService::usage(&sharded), mu);
        TextService::search_str(&sharded, "TI='shared'").unwrap();
        let mut want = mu;
        for i in 0..4 {
            want.accumulate(&sharded.shard_usage(i));
        }
        assert_eq!(TextService::usage(&sharded), want, "bucket + shard sums");
    }

    #[test]
    fn interrupted_destination_resumes_without_rebuying_postings() {
        let coll = corpus(40);
        // Fault-free control run to learn the exact transfer invoice.
        let mut control = ShardedTextServer::new(&coll, 4, 7);
        let src = control.owner_of(DocId(0)).unwrap();
        let dst = (src + 1) % 4;
        let mv = Move { range: (DocId(0), DocId(40)), src, dst };
        control.begin_migration(MigrationPlan::new(vec![mv], 40));
        control.run_migration().unwrap();
        let control_postings = control.migration_usage().postings_processed;
        assert!(control_postings > 0);

        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        // The destination times out mid-ingest, then dies once more before
        // recovering: two interrupted attempts, one resume each.
        sharded.replica_mut(dst, 0).set_fault_plan(FaultPlan::scripted(vec![
            (0, Fault::Timeout { after_postings: 3 }),
            (1, Fault::Unavailable),
        ]));
        sharded.begin_migration(MigrationPlan::new(vec![mv], 40));
        assert!(matches!(sharded.migrate_batch(), Err(TextError::Unavailable)));
        assert!(matches!(sharded.migrate_batch(), Err(TextError::Unavailable)));
        let got = sharded.migrate_batch().unwrap();
        assert_eq!(
            got,
            MigrationProgress::Committed {
                mv: 0,
                docs: sharded.journal().unwrap().entries[0].docs as usize,
                resumed: true,
                move_done: true,
                finished: true,
            }
        );
        let mu = sharded.migration_usage();
        assert_eq!(
            mu.postings_processed, control_postings,
            "interrupts never re-buy postings: the timed-out prefix is kept"
        );
        assert_eq!(mu.faults, 2);
        // The source leg ran exactly once: docs_long charged once.
        assert_eq!(mu.docs_long, control.migration_usage().docs_long);
    }

    #[test]
    fn dead_source_primary_drains_through_a_replica() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let mut sharded = ShardedTextServer::replicated(&coll, 4, 2, 7);
        let src = sharded.owner_of(DocId(5)).unwrap();
        let dst = (src + 1) % 4;
        let p = sharded.primary_of(src);
        sharded.replica_mut(src, p).set_fault_plan(FaultPlan::dead(9));
        sharded.begin_migration(MigrationPlan::new(
            vec![Move { range: (DocId(0), DocId(40)), src, dst }],
            3,
        ));
        sharded.run_migration().unwrap();
        assert_eq!(sharded.journal().unwrap().entries[0].status, MoveStatus::Done);
        assert!(sharded.migration_usage().faults > 0, "dead primary billed faults");
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&sharded, "TI='shared'").unwrap();
        assert_eq!(got.docs, want.docs, "drained via replica, rows exact");
    }

    #[test]
    fn unresumable_move_aborts_back_to_pre_move_routing() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        let src = sharded.owner_of(DocId(0)).unwrap();
        let dst = (src + 1) % 4;
        sharded.begin_migration(MigrationPlan::new(
            vec![Move { range: (DocId(0), DocId(40)), src, dst }],
            1,
        ));
        // One batch commits, then the operator gives up on the move.
        sharded.migrate_batch().unwrap();
        let moved = DocId(0);
        assert_eq!(sharded.owner_of(moved), Some(dst));
        let epoch_before = TextService::topology_epoch(&sharded);
        assert!(sharded.abort_current_move());
        assert_eq!(sharded.owner_of(moved), Some(src), "committed doc reverted");
        assert_eq!(sharded.journal().unwrap().entries[0].status, MoveStatus::Aborted);
        assert!(sharded.journal().unwrap().finished());
        assert!(!sharded.migration_active());
        assert_eq!(TextService::topology_epoch(&sharded), epoch_before + 1);
        assert!(!sharded.abort_current_move(), "nothing left to abort");
        // Rows are never wrong: results match the single server again.
        let want = single.search_str("TI='shared'").unwrap();
        let got = TextService::search_str(&sharded, "TI='shared'").unwrap();
        assert_eq!(got.docs, want.docs);
        assert_eq!(
            TextService::retrieve(&sharded, moved).unwrap(),
            single.retrieve(moved).unwrap()
        );
    }

    #[test]
    fn paced_migration_under_live_queries_stays_exact_and_emits_stale() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        let sink = Rc::new(crate::obs::RingSink::unbounded());
        sharded.set_recorder(Some(Recorder::new(sink.clone())));
        sharded.begin_migration(MigrationPlan::seeded(3, 4, 40, 4, 1));
        sharded.set_migration_pacing(1);
        let want = single.search_str("TI='shared'").unwrap();
        while sharded.migration_active() {
            let got = TextService::search_str(&sharded, "TI='shared'").unwrap();
            assert_eq!(got.ids(), want.ids(), "exact mid-migration");
            assert_eq!(got.docs, want.docs);
        }
        let events = sink.events();
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::RoutingStale { .. })),
            "a mid-gather commit re-scattered the affected shards"
        );
        assert!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::RoutingStale { .. }))
                .all(|e| e.kind.charge().is_none()),
            "re-scatter detection is free"
        );
    }

    #[test]
    fn stats_routing_prunes_provably_irrelevant_shards() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded.set_stats_routing(true);
        // "author17" lives in exactly one document, hence one shard.
        let want = single.search_str("AU='author17'").unwrap();
        let got = TextService::search_str(&sharded, "AU='author17'").unwrap();
        assert_eq!(got.docs, want.docs);
        let u = TextService::usage(&sharded);
        assert_eq!(u.invocations, 1, "three shards pruned for free");
        let owner = sharded.owner_of(DocId(17)).unwrap();
        let mask = sharded.relevant_shards(&parse_search("AU='author17'", TextService::schema(&sharded)).unwrap());
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
        assert!(mask[owner]);
        // A term present everywhere prunes nothing.
        let mask = sharded.relevant_shards(&parse_search("TI='shared'", TextService::schema(&sharded)).unwrap());
        assert!(mask.iter().all(|&b| b));
        // Routing off: no pruning, the invoice shape is the classic one.
        sharded.set_stats_routing(false);
        sharded.reset_usage();
        TextService::search_str(&sharded, "AU='author17'").unwrap();
        assert_eq!(TextService::usage(&sharded).invocations, 4);
    }

    #[test]
    fn stats_routing_stays_sound_during_migration() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        sharded.set_stats_routing(true);
        sharded.begin_migration(MigrationPlan::seeded(5, 4, 40, 4, 2));
        sharded.set_migration_pacing(1);
        while sharded.migration_active() {
            for probe in ["AU='author17'", "AU='author3'", "TI='shared'"] {
                let got = TextService::search_str(&sharded, probe).unwrap();
                let want = single.search_str(probe).unwrap();
                assert_eq!(got.docs, want.docs, "{probe} exact mid-migration");
            }
        }
    }

    #[test]
    fn complete_gather_from_an_older_epoch_regathers_moved_shards() {
        let coll = corpus(40);
        let single = TextServer::new(coll.clone());
        let mut sharded = ShardedTextServer::new(&coll, 4, 7);
        let expr = parse_search("TI='shared'", TextService::schema(&sharded)).unwrap();
        // A full gather at epoch 0, kept as a stale partial.
        let partial: Vec<Option<SearchResult>> = (0..4)
            .map(|i| Some(sharded.failover_search(i, &expr).unwrap()))
            .collect();
        let src = sharded.owner_of(DocId(0)).unwrap();
        let dst = (src + 1) % 4;
        sharded.begin_migration(MigrationPlan::new(
            vec![Move { range: (DocId(0), DocId(40)), src, dst }],
            40,
        ));
        sharded.run_migration().unwrap();
        let before = TextService::usage(&sharded);
        let res = sharded.complete_gather_from(&partial, &expr, 0).unwrap();
        assert_eq!(res.docs, single.search_str("TI='shared'").unwrap().docs);
        let delta = TextService::usage(&sharded).since(&before);
        assert_eq!(
            delta.invocations, 2,
            "only the move's source and destination re-gathered"
        );
    }
}
