//! Tokenization and term normalization.
//!
//! Boolean text retrieval systems of the early 1990s (the paper's model,
//! Section 2.1) index *words*: case-folded alphanumeric runs. Positions are
//! recorded so that phrase searches (`'belief update'`) and proximity
//! searches (`'information near10 filtering'`) can be answered from the
//! inverted index alone.

/// A token produced by [`tokenize`]: the normalized word plus its position
/// (0-based word offset) within the field value it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized (lower-cased) word.
    pub word: String,
    /// 0-based word position within the source field value.
    pub pos: u32,
}

/// Returns `true` if `c` is part of a word. We treat ASCII alphanumerics and
/// a few intra-word connectors as word characters, matching the simple
/// word model of inversion-based systems.
#[inline]
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

/// Splits `text` into normalized, positioned tokens.
///
/// Words are maximal runs of alphanumeric characters, lower-cased. Anything
/// else (whitespace, punctuation) separates words and is not indexed.
///
/// ```
/// use textjoin_text::token::tokenize;
/// let toks = tokenize("Belief Update, revisited!");
/// let words: Vec<&str> = toks.iter().map(|t| t.word.as_str()).collect();
/// assert_eq!(words, ["belief", "update", "revisited"]);
/// assert_eq!(toks[2].pos, 2);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut pos = 0u32;
    for c in text.chars() {
        if is_word_char(c) {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(Token {
                word: std::mem::take(&mut cur),
                pos,
            });
            pos += 1;
        }
    }
    if !cur.is_empty() {
        out.push(Token { word: cur, pos });
    }
    out
}

/// Normalizes a single search word the same way [`tokenize`] normalizes
/// indexed words, so that search terms and indexed terms compare equal.
///
/// Non-word characters are dropped entirely; `"O'Hara"` normalizes to
/// `"ohara"`? No — tokenization would split it. For single-word search terms
/// we keep only the first token; multi-word input should go through
/// [`normalize_phrase`] instead.
pub fn normalize_word(word: &str) -> String {
    tokenize(word)
        .into_iter()
        .next()
        .map(|t| t.word)
        .unwrap_or_default()
}

/// Normalizes a phrase (multi-word search term) into its sequence of
/// normalized words, e.g. `"Belief Update"` → `["belief", "update"]`.
pub fn normalize_phrase(phrase: &str) -> Vec<String> {
    tokenize(phrase).into_iter().map(|t| t.word).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        let toks = tokenize("Information Filtering");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].word, "information");
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].word, "filtering");
        assert_eq!(toks[1].pos, 1);
    }

    #[test]
    fn tokenize_punctuation_and_case() {
        let toks = tokenize("  Garcia-Molina, H.  ");
        let words: Vec<&str> = toks.iter().map(|t| t.word.as_str()).collect();
        assert_eq!(words, ["garcia", "molina", "h"]);
        // positions are word offsets, not byte offsets
        assert_eq!(toks.iter().map(|t| t.pos).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn tokenize_empty_and_nonword() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! ---").is_empty());
    }

    #[test]
    fn tokenize_digits() {
        let toks = tokenize("May 1993");
        let words: Vec<&str> = toks.iter().map(|t| t.word.as_str()).collect();
        assert_eq!(words, ["may", "1993"]);
    }

    #[test]
    fn normalize_word_single() {
        assert_eq!(normalize_word("Filtering"), "filtering");
        assert_eq!(normalize_word("  UPDATE?! "), "update");
        assert_eq!(normalize_word(""), "");
    }

    #[test]
    fn normalize_phrase_multi() {
        assert_eq!(normalize_phrase("Belief Update"), ["belief", "update"]);
        assert!(normalize_phrase("...").is_empty());
    }

    #[test]
    fn tokenize_unicode_lowercase() {
        let toks = tokenize("Über Datenbanken");
        assert_eq!(toks[0].word, "über");
        assert_eq!(toks[1].word, "datenbanken");
    }
}
