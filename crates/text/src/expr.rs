//! Boolean search expressions.
//!
//! The paper's search model (Section 2.1): basic search terms are words
//! (`filtering`), truncated words (`filter?`), or phrases
//! (`'information filtering'`); a term may be limited to a field
//! (`AU='smith'`); proximity search (`information near10 filtering`) is
//! supported; terms combine with `and`, `or`, `not`. Systems bound the
//! number of basic terms per search (Mercury allows 70) — [`SearchExpr::term_count`]
//! is what that bound is checked against.

use std::fmt;

use crate::doc::{FieldId, TextSchema};
use crate::token::{normalize_phrase, normalize_word};

/// The kind of a basic search term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermKind {
    /// A single normalized word, e.g. `filtering`.
    Word(String),
    /// A truncated word: all vocabulary words with this prefix, e.g.
    /// `filter?` → prefix `filter`.
    Prefix(String),
    /// A phrase: the words must occur consecutively in one field value.
    Phrase(Vec<String>),
}

/// A basic search term, optionally limited to one field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicTerm {
    /// What to match.
    pub kind: TermKind,
    /// Restrict matches to this field; `None` searches every field.
    pub field: Option<FieldId>,
}

impl BasicTerm {
    /// Builds a term from raw user text: multi-word input becomes a
    /// [`TermKind::Phrase`], a trailing `?` on a single word a
    /// [`TermKind::Prefix`], anything else a [`TermKind::Word`]. Input is
    /// normalized like indexed text. A trailing `?` on a *multi-word* term
    /// (`'belief update?'`) falls back to an exact phrase — truncation
    /// inside phrases is not part of the paper's search model, and
    /// silently dropping words would be worse than ignoring the `?`.
    pub fn parse_text(text: &str, field: Option<FieldId>) -> Self {
        let trimmed = text.trim();
        let kind = if let Some(stem) = trimmed
            .strip_suffix('?')
            .filter(|stem| normalize_phrase(stem).len() <= 1)
        {
            TermKind::Prefix(normalize_word(stem))
        } else {
            let trimmed = trimmed.trim_end_matches('?');
            let words = normalize_phrase(trimmed);
            match words.len() {
                0 => TermKind::Word(String::new()),
                1 => TermKind::Word(words.into_iter().next().expect("len checked")),
                _ => TermKind::Phrase(words),
            }
        };
        Self { kind, field }
    }
}

/// A Boolean search expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchExpr {
    /// A basic term.
    Term(BasicTerm),
    /// Proximity: both words occur in the same field value within
    /// `distance` word positions of each other (either order).
    Near {
        /// Left word.
        a: BasicTerm,
        /// Right word.
        b: BasicTerm,
        /// Maximum absolute positional gap.
        distance: u32,
    },
    /// Conjunction of all children.
    And(Vec<SearchExpr>),
    /// Disjunction of all children.
    Or(Vec<SearchExpr>),
    /// `lhs and not rhs` — Boolean systems implement `not` as set
    /// difference against a positive operand.
    AndNot(Box<SearchExpr>, Box<SearchExpr>),
}

impl SearchExpr {
    /// A word/phrase/truncated term searched in `field` (auto-detected from
    /// the text, see [`BasicTerm::parse_text`]).
    pub fn term_in(text: &str, field: FieldId) -> Self {
        SearchExpr::Term(BasicTerm::parse_text(text, Some(field)))
    }

    /// A term searched across all fields.
    pub fn term_any(text: &str) -> Self {
        SearchExpr::Term(BasicTerm::parse_text(text, None))
    }

    /// Conjunction; flattens nested `And`s and drops the wrapper for a
    /// single child.
    pub fn and(children: Vec<SearchExpr>) -> Self {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SearchExpr::And(cs) => flat.extend(cs),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            SearchExpr::And(flat)
        }
    }

    /// Disjunction; flattens nested `Or`s and drops the wrapper for a
    /// single child.
    pub fn or(children: Vec<SearchExpr>) -> Self {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SearchExpr::Or(cs) => flat.extend(cs),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            SearchExpr::Or(flat)
        }
    }

    /// Number of basic search terms in the expression — the quantity
    /// commercial systems bound per search (the paper's parameter `M`).
    /// A phrase counts as one term, as does a proximity pair's each side.
    pub fn term_count(&self) -> usize {
        match self {
            SearchExpr::Term(_) => 1,
            SearchExpr::Near { .. } => 2,
            SearchExpr::And(cs) | SearchExpr::Or(cs) => cs.iter().map(Self::term_count).sum(),
            SearchExpr::AndNot(a, b) => a.term_count() + b.term_count(),
        }
    }

    /// Renders the expression in Mercury-style syntax using `schema` for
    /// field aliases, e.g. `TI='belief update' and AU='radhika'`.
    pub fn display<'a>(&'a self, schema: &'a TextSchema) -> DisplaySearch<'a> {
        DisplaySearch { expr: self, schema }
    }
}

/// Helper implementing [`fmt::Display`] for a search expression with field
/// aliases resolved against a schema.
pub struct DisplaySearch<'a> {
    expr: &'a SearchExpr,
    schema: &'a TextSchema,
}

impl fmt::Display for DisplaySearch<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self.expr, self.schema, f, false)
    }
}

fn fmt_term(t: &BasicTerm, schema: &TextSchema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Some(fid) = t.field {
        write!(f, "{}=", schema.def(fid).alias)?;
    }
    match &t.kind {
        TermKind::Word(w) => write!(f, "'{w}'"),
        TermKind::Prefix(p) => write!(f, "'{p}?'"),
        TermKind::Phrase(ws) => write!(f, "'{}'", ws.join(" ")),
    }
}

fn fmt_expr(
    e: &SearchExpr,
    schema: &TextSchema,
    f: &mut fmt::Formatter<'_>,
    parenthesize: bool,
) -> fmt::Result {
    match e {
        SearchExpr::Term(t) => fmt_term(t, schema, f),
        SearchExpr::Near { a, b, distance } => {
            fmt_term(a, schema, f)?;
            write!(f, " near{distance} ")?;
            fmt_term(b, schema, f)
        }
        SearchExpr::And(cs) => {
            if parenthesize {
                write!(f, "(")?;
            }
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                fmt_expr(c, schema, f, true)?;
            }
            if parenthesize {
                write!(f, ")")?;
            }
            Ok(())
        }
        SearchExpr::Or(cs) => {
            if parenthesize {
                write!(f, "(")?;
            }
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    write!(f, " or ")?;
                }
                fmt_expr(c, schema, f, true)?;
            }
            if parenthesize {
                write!(f, ")")?;
            }
            Ok(())
        }
        SearchExpr::AndNot(a, b) => {
            if parenthesize {
                write!(f, "(")?;
            }
            fmt_expr(a, schema, f, true)?;
            write!(f, " not ")?;
            fmt_expr(b, schema, f, true)?;
            if parenthesize {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TextSchema {
        TextSchema::bibliographic()
    }

    #[test]
    fn parse_text_detects_kinds() {
        let s = schema();
        let ti = s.field_by_name("title").unwrap();
        let t = BasicTerm::parse_text("Belief Update", Some(ti));
        assert_eq!(
            t.kind,
            TermKind::Phrase(vec!["belief".into(), "update".into()])
        );
        let t = BasicTerm::parse_text("filter?", None);
        assert_eq!(t.kind, TermKind::Prefix("filter".into()));
        let t = BasicTerm::parse_text("Filtering", None);
        assert_eq!(t.kind, TermKind::Word("filtering".into()));
    }

    #[test]
    fn multiword_truncation_keeps_all_words() {
        // 'belief update?' must not silently become Prefix("belief").
        let t = BasicTerm::parse_text("belief update?", None);
        assert_eq!(
            t.kind,
            TermKind::Phrase(vec!["belief".into(), "update".into()])
        );
    }

    #[test]
    fn and_or_flatten() {
        let s = schema();
        let ti = s.field_by_name("title").unwrap();
        let e = SearchExpr::and(vec![
            SearchExpr::term_in("a", ti),
            SearchExpr::and(vec![SearchExpr::term_in("b", ti), SearchExpr::term_in("c", ti)]),
        ]);
        match &e {
            SearchExpr::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
        let single = SearchExpr::or(vec![SearchExpr::term_in("a", ti)]);
        assert!(matches!(single, SearchExpr::Term(_)));
    }

    #[test]
    fn term_count_counts_basic_terms() {
        let s = schema();
        let ti = s.field_by_name("title").unwrap();
        let au = s.field_by_name("author").unwrap();
        // TI='text' and (AU=a or AU=b or AU=c) → 4 terms
        let e = SearchExpr::and(vec![
            SearchExpr::term_in("text", ti),
            SearchExpr::or(vec![
                SearchExpr::term_in("a", au),
                SearchExpr::term_in("b", au),
                SearchExpr::term_in("c", au),
            ]),
        ]);
        assert_eq!(e.term_count(), 4);
        // A phrase is a single search term.
        assert_eq!(SearchExpr::term_in("belief update", ti).term_count(), 1);
    }

    #[test]
    fn display_mercury_syntax() {
        let s = schema();
        let ti = s.field_by_name("title").unwrap();
        let au = s.field_by_name("author").unwrap();
        let e = SearchExpr::and(vec![
            SearchExpr::term_in("belief update", ti),
            SearchExpr::or(vec![
                SearchExpr::term_in("Gravano", au),
                SearchExpr::term_in("Kao", au),
            ]),
        ]);
        assert_eq!(
            e.display(&s).to_string(),
            "TI='belief update' and (AU='gravano' or AU='kao')"
        );
    }

    #[test]
    fn display_not_and_near() {
        let s = schema();
        let ti = s.field_by_name("title").unwrap();
        let e = SearchExpr::AndNot(
            Box::new(SearchExpr::term_in("update", ti)),
            Box::new(SearchExpr::term_in("belief", ti)),
        );
        assert_eq!(e.display(&s).to_string(), "TI='update' not TI='belief'");
        let near = SearchExpr::Near {
            a: BasicTerm::parse_text("information", Some(ti)),
            b: BasicTerm::parse_text("filtering", Some(ti)),
            distance: 10,
        };
        assert_eq!(
            near.display(&s).to_string(),
            "TI='information' near10 TI='filtering'"
        );
        assert_eq!(near.term_count(), 2);
    }
}
