//! Parser for Mercury-style search syntax.
//!
//! Accepts the query strings the paper sends to the text system, e.g.
//!
//! ```text
//! TI='belief update' and AU='Radhika'
//! TI=text and (AU=Gravano or ... or AU=Kao)
//! 'information' near10 'filtering'
//! ```
//!
//! Grammar (lowest to highest precedence): `or`, `and`, `not` (as the binary
//! and-not of Boolean systems), then primaries — parenthesized expressions,
//! proximity pairs (`A nearN B`), and basic terms (`[FIELD=]'text'` where the
//! quotes are optional for single words).

use std::fmt;

use crate::doc::TextSchema;
use crate::expr::{BasicTerm, SearchExpr};

/// A parse failure, with a human-readable message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Quoted(String),
    And,
    Or,
    Not,
    Near(u32),
    Eq,
    LParen,
    RParen,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = self.src[self.pos..].chars().next().expect("in bounds");
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += c.len_utf8();
                }
                '(' => {
                    out.push((Tok::LParen, start));
                    self.pos += 1;
                }
                ')' => {
                    out.push((Tok::RParen, start));
                    self.pos += 1;
                }
                '=' => {
                    out.push((Tok::Eq, start));
                    self.pos += 1;
                }
                '\'' | '"' => {
                    self.pos += 1;
                    let rest = &self.src[self.pos..];
                    match rest.find(c) {
                        Some(end) => {
                            out.push((Tok::Quoted(rest[..end].to_owned()), start));
                            self.pos += end + 1;
                        }
                        None => return Err(self.err("unterminated quoted term")),
                    }
                }
                _ => {
                    // A bare word: letters, digits, '?', '-', '_' run.
                    let rest = &self.src[self.pos..];
                    let end = rest
                        .find(|ch: char| {
                            !(ch.is_alphanumeric() || ch == '?' || ch == '-' || ch == '_')
                        })
                        .unwrap_or(rest.len());
                    if end == 0 {
                        return Err(self.err(format!("unexpected character {c:?}")));
                    }
                    let word = &rest[..end];
                    self.pos += end;
                    let lower = word.to_ascii_lowercase();
                    let tok = if lower == "and" {
                        Tok::And
                    } else if lower == "or" {
                        Tok::Or
                    } else if lower == "not" {
                        Tok::Not
                    } else if let Some(n) = lower.strip_prefix("near") {
                        if n.is_empty() {
                            Tok::Near(1)
                        } else if let Ok(d) = n.parse::<u32>() {
                            Tok::Near(d)
                        } else {
                            Tok::Word(word.to_owned())
                        }
                    } else {
                        Tok::Word(word.to_owned())
                    };
                    out.push((tok, start));
                }
            }
        }
        Ok(out)
    }
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    i: usize,
    schema: &'a TextSchema,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map(|&(_, o)| o).unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn expr(&mut self) -> Result<SearchExpr, ParseError> {
        let mut children = vec![self.and_expr()?];
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            children.push(self.and_expr()?);
        }
        Ok(SearchExpr::or(children))
    }

    fn and_expr(&mut self) -> Result<SearchExpr, ParseError> {
        let mut children = vec![self.not_expr()?];
        while self.peek() == Some(&Tok::And) {
            self.bump();
            children.push(self.not_expr()?);
        }
        Ok(SearchExpr::and(children))
    }

    fn not_expr(&mut self) -> Result<SearchExpr, ParseError> {
        let mut lhs = self.primary()?;
        while self.peek() == Some(&Tok::Not) {
            self.bump();
            let rhs = self.primary()?;
            lhs = SearchExpr::AndNot(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<SearchExpr, ParseError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err("expected ')'")),
                }
            }
            _ => {
                let a = self.basic_term()?;
                if let Some(Tok::Near(d)) = self.peek() {
                    let d = *d;
                    self.bump();
                    let b = self.basic_term()?;
                    Ok(SearchExpr::Near { a, b, distance: d })
                } else {
                    Ok(SearchExpr::Term(a))
                }
            }
        }
    }

    fn basic_term(&mut self) -> Result<BasicTerm, ParseError> {
        match self.bump() {
            Some(Tok::Word(w)) => {
                if self.peek() == Some(&Tok::Eq) {
                    // FIELD=term
                    self.bump();
                    let field = self
                        .schema
                        .resolve(&w)
                        .ok_or_else(|| self.err(format!("unknown field {w:?}")))?;
                    match self.bump() {
                        Some(Tok::Word(t)) | Some(Tok::Quoted(t)) => {
                            Ok(BasicTerm::parse_text(&t, Some(field)))
                        }
                        _ => Err(self.err("expected search term after '='")),
                    }
                } else {
                    Ok(BasicTerm::parse_text(&w, None))
                }
            }
            Some(Tok::Quoted(t)) => Ok(BasicTerm::parse_text(&t, None)),
            Some(other) => Err(self.err(format!("expected a search term, found {other:?}"))),
            None => Err(self.err("expected a search term, found end of input")),
        }
    }
}

/// Parses a Mercury-style search string against `schema`.
///
/// ```
/// use textjoin_text::{doc::TextSchema, parse::parse_search};
/// let schema = TextSchema::bibliographic();
/// let e = parse_search("TI='belief update' and AU='Radhika'", &schema).unwrap();
/// assert_eq!(e.term_count(), 2);
/// ```
pub fn parse_search(input: &str, schema: &TextSchema) -> Result<SearchExpr, ParseError> {
    let toks = Lexer::new(input).tokens()?;
    if toks.is_empty() {
        return Err(ParseError {
            message: "empty search".into(),
            offset: 0,
        });
    }
    let mut p = Parser {
        toks,
        i: 0,
        schema,
        src_len: input.len(),
    };
    let e = p.expr()?;
    if p.i != p.toks.len() {
        return Err(p.err("trailing input after search expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TermKind;

    fn schema() -> TextSchema {
        TextSchema::bibliographic()
    }

    #[test]
    fn parse_simple_conjunction() {
        let s = schema();
        let e = parse_search("TI='belief update' and AU='Radhika'", &s).unwrap();
        assert_eq!(
            e.display(&s).to_string(),
            "TI='belief update' and AU='radhika'"
        );
    }

    #[test]
    fn parse_semi_join_disjunction() {
        let s = schema();
        let e = parse_search("TI=text and (AU=Gravano or AU=Kao)", &s).unwrap();
        assert_eq!(e.term_count(), 3);
        assert_eq!(
            e.display(&s).to_string(),
            "TI='text' and (AU='gravano' or AU='kao')"
        );
    }

    #[test]
    fn parse_precedence_or_lowest() {
        let s = schema();
        let e = parse_search("AU=a and AU=b or AU=c", &s).unwrap();
        // (a and b) or c
        match e {
            SearchExpr::Or(cs) => {
                assert_eq!(cs.len(), 2);
                assert!(matches!(cs[0], SearchExpr::And(_)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parse_not_binds_tighter_than_and() {
        let s = schema();
        let e = parse_search("AU=a not AU=b and AU=c", &s).unwrap();
        match e {
            SearchExpr::And(cs) => {
                assert!(matches!(cs[0], SearchExpr::AndNot(_, _)));
            }
            other => panic!("expected And at top, got {other:?}"),
        }
    }

    #[test]
    fn parse_near() {
        let s = schema();
        let e = parse_search("'information' near10 'filtering'", &s).unwrap();
        match e {
            SearchExpr::Near { distance, .. } => assert_eq!(distance, 10),
            other => panic!("expected Near, got {other:?}"),
        }
    }

    #[test]
    fn parse_truncation() {
        let s = schema();
        let e = parse_search("TI=filter?", &s).unwrap();
        match e {
            SearchExpr::Term(t) => assert_eq!(t.kind, TermKind::Prefix("filter".into())),
            other => panic!("expected Term, got {other:?}"),
        }
    }

    #[test]
    fn parse_field_aliases_and_names() {
        let s = schema();
        assert!(parse_search("title='x'", &s).is_ok());
        assert!(parse_search("TI='x'", &s).is_ok());
        assert!(parse_search("ti='x'", &s).is_ok());
    }

    #[test]
    fn parse_errors() {
        let s = schema();
        assert!(parse_search("", &s).is_err());
        assert!(parse_search("BOGUS='x'", &s).is_err());
        assert!(parse_search("TI='unterminated", &s).is_err());
        assert!(parse_search("TI='a' and", &s).is_err());
        assert!(parse_search("(TI='a'", &s).is_err());
        assert!(parse_search("TI='a') junk", &s).is_err());
        let err = parse_search("TI=", &s).unwrap_err();
        assert!(err.message.contains("expected search term"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let s = schema();
        let inputs = [
            "TI='belief update' and AU='radhika'",
            "TI='text' and (AU='gravano' or AU='kao')",
            "TI='update' not TI='belief'",
        ];
        for inp in inputs {
            let e = parse_search(inp, &s).unwrap();
            let rendered = e.display(&s).to_string();
            let e2 = parse_search(&rendered, &s).unwrap();
            assert_eq!(e, e2, "roundtrip failed for {inp}");
        }
    }
}
