//! Deterministic fault injection for the text server.
//!
//! The paper's loose integration reaches Mercury over a WAN (Sections 2.3
//! and 7); a remote Boolean service refuses connections, times out
//! mid-scan, and renegotiates its term cap `M` under load. A [`FaultPlan`]
//! scripts those misbehaviors *deterministically*: the same seed produces
//! the same fault sequence on every run, so chaos experiments stay
//! byte-reproducible (the repo-wide determinism invariant).
//!
//! Faults only ever make an operation *fail* — they never corrupt a result
//! set. That is what makes the chaos oracle provable: any completed search
//! is a correct search, so a retrying client either converges on the exact
//! brute-force answer or surfaces a clean error.
//!
//! Charging semantics live in [`crate::server::TextServer`]; the plan only
//! decides *whether* and *how* the next operation fails.

use std::cell::RefCell;
use std::fmt;

/// One injected misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Connection refused / service busy. Transient: the identical call can
    /// succeed a moment later.
    Unavailable,
    /// The server started processing, read `after_postings` postings, then
    /// gave up. Transient, but the partial work is still charged.
    Timeout {
        /// Postings processed (and charged) before the deadline hit.
        after_postings: u64,
    },
    /// The server renegotiated its basic-term cap down to `new_m`
    /// mid-flight (real Boolean services did this under load). Permanent
    /// for the current cap: retrying the same search verbatim cannot help,
    /// the client must re-package.
    CapReduced {
        /// The new, lower cap `M`.
        new_m: usize,
    },
    /// The server answers correctly but late: `delta_s` extra simulated
    /// seconds, charged as backoff time. Latency-only — the operation
    /// *succeeds*, no error is surfaced — so hedged reads and deadlines
    /// have a realistic straggler to race against.
    Slow {
        /// Extra simulated seconds before the (correct) answer arrives.
        delta_s: u32,
    },
}

impl Fault {
    /// True for faults that only add latency and never surface an error.
    pub fn is_latency_only(&self) -> bool {
        matches!(self, Fault::Slow { .. })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Unavailable => write!(f, "unavailable"),
            Fault::Timeout { after_postings } => {
                write!(f, "timeout after {after_postings} postings")
            }
            Fault::CapReduced { new_m } => write!(f, "cap reduced to {new_m}"),
            Fault::Slow { delta_s } => write!(f, "slow +{delta_s}s"),
        }
    }
}

/// Which fault kinds a random plan may draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKinds {
    pub unavailable: bool,
    pub timeout: bool,
    pub cap_reduced: bool,
    pub slow: bool,
}

impl FaultKinds {
    /// Only faults a bounded retry loop provably recovers from.
    pub fn transient_only() -> Self {
        FaultKinds {
            unavailable: true,
            timeout: true,
            cap_reduced: false,
            slow: false,
        }
    }

    /// Every *erroring* kind, including cap renegotiation. Latency-only
    /// `Slow` faults are opt-in (via [`FaultKinds::slow_only`] or the
    /// `slow` field) so existing seeded chaos streams keep their exact
    /// draw sequences.
    pub fn all() -> Self {
        FaultKinds {
            unavailable: true,
            timeout: true,
            cap_reduced: true,
            slow: false,
        }
    }

    /// Only latency faults: the server always answers, sometimes late.
    pub fn slow_only() -> Self {
        FaultKinds {
            unavailable: false,
            timeout: false,
            cap_reduced: false,
            slow: true,
        }
    }
}

#[derive(Debug, Clone)]
struct PlanState {
    rng: u64,
    /// Consecutive faults injected without an intervening success.
    consecutive: u32,
    injected: u64,
}

/// A seeded, deterministic schedule of server misbehavior.
///
/// Two modes:
/// * **random** ([`FaultPlan::transient`], [`FaultPlan::chaos`]): each
///   operation faults with probability `rate`, drawn from a splitmix64
///   stream. `max_consecutive` bounds runs of back-to-back faults; any
///   retry policy allowing more attempts than that bound is guaranteed to
///   get through.
/// * **scripted** ([`FaultPlan::scripted`]): exact faults at exact search
///   ordinals, for surgically reproducing a scenario in tests.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rate: f64,
    kinds: FaultKinds,
    /// 0 = unbounded.
    max_consecutive: u32,
    /// `(search ordinal, fault)` pairs, sorted; consulted instead of the
    /// random stream when non-empty.
    script: Vec<(u64, Fault)>,
    /// Search ordinal counter for scripted mode (counts every attempt).
    search_ops: RefCell<u64>,
    state: RefCell<PlanState>,
}

impl FaultPlan {
    /// The no-fault plan: the server behaves exactly as before this module
    /// existed.
    pub fn none() -> Self {
        FaultPlan {
            rate: 0.0,
            kinds: FaultKinds::transient_only(),
            max_consecutive: 0,
            script: Vec::new(),
            search_ops: RefCell::new(0),
            state: RefCell::new(PlanState {
                rng: 0,
                consecutive: 0,
                injected: 0,
            }),
        }
    }

    /// Random transient faults (`Unavailable`/`Timeout` only) at the given
    /// per-operation `rate`, with at most `max_consecutive` back-to-back
    /// faults (0 = unbounded). With `max_consecutive < RetryPolicy::
    /// max_attempts`, every operation eventually succeeds.
    pub fn transient(seed: u64, rate: f64, max_consecutive: u32) -> Self {
        Self::random(seed, rate, FaultKinds::transient_only(), max_consecutive)
    }

    /// Random faults of every kind, including cap renegotiation.
    pub fn chaos(seed: u64, rate: f64, max_consecutive: u32) -> Self {
        Self::random(seed, rate, FaultKinds::all(), max_consecutive)
    }

    /// A permanently dead server: every operation faults transiently and no
    /// consecutive bound ever forces a success through. Retrying cannot
    /// help; only failing over to a replica can.
    pub fn dead(seed: u64) -> Self {
        Self::random(seed, 1.0, FaultKinds::transient_only(), 0)
    }

    /// A straggler server: operations always *succeed* but, at the given
    /// `rate`, arrive `1..=8` simulated seconds late (charged as backoff).
    /// No error ever surfaces, so no retry fires — only hedging or a
    /// deadline can route around the latency.
    pub fn slow(seed: u64, rate: f64) -> Self {
        Self::random(seed, rate, FaultKinds::slow_only(), 0)
    }

    /// Random plan with explicit kind selection.
    pub fn random(seed: u64, rate: f64, kinds: FaultKinds, max_consecutive: u32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of [0,1]");
        FaultPlan {
            rate,
            kinds,
            max_consecutive,
            script: Vec::new(),
            search_ops: RefCell::new(0),
            state: RefCell::new(PlanState {
                rng: seed ^ 0x6a09_e667_f3bc_c908, // offset so seed 0 still mixes
                consecutive: 0,
                injected: 0,
            }),
        }
    }

    /// Exact faults at exact search ordinals (0-based, counting every
    /// search *attempt*, including ones that fault). Retrieve operations
    /// are never faulted by a scripted plan.
    pub fn scripted(mut faults: Vec<(u64, Fault)>) -> Self {
        faults.sort_by_key(|&(op, _)| op);
        FaultPlan {
            rate: 0.0,
            kinds: FaultKinds::all(),
            max_consecutive: 0,
            script: faults,
            search_ops: RefCell::new(0),
            state: RefCell::new(PlanState {
                rng: 0,
                consecutive: 0,
                injected: 0,
            }),
        }
    }

    /// True when this plan can never inject anything.
    pub fn is_none(&self) -> bool {
        self.rate == 0.0 && self.script.is_empty()
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.borrow().injected
    }

    fn next_u64(state: &mut PlanState) -> u64 {
        state.rng = state.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(state: &mut PlanState) -> f64 {
        (Self::next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of the next search attempt. `current_m` is the
    /// server's cap, used to derive a meaningful `CapReduced` target.
    pub fn next_search_fault(&self, current_m: usize) -> Option<Fault> {
        if !self.script.is_empty() {
            let op = {
                let mut ops = self.search_ops.borrow_mut();
                let op = *ops;
                *ops += 1;
                op
            };
            let fault = self
                .script
                .iter()
                .find(|&&(at, _)| at == op)
                .map(|&(_, f)| f);
            if fault.is_some() {
                self.state.borrow_mut().injected += 1;
            }
            return fault;
        }
        self.draw(|state| {
            // Uniform choice over the enabled kinds.
            let mut menu: Vec<u8> = Vec::with_capacity(4);
            if self.kinds.unavailable {
                menu.push(0);
            }
            if self.kinds.timeout {
                menu.push(1);
            }
            // A cap below 4 would make even single-conjunct packages
            // unsendable; stop renegotiating at that floor.
            if self.kinds.cap_reduced && current_m > 4 {
                menu.push(2);
            }
            if self.kinds.slow {
                menu.push(3);
            }
            if menu.is_empty() {
                return None;
            }
            let pick = menu[(Self::next_u64(state) % menu.len() as u64) as usize];
            Some(match pick {
                0 => Fault::Unavailable,
                1 => Fault::Timeout {
                    after_postings: Self::next_u64(state) % 4096,
                },
                2 => Fault::CapReduced {
                    new_m: (current_m * 2 / 3).max(4),
                },
                _ => Fault::Slow {
                    delta_s: 1 + (Self::next_u64(state) % 8) as u32,
                },
            })
        })
    }

    /// Decides the fate of the next retrieve attempt. Retrievals have no
    /// term cap and their processing is subsumed in `c_l`, so only
    /// `Unavailable` applies.
    pub fn next_retrieve_fault(&self) -> Option<Fault> {
        if !self.script.is_empty() {
            return None;
        }
        if !self.kinds.unavailable {
            return None;
        }
        self.draw(|_| Some(Fault::Unavailable))
    }

    /// Shared random-mode bookkeeping: rate check, consecutive bound, and
    /// the success/fault counter updates.
    fn draw(&self, pick: impl FnOnce(&mut PlanState) -> Option<Fault>) -> Option<Fault> {
        if self.rate == 0.0 {
            return None;
        }
        let mut state = self.state.borrow_mut();
        let capped = self.max_consecutive > 0 && state.consecutive >= self.max_consecutive;
        if capped || Self::unit_f64(&mut state) >= self.rate {
            state.consecutive = 0;
            return None;
        }
        match pick(&mut state) {
            Some(fault) => {
                state.consecutive += 1;
                state.injected += 1;
                Some(fault)
            }
            None => {
                state.consecutive = 0;
                None
            }
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for _ in 0..1000 {
            assert_eq!(p.next_search_fault(70), None);
            assert_eq!(p.next_retrieve_fault(), None);
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let a = FaultPlan::chaos(17, 0.5, 0);
        let b = FaultPlan::chaos(17, 0.5, 0);
        for _ in 0..500 {
            assert_eq!(a.next_search_fault(70), b.next_search_fault(70));
            assert_eq!(a.next_retrieve_fault(), b.next_retrieve_fault());
        }
        assert!(a.injected() > 0, "rate 0.5 over 1000 draws must fault");
    }

    #[test]
    fn consecutive_bound_is_respected() {
        let p = FaultPlan::transient(3, 1.0, 2);
        let mut run = 0u32;
        let mut saw_success = false;
        for _ in 0..300 {
            match p.next_search_fault(70) {
                Some(_) => {
                    run += 1;
                    assert!(run <= 2, "more than max_consecutive faults in a row");
                }
                None => {
                    run = 0;
                    saw_success = true;
                }
            }
        }
        assert!(saw_success, "bound must force successes through");
    }

    #[test]
    fn transient_plans_never_touch_the_cap() {
        let p = FaultPlan::transient(11, 1.0, 0);
        for _ in 0..500 {
            if let Some(f) = p.next_search_fault(70) {
                assert!(
                    matches!(f, Fault::Unavailable | Fault::Timeout { .. }),
                    "transient plan drew {f:?}"
                );
            }
        }
    }

    #[test]
    fn cap_reduction_respects_floor() {
        let p = FaultPlan::random(5, 1.0, FaultKinds::all(), 0);
        let mut m = 70usize;
        for _ in 0..200 {
            if let Some(Fault::CapReduced { new_m }) = p.next_search_fault(m) {
                assert!(new_m < m, "cap must actually shrink ({new_m} !< {m})");
                assert!(new_m >= 4);
                m = new_m;
            }
        }
        // With the floor at 4 the plan stops offering reductions.
        let at_floor = FaultPlan::random(6, 1.0, FaultKinds::all(), 0);
        for _ in 0..200 {
            if let Some(f) = at_floor.next_search_fault(4) {
                assert!(!matches!(f, Fault::CapReduced { .. }));
            }
        }
    }

    #[test]
    fn dead_plan_faults_every_operation() {
        let p = FaultPlan::dead(42);
        for _ in 0..200 {
            assert!(p.next_search_fault(70).is_some(), "a dead server never answers");
            assert!(matches!(
                p.next_search_fault(70),
                Some(Fault::Unavailable | Fault::Timeout { .. })
            ));
        }
    }

    #[test]
    fn slow_plans_only_draw_latency_faults() {
        let p = FaultPlan::slow(9, 1.0);
        for _ in 0..200 {
            let f = p.next_search_fault(70).expect("rate 1.0 must draw");
            assert!(f.is_latency_only(), "slow plan drew {f:?}");
            match f {
                Fault::Slow { delta_s } => assert!((1..=8).contains(&delta_s)),
                other => panic!("slow plan drew {other:?}"),
            }
        }
        // Retrieves need `unavailable`, which slow-only plans disable.
        assert_eq!(p.next_retrieve_fault(), None);
    }

    #[test]
    fn erroring_menus_never_draw_slow() {
        let p = FaultPlan::chaos(21, 1.0, 0);
        for _ in 0..300 {
            if let Some(f) = p.next_search_fault(70) {
                assert!(!f.is_latency_only(), "chaos menu drew {f:?}");
            }
        }
    }

    #[test]
    fn scripted_hits_exact_ordinals() {
        let p = FaultPlan::scripted(vec![
            (1, Fault::Unavailable),
            (3, Fault::CapReduced { new_m: 5 }),
        ]);
        assert_eq!(p.next_search_fault(70), None); // op 0
        assert_eq!(p.next_search_fault(70), Some(Fault::Unavailable)); // op 1
        assert_eq!(p.next_search_fault(70), None); // op 2
        assert_eq!(
            p.next_search_fault(70),
            Some(Fault::CapReduced { new_m: 5 })
        ); // op 3
        assert_eq!(p.next_search_fault(70), None); // op 4
        assert_eq!(p.injected(), 2);
        assert_eq!(p.next_retrieve_fault(), None);
    }
}
