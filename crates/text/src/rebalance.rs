//! Online shard rebalancing: deterministic migration plans and the journal
//! that makes interrupted moves resumable exactly-once.
//!
//! A [`MigrationPlan`] names docid ranges to drain from one shard to
//! another. [`ShardedTextServer::begin_migration`] stages the plan (every
//! destination replica receives an invisible physical copy of each
//! in-flight document), then
//! [`migrate_batch`](crate::shard::ShardedTextServer::migrate_batch)
//! executes it in bounded batches: each batch buys a **source leg**
//! (`xfer.out` — one invocation plus `c_l` per document read off the
//! source shard) and a **destination leg** (`xfer.in` — one invocation
//! plus `c_p` per posting ingested), both booked in the dedicated
//! migration usage bucket and emitted as `Call` events so the
//! trace↔ledger audit extends to transfers.
//!
//! Robustness mirrors `complete_gather`:
//!
//! * either leg can fault ([`Fault::Unavailable`]/[`Fault::Timeout`] —
//!   drawn from the replica's own fault plan) and fail over through the
//!   shard's replica routing order, so a permanently dead source primary
//!   is drained from its replicas;
//! * a batch whose source leg succeeded but whose destination leg
//!   exhausted every replica stays **in flight**: the journal remembers
//!   the fetched documents and the postings already delivered, and the
//!   next [`migrate_batch`] resumes the destination leg without re-buying
//!   either (`MigrationResume`);
//! * [`abort_current_move`](crate::shard::ShardedTextServer::abort_current_move)
//!   reverts an unresumable move's committed documents back to the
//!   pre-move routing — sunk transfer charges stay booked (they were
//!   spent), but rows are never wrong.
//!
//! Every committed batch (and every abort) bumps the topology epoch, which
//! the scatter/gather paths watch to re-scatter only the shards a
//! concurrent commit touched (`RoutingStale`).
//!
//! [`ShardedTextServer::begin_migration`]: crate::shard::ShardedTextServer::begin_migration
//! [`Fault::Unavailable`]: crate::faults::Fault::Unavailable
//! [`Fault::Timeout`]: crate::faults::Fault::Timeout
//! [`migrate_batch`]: crate::shard::ShardedTextServer::migrate_batch

use crate::doc::DocId;

/// `splitmix64` — the same mixer the partition and fault plans use.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One keyspace move: every document in `range` currently owned by shard
/// `src` migrates to shard `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Half-open global docid range `[range.0, range.1)`.
    pub range: (DocId, DocId),
    /// Shard to drain.
    pub src: usize,
    /// Shard that takes ownership.
    pub dst: usize,
}

/// A deterministic rebalancing plan: an ordered list of moves executed in
/// bounded batches of `batch_docs` documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Moves, executed strictly in order.
    pub moves: Vec<Move>,
    /// Documents transferred per batch (the unit of interruption).
    pub batch_docs: usize,
}

impl MigrationPlan {
    /// A plan from explicit moves.
    pub fn new(moves: Vec<Move>, batch_docs: usize) -> Self {
        assert!(batch_docs > 0, "a migration batch moves at least one doc");
        Self { moves, batch_docs }
    }

    /// A seeded plan: `n_moves` windows over the docid space, each
    /// draining a seeded source shard into a seeded (distinct)
    /// destination. The same `(seed, n_shards, doc_count, n_moves,
    /// batch_docs)` always yields the same plan.
    pub fn seeded(
        seed: u64,
        n_shards: usize,
        doc_count: usize,
        n_moves: usize,
        batch_docs: usize,
    ) -> Self {
        assert!(n_shards >= 2, "rebalancing needs at least two shards");
        assert!(n_moves > 0, "a plan needs at least one move");
        let window = (doc_count / n_moves).max(1);
        let moves = (0..n_moves)
            .map(|i| {
                let lo = (i * window).min(doc_count) as u32;
                let hi = ((i + 1) * window).min(doc_count) as u32;
                let src = (splitmix64(seed ^ (2 * i as u64 + 1)) % n_shards as u64) as usize;
                let hop =
                    1 + (splitmix64(seed ^ (2 * i as u64 + 2)) % (n_shards as u64 - 1)) as usize;
                Move {
                    range: (DocId(lo), DocId(hi)),
                    src,
                    dst: (src + hop) % n_shards,
                }
            })
            .collect();
        Self::new(moves, batch_docs)
    }

    /// A plan executing one piece of monitor-derived rebalance advice:
    /// drain the advised hot docid range from the hot shard into the
    /// advised destination. This is the policy-layer closure of the loop
    /// — *observed* traffic (the monitor's windowed docid counters)
    /// decides what moves, instead of a seeded window.
    pub fn from_advice(advice: &textjoin_obs::Advice, batch_docs: usize) -> Self {
        assert!(advice.src != advice.dst, "advice never targets its source");
        assert!(advice.lo < advice.hi, "advice ranges are non-empty");
        Self::new(
            vec![Move {
                range: (DocId(advice.lo as u32), DocId(advice.hi as u32)),
                src: advice.src,
                dst: advice.dst,
            }],
            batch_docs,
        )
    }

    /// Total moves in the plan.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the plan holds no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Lifecycle of one move in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveStatus {
    /// No batch has committed yet.
    Pending,
    /// At least one batch has run (possibly interrupted mid-batch).
    InProgress,
    /// Every staged document was transferred and re-routed.
    Done,
    /// The move was aborted; committed documents were reverted to `src`.
    Aborted,
}

/// The durable record of one move: enough to resume after any interrupt
/// without re-buying transferred postings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveJournal {
    /// Source shard.
    pub src: usize,
    /// Destination shard.
    pub dst: usize,
    /// Documents staged for this move (owned by `src` inside the range at
    /// plan time).
    pub docs: u64,
    /// Highest global docid whose transfer has committed, `None` before
    /// the first committed batch (and after an abort).
    pub high_water: Option<DocId>,
    /// Current lifecycle state.
    pub status: MoveStatus,
}

/// The migration journal: the epoch the migration began at plus one entry
/// per move. Cloned out to callers; the authoritative copy lives inside
/// the sharded server and drives resumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationJournal {
    /// Topology epoch when `begin_migration` staged the plan.
    pub begun_at_epoch: u64,
    /// Per-move records, index-parallel to the plan's moves.
    pub entries: Vec<MoveJournal>,
}

impl MigrationJournal {
    /// Whether every move has reached a terminal state.
    pub fn finished(&self) -> bool {
        self.entries
            .iter()
            .all(|e| matches!(e.status, MoveStatus::Done | MoveStatus::Aborted))
    }
}

/// One staged document: where it lives on the source, where its invisible
/// copy waits on the destination, and how many postings its transfer
/// costs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StagedDoc {
    pub global: DocId,
    pub src_local: DocId,
    pub dst_local: DocId,
    pub postings: u64,
}

/// In-flight migration state held by the sharded server.
#[derive(Debug)]
pub(crate) struct MigrationState {
    pub plan: MigrationPlan,
    pub journal: MigrationJournal,
    /// Per move: the staged documents, in global docid order.
    pub staged: Vec<Vec<StagedDoc>>,
    /// Index of the move being executed.
    pub current: usize,
    /// Documents of the current move already committed.
    pub cursor: usize,
    /// Documents fetched off the source (paid) but not yet committed: the
    /// resume set after a destination-leg failure.
    pub in_flight: usize,
    /// Postings of the in-flight batch already delivered (and paid) to the
    /// destination across interrupted ingest attempts — never re-charged.
    pub delivered: u64,
}

/// What one [`migrate_batch`] call accomplished.
///
/// [`migrate_batch`]: crate::shard::ShardedTextServer::migrate_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationProgress {
    /// No migration is active (or every move already reached a terminal
    /// state).
    Idle,
    /// A batch committed.
    Committed {
        /// Move index within the plan.
        mv: usize,
        /// Documents committed by this batch.
        docs: usize,
        /// Whether the batch resumed a previously interrupted transfer.
        resumed: bool,
        /// Whether this batch completed its move.
        move_done: bool,
        /// Whether the whole plan is now terminal.
        finished: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_well_formed() {
        let a = MigrationPlan::seeded(11, 4, 40, 3, 2);
        let b = MigrationPlan::seeded(11, 4, 40, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for m in &a.moves {
            assert_ne!(m.src, m.dst, "a move never targets its own source");
            assert!(m.src < 4 && m.dst < 4);
            assert!(m.range.0 <= m.range.1);
            assert!(m.range.1 .0 <= 40);
        }
        let c = MigrationPlan::seeded(12, 4, 40, 3, 2);
        assert_ne!(a, c, "a different seed deals different moves");
    }

    #[test]
    fn advice_converts_to_a_single_move_plan() {
        let advice = textjoin_obs::Advice {
            window: 3,
            src: 1,
            dst: 2,
            lo: 40,
            hi: 61,
            hits: 17,
        };
        let plan = MigrationPlan::from_advice(&advice, 8);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.batch_docs, 8);
        assert_eq!(
            plan.moves[0],
            Move {
                range: (DocId(40), DocId(61)),
                src: 1,
                dst: 2,
            }
        );
    }

    #[test]
    fn journal_finishes_only_on_terminal_states() {
        let mut j = MigrationJournal {
            begun_at_epoch: 0,
            entries: vec![MoveJournal {
                src: 0,
                dst: 1,
                docs: 3,
                high_water: None,
                status: MoveStatus::Pending,
            }],
        };
        assert!(!j.finished());
        j.entries[0].status = MoveStatus::InProgress;
        assert!(!j.finished());
        j.entries[0].status = MoveStatus::Aborted;
        assert!(j.finished());
        j.entries[0].status = MoveStatus::Done;
        assert!(j.finished());
    }
}
