//! The cost-charging text server façade.
//!
//! This is the boundary the paper's *loose integration* assumes: the
//! database system cannot see the text system's internal structures and may
//! only issue `search` and `retrieve` operations (Section 2.3). The façade
//! wraps a [`Collection`] and bills every operation with the paper's cost
//! model (Section 4.1):
//!
//! ```text
//! cost(search) = c_i  +  c_p × Σ |inverted lists processed|  +  c_s × |result set|
//! cost(retrieve) = c_l        (per long-form document; includes its own
//!                              connection overhead, which is why c_l ≫ c_s)
//! ```
//!
//! The constants calibrated on the integrated OpenODB–Mercury system were
//! `c_i = 3 s`, `c_p = 1e-5 s/posting`, `c_s = 0.015 s/doc`, `c_l = 4 s/doc`
//! — available as [`CostConstants::mercury_calibrated`]. All "time" in this
//! crate is simulated seconds charged from these constants; wall-clock time
//! plays no role, which makes every experiment deterministic.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use textjoin_obs::{Charge, EventKind, Recorder};

use crate::doc::{DocId, Document, ShortDoc};
use crate::eval::evaluate;
use crate::expr::SearchExpr;
use crate::faults::{Fault, FaultPlan};
use crate::index::Collection;
use crate::parse::{parse_search, ParseError};

/// The cost-model constants of Table 1 / Section 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Invocation cost per search call (connection + query shipping), sec.
    pub c_i: f64,
    /// Processing cost per posting on the inverted lists read, sec/posting.
    pub c_p: f64,
    /// Short-form transmission cost, sec/document in the result set.
    pub c_s: f64,
    /// Long-form transmission cost, sec/document retrieved.
    pub c_l: f64,
}

impl CostConstants {
    /// The values calibrated against the OpenODB–Mercury integration
    /// (paper, Section 4.1).
    pub fn mercury_calibrated() -> Self {
        Self {
            c_i: 3.0,
            c_p: 0.000_01,
            c_s: 0.015,
            c_l: 4.0,
        }
    }

    /// A free server — useful for tests that assert on result contents only.
    pub fn zero() -> Self {
        Self {
            c_i: 0.0,
            c_p: 0.0,
            c_s: 0.0,
            c_l: 0.0,
        }
    }
}

impl Default for CostConstants {
    fn default() -> Self {
        Self::mercury_calibrated()
    }
}

/// Running usage counters and the simulated cost accumulated so far.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    /// Number of search invocations (each charged `c_i`).
    pub invocations: u64,
    /// Number of searches rejected (term cap exceeded); not charged.
    pub rejected: u64,
    /// Postings processed across all searches (charged `c_p` each).
    pub postings_processed: u64,
    /// Documents transmitted in short form (charged `c_s` each).
    pub docs_short: u64,
    /// Documents transmitted in long form (charged `c_l` each).
    pub docs_long: u64,
    /// Simulated seconds spent on invocations.
    pub time_invocation: f64,
    /// Simulated seconds spent processing postings.
    pub time_processing: f64,
    /// Simulated seconds spent transmitting results (both forms).
    pub time_transmission: f64,
    /// Injected faults observed (each failed attempt also charged above).
    pub faults: u64,
    /// Client retries performed after transient faults.
    pub retries: u64,
    /// Simulated seconds the client spent backing off between retries.
    pub time_backoff: f64,
    /// Probe-cache hits observed by the client during the measured work.
    /// Free — caches never charge; the counters ride the ledger so every
    /// cost report can say how much sharing backed it. Server-side
    /// ledgers always carry zero here; methods fold their cache stats
    /// into the *delta* they report.
    pub cache_hits: u64,
    /// Probe-cache misses observed by the client (free, see `cache_hits`).
    pub cache_misses: u64,
    /// Probe-cache entries evicted by epoch garbage collection (free).
    pub cache_evicted: u64,
}

impl Usage {
    /// Total simulated cost in seconds.
    pub fn total_cost(&self) -> f64 {
        self.time_invocation + self.time_processing + self.time_transmission + self.time_backoff
    }

    /// Adds another ledger into this one, counter by counter. Used to sum
    /// per-shard ledgers into a sharded server's aggregate `Usage`.
    pub fn accumulate(&mut self, other: &Usage) {
        self.invocations += other.invocations;
        self.rejected += other.rejected;
        self.postings_processed += other.postings_processed;
        self.docs_short += other.docs_short;
        self.docs_long += other.docs_long;
        self.time_invocation += other.time_invocation;
        self.time_processing += other.time_processing;
        self.time_transmission += other.time_transmission;
        self.faults += other.faults;
        self.retries += other.retries;
        self.time_backoff += other.time_backoff;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evicted += other.cache_evicted;
    }

    /// The ledger as a metrics snapshot — the shape the shared bench
    /// formatter and the planner-facing exports consume. Counter keys
    /// mirror the field names; simulated seconds land in `values`.
    pub fn metrics_snapshot(&self) -> textjoin_obs::MetricsSnapshot {
        let mut m = textjoin_obs::MetricsSnapshot::new();
        m.set_counter("usage.invocations", self.invocations);
        m.set_counter("usage.rejected", self.rejected);
        m.set_counter("usage.postings", self.postings_processed);
        m.set_counter("usage.docs_short", self.docs_short);
        m.set_counter("usage.docs_long", self.docs_long);
        m.set_counter("usage.faults", self.faults);
        m.set_counter("usage.retries", self.retries);
        m.set_value("usage.time_invocation", self.time_invocation);
        m.set_value("usage.time_processing", self.time_processing);
        m.set_value("usage.time_transmission", self.time_transmission);
        m.set_value("usage.time_backoff", self.time_backoff);
        m.set_value("usage.total_cost", self.total_cost());
        m.set_counter("usage.cache_hits", self.cache_hits);
        m.set_counter("usage.cache_misses", self.cache_misses);
        m.set_counter("usage.cache_evicted", self.cache_evicted);
        m
    }

    /// The difference `self - earlier`, for measuring a sub-operation.
    pub fn since(&self, earlier: &Usage) -> Usage {
        Usage {
            invocations: self.invocations - earlier.invocations,
            rejected: self.rejected - earlier.rejected,
            postings_processed: self.postings_processed - earlier.postings_processed,
            docs_short: self.docs_short - earlier.docs_short,
            docs_long: self.docs_long - earlier.docs_long,
            time_invocation: self.time_invocation - earlier.time_invocation,
            time_processing: self.time_processing - earlier.time_processing,
            time_transmission: self.time_transmission - earlier.time_transmission,
            faults: self.faults - earlier.faults,
            retries: self.retries - earlier.retries,
            time_backoff: self.time_backoff - earlier.time_backoff,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evicted: self.cache_evicted - earlier.cache_evicted,
        }
    }
}

impl fmt::Display for Usage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}s (inv {} = {:.2}s, post {} = {:.2}s, xmit {}s/{}l = {:.2}s",
            self.total_cost(),
            self.invocations,
            self.time_invocation,
            self.postings_processed,
            self.time_processing,
            self.docs_short,
            self.docs_long,
            self.time_transmission,
        )?;
        // Only rendered when fault injection was active, so fault-free runs
        // print byte-identically to the pre-fault-model format.
        if self.faults > 0 || self.retries > 0 || self.time_backoff != 0.0 {
            write!(
                f,
                ", faults {} / retries {} = {:.2}s backoff",
                self.faults, self.retries, self.time_backoff,
            )?;
        }
        write!(f, ")")
    }
}

/// Errors surfaced by the text server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// The search had more basic terms than the server's cap `M`.
    TooManyTerms {
        /// Terms in the rejected search.
        count: usize,
        /// The server's cap.
        max: usize,
    },
    /// `retrieve` was called with an unknown docid.
    UnknownDoc(DocId),
    /// The query string failed to parse.
    Parse(ParseError),
    /// The server refused the connection (injected fault). Transient: the
    /// connection attempt was still charged `c_i`.
    Unavailable,
    /// The server gave up mid-scan after processing (and charging for)
    /// `postings` postings (injected fault). Transient.
    Timeout {
        /// Postings processed — and charged — before the deadline.
        postings: u64,
    },
    /// The server renegotiated its term cap down to `new_m` mid-flight
    /// (injected fault). Not transient: an identical retry cannot succeed;
    /// the client must re-package its search under the new cap.
    CapReduced {
        /// The cap now in force.
        new_m: usize,
    },
    /// A shard of a [`ShardedTextServer`](crate::shard::ShardedTextServer)
    /// exhausted its retries mid-gather. Carries the per-shard results
    /// already gathered. Not transient at this level: the per-shard retry
    /// loop already ran; callers re-route or fail cleanly.
    Shard(Box<crate::shard::PartialShardError>),
    /// A serving session's per-query budget guard refused to issue the
    /// next charged operation: actual charges overran the admitted
    /// estimate. Not transient — retrying verbatim would only charge
    /// more. Amounts are integer simulated milliseconds so the error
    /// stays `Eq`-comparable. Charges already booked stay in the ledger.
    BudgetExceeded {
        /// Simulated milliseconds already charged to the query.
        spent_ms: u64,
        /// The guard's limit in simulated milliseconds.
        limit_ms: u64,
    },
}

impl TextError {
    /// Whether an *identical* retry of the failed operation can succeed.
    ///
    /// `Unavailable` and `Timeout` model momentary server conditions, so a
    /// bounded retry loop is the right response. Everything else is
    /// deterministic (cap violations, unknown ids, syntax) — retrying
    /// verbatim would fail forever, the caller must change the request.
    pub fn is_transient(&self) -> bool {
        matches!(self, TextError::Unavailable | TextError::Timeout { .. })
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::TooManyTerms { count, max } => {
                write!(f, "search has {count} terms, server allows at most {max}")
            }
            TextError::UnknownDoc(id) => write!(f, "unknown document {id}"),
            TextError::Parse(e) => write!(f, "{e}"),
            TextError::Unavailable => write!(f, "text server unavailable (connection refused)"),
            TextError::Timeout { postings } => {
                write!(f, "text server timed out after processing {postings} postings")
            }
            TextError::CapReduced { new_m } => {
                write!(f, "text server reduced its term cap to {new_m} mid-query")
            }
            TextError::Shard(pse) => write!(f, "{pse}"),
            TextError::BudgetExceeded { spent_ms, limit_ms } => write!(
                f,
                "query budget exceeded: {:.3}s charged of {:.3}s admitted",
                *spent_ms as f64 / 1000.0,
                *limit_ms as f64 / 1000.0
            ),
        }
    }
}

impl std::error::Error for TextError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextError::Shard(pse) => Some(&**pse),
            _ => None,
        }
    }
}

/// Error from [`TextServer::retrieve_all`]: the retrievals completed before
/// the failure were charged `c_l` each, so their documents are returned
/// rather than silently dropped (the meter and the result set stay
/// consistent).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRetrieveError {
    /// Documents retrieved — and charged — before the failure, in order.
    pub docs: Vec<Document>,
    /// The docid whose retrieval failed.
    pub failed: DocId,
    /// The underlying failure.
    pub error: TextError,
}

impl fmt::Display for PartialRetrieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retrieve_all failed at document {} after {} retrievals: {}",
            self.failed,
            self.docs.len(),
            self.error
        )
    }
}

impl std::error::Error for PartialRetrieveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<ParseError> for TextError {
    fn from(e: ParseError) -> Self {
        TextError::Parse(e)
    }
}

/// A search result set: the short forms of all matching documents, in docid
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Matching documents, short form, sorted by docid.
    pub docs: Vec<ShortDoc>,
}

impl SearchResult {
    /// Matching docids in order.
    pub fn ids(&self) -> Vec<DocId> {
        self.docs.iter().map(|d| d.id).collect()
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether nothing matched.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Default per-search basic-term cap — Mercury allowed 70 terms (Section 3.2).
pub const DEFAULT_MAX_TERMS: usize = 70;

/// The text server: a [`Collection`] behind a metered search/retrieve API.
///
/// Interior mutability keeps the API `&self` so that an optimizer, an
/// executor, and a statistics sampler can share one server within a query.
#[derive(Debug)]
pub struct TextServer {
    coll: Collection,
    constants: CostConstants,
    /// `Cell` because an injected [`Fault::CapReduced`] renegotiates the cap
    /// through the shared `&self` API.
    max_terms: Cell<usize>,
    usage: RefCell<Usage>,
    trace: Cell<bool>,
    log: RefCell<Vec<String>>,
    fault_plan: FaultPlan,
    /// Flight recorder, if attached. Strictly passive: events describe
    /// charges the ledger above has already booked.
    recorder: RefCell<Option<Rc<Recorder>>>,
    /// Position within a [`ShardedTextServer`](crate::shard::ShardedTextServer),
    /// stamped at construction so emitted events carry their shard.
    shard_index: Cell<Option<usize>>,
}

impl TextServer {
    /// Wraps `coll` with the default (Mercury-calibrated) constants and the
    /// default term cap of 70.
    pub fn new(coll: Collection) -> Self {
        Self::with_constants(coll, CostConstants::default())
    }

    /// Wraps `coll` with explicit cost constants.
    pub fn with_constants(coll: Collection, constants: CostConstants) -> Self {
        Self {
            coll,
            constants,
            max_terms: Cell::new(DEFAULT_MAX_TERMS),
            usage: RefCell::new(Usage::default()),
            trace: Cell::new(false),
            log: RefCell::new(Vec::new()),
            fault_plan: FaultPlan::none(),
            recorder: RefCell::new(None),
            shard_index: Cell::new(None),
        }
    }

    /// Sets the per-search basic-term cap `M`.
    pub fn set_max_terms(&mut self, m: usize) {
        self.max_terms.set(m);
    }

    /// The per-search basic-term cap `M`. May drop mid-query under a fault
    /// plan that injects [`Fault::CapReduced`].
    pub fn max_terms(&self) -> usize {
        self.max_terms.get()
    }

    /// Installs a fault plan (replaces the default no-fault plan).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The fault plan in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The cost constants in force.
    pub fn constants(&self) -> CostConstants {
        self.constants
    }

    /// The wrapped collection. Exposed for corpus construction and for the
    /// statistics-export extension; the paper's join methods never touch it
    /// directly (they would defeat the loose-integration premise), and the
    /// core crate's executor only goes through `search`/`retrieve`.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }

    /// Mutable access to the wrapped collection, for the sharded server's
    /// migration staging only: rebalancing appends copies of in-flight
    /// documents to the destination replicas before re-routing. Queries
    /// never mutate the collection.
    pub(crate) fn collection_mut(&mut self) -> &mut Collection {
        &mut self.coll
    }

    /// Total number of documents `D`. Boolean text services advertise their
    /// collection size, and the paper's cost model needs it.
    pub fn doc_count(&self) -> usize {
        self.coll.doc_count()
    }

    /// Enables logging of every search string processed (for tests/demos).
    pub fn set_trace(&self, on: bool) {
        self.trace.set(on);
    }

    /// Drains the trace log.
    pub fn take_log(&self) -> Vec<String> {
        std::mem::take(&mut self.log.borrow_mut())
    }

    /// Attaches (or with `None`, detaches) a flight recorder. Recording is
    /// passive — it never changes a `Usage` field.
    pub fn set_recorder(&self, rec: Option<Rc<Recorder>>) {
        *self.recorder.borrow_mut() = rec;
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<Rc<Recorder>> {
        self.recorder.borrow().clone()
    }

    /// This server's position inside a sharded server, if it is a shard.
    pub fn shard_index(&self) -> Option<usize> {
        self.shard_index.get()
    }

    /// Stamps the shard position; called by the sharded server at
    /// construction time.
    pub(crate) fn set_shard_index(&self, i: usize) {
        self.shard_index.set(Some(i));
    }

    fn emit(&self, kind: EventKind) {
        if let Some(rec) = &*self.recorder.borrow() {
            rec.emit(kind);
        }
    }

    /// Snapshot of the usage counters.
    pub fn usage(&self) -> Usage {
        *self.usage.borrow()
    }

    /// Resets the usage counters.
    pub fn reset_usage(&self) {
        *self.usage.borrow_mut() = Usage::default();
    }

    /// Applies an adjustment to the usage counters. Crate-internal: used by
    /// the batch extension to rebate per-call charges.
    pub(crate) fn adjust_usage(&self, f: impl FnOnce(&mut Usage)) {
        f(&mut self.usage.borrow_mut());
    }

    /// Executes a search, returning the short forms of all matches.
    ///
    /// Charges `c_i` for the invocation, `c_p` per posting on the lists
    /// processed, and `c_s` per matching document transmitted. Fails with
    /// [`TextError::TooManyTerms`] if the expression exceeds the cap `M`
    /// (rejected searches are not charged — the connection is refused before
    /// evaluation).
    pub fn search(&self, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        self.search_as(expr, "search")
    }

    /// [`search`](Self::search) with an explicit operation name for the
    /// flight recorder (`probe` reuses the search path but traces as its
    /// own operation).
    pub(crate) fn search_as(
        &self,
        expr: &SearchExpr,
        op: &'static str,
    ) -> Result<SearchResult, TextError> {
        let count = expr.term_count();
        if count > self.max_terms.get() {
            self.usage.borrow_mut().rejected += 1;
            self.emit(EventKind::Call {
                op,
                shard: self.shard_index.get(),
                terms: count as u64,
                err: Some(format!(
                    "rejected: {count} terms > cap {}",
                    self.max_terms.get()
                )),
                charge: Charge {
                    rejected: 1,
                    ..Charge::default()
                },
            });
            return Err(TextError::TooManyTerms {
                count,
                max: self.max_terms.get(),
            });
        }
        if let Some(fault) = self.fault_plan.next_search_fault(self.max_terms.get()) {
            if let Fault::Slow { delta_s } = fault {
                // Latency-only: the answer still arrives (late). Charge the
                // wait as backoff time and fall through to the normal
                // success path below.
                self.charge_slow(delta_s);
            } else {
                return Err(self.charge_search_fault(fault, op, count));
            }
        }
        if self.trace.get() {
            self.log
                .borrow_mut()
                .push(expr.display(self.coll.schema()).to_string());
        }
        let out = evaluate(&self.coll, expr);
        let docs: Vec<ShortDoc> = out
            .docs
            .ids()
            .iter()
            .map(|&id| {
                self.coll
                    .document(id)
                    .expect("evaluator returns only valid docids")
                    .short_form(id, self.coll.schema())
            })
            .collect();
        let charge = {
            let c = &self.constants;
            let mut u = self.usage.borrow_mut();
            u.invocations += 1;
            u.postings_processed += out.postings_read as u64;
            u.docs_short += docs.len() as u64;
            u.time_invocation += c.c_i;
            u.time_processing += c.c_p * out.postings_read as f64;
            u.time_transmission += c.c_s * docs.len() as f64;
            Charge {
                invocations: 1,
                postings: out.postings_read as i64,
                docs_short: docs.len() as i64,
                time_invocation: c.c_i,
                time_processing: c.c_p * out.postings_read as f64,
                time_transmission: c.c_s * docs.len() as f64,
                ..Charge::default()
            }
        };
        self.emit(EventKind::Call {
            op,
            shard: self.shard_index.get(),
            terms: count as u64,
            err: None,
            charge,
        });
        Ok(SearchResult { docs })
    }

    /// Parses and executes a Mercury-syntax search string.
    pub fn search_str(&self, query: &str) -> Result<SearchResult, TextError> {
        let expr = parse_search(query, self.coll.schema())?;
        self.search(&expr)
    }

    /// A *probe* (paper, Section 3.3): a search whose caller only needs the
    /// result set's docids (short-form response). Costs exactly like
    /// [`search`](Self::search); the convenience is the return type.
    pub fn probe(&self, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        Ok(self.search_as(expr, "probe")?.ids())
    }

    /// Long-form retrieval of one document by docid. Charges `c_l`, which
    /// subsumes the per-retrieval connection overhead (Section 4.1 notes
    /// each retrieval needs a separate connection).
    pub fn retrieve(&self, id: DocId) -> Result<Document, TextError> {
        if self.fault_plan.next_retrieve_fault().is_some() {
            // A refused retrieval still burned a connection attempt: charge
            // `c_i` (counted as an invocation so the cost decomposition
            // stays exact), never the `c_l` of a document that was not
            // shipped.
            {
                let mut u = self.usage.borrow_mut();
                u.faults += 1;
                u.invocations += 1;
                u.time_invocation += self.constants.c_i;
            }
            self.emit(EventKind::Call {
                op: "retrieve",
                shard: self.shard_index.get(),
                terms: 0,
                err: Some("unavailable".to_string()),
                charge: Charge {
                    invocations: 1,
                    faults: 1,
                    time_invocation: self.constants.c_i,
                    ..Charge::default()
                },
            });
            return Err(TextError::Unavailable);
        }
        let Some(doc) = self.coll.document(id).cloned() else {
            self.emit(EventKind::Call {
                op: "retrieve",
                shard: self.shard_index.get(),
                terms: 0,
                err: Some(format!("unknown document {id}")),
                charge: Charge::default(),
            });
            return Err(TextError::UnknownDoc(id));
        };
        {
            let mut u = self.usage.borrow_mut();
            u.docs_long += 1;
            u.time_transmission += self.constants.c_l;
        }
        self.emit(EventKind::Call {
            op: "retrieve",
            shard: self.shard_index.get(),
            terms: 0,
            err: None,
            charge: Charge {
                docs_long: 1,
                time_transmission: self.constants.c_l,
                ..Charge::default()
            },
        });
        Ok(doc)
    }

    /// Retrieves many documents, in order. On failure the documents fetched
    /// (and charged) before the failing id are returned inside the error —
    /// see [`PartialRetrieveError`] — so no paid-for result is dropped.
    pub fn retrieve_all(&self, ids: &[DocId]) -> Result<Vec<Document>, Box<PartialRetrieveError>> {
        let mut docs = Vec::with_capacity(ids.len());
        for &id in ids {
            match self.retrieve(id) {
                Ok(doc) => docs.push(doc),
                Err(error) => {
                    return Err(Box::new(PartialRetrieveError {
                        docs,
                        failed: id,
                        error,
                    }))
                }
            }
        }
        Ok(docs)
    }

    /// Books a fault against the meter and maps it to its error. Every
    /// failed search attempt burned a connection (`c_i`, counted as an
    /// invocation); a timeout also charges the postings scanned before the
    /// deadline; a cap renegotiation takes effect immediately.
    fn charge_search_fault(&self, fault: Fault, op: &'static str, terms: usize) -> TextError {
        let c = &self.constants;
        let mut charge = Charge {
            invocations: 1,
            faults: 1,
            time_invocation: c.c_i,
            ..Charge::default()
        };
        let err = {
            let mut u = self.usage.borrow_mut();
            u.faults += 1;
            u.invocations += 1;
            u.time_invocation += c.c_i;
            match fault {
                Fault::Unavailable => TextError::Unavailable,
                Fault::Timeout { after_postings } => {
                    u.postings_processed += after_postings;
                    u.time_processing += c.c_p * after_postings as f64;
                    charge.postings = after_postings as i64;
                    charge.time_processing = c.c_p * after_postings as f64;
                    TextError::Timeout {
                        postings: after_postings,
                    }
                }
                Fault::CapReduced { new_m } => {
                    self.max_terms.set(new_m);
                    TextError::CapReduced { new_m }
                }
                Fault::Slow { .. } => {
                    unreachable!("Slow is latency-only and handled on the success path")
                }
            }
        };
        self.emit(EventKind::Call {
            op,
            shard: self.shard_index.get(),
            terms: terms as u64,
            err: Some(err.to_string()),
            charge,
        });
        err
    }

    /// Books an injected [`Fault::Slow`]: the operation still succeeds,
    /// but the extra server-side wait is charged as backoff time (the
    /// ledger for *all* simulated time lives in [`Usage`]). Unlike
    /// [`charge_backoff`](Self::charge_backoff) this is not a retry —
    /// no `retries` counter moves, and no fault is surfaced.
    fn charge_slow(&self, delta_s: u32) {
        let seconds = f64::from(delta_s);
        self.usage.borrow_mut().time_backoff += seconds;
        self.emit(EventKind::Backoff {
            shard: self.shard_index.get(),
            seconds,
            charge: Charge {
                time_backoff: seconds,
                ..Charge::default()
            },
        });
    }

    /// Rebates (un-books) a previously charged usage delta — the
    /// cancellation path for hedged reads and deadline-cancelled legs.
    /// The loser leg's work was booked call-by-call as it ran; cancelling
    /// refunds the *entire* leg field-for-field, so the winner's charge is
    /// the only one that counts and the cost-decomposition identity
    /// (`total_cost = server charges + c_a × comparisons`) survives
    /// exactly. Emits a `Rebate` event carrying the negated charge so the
    /// trace↔ledger audit stays exact too.
    pub fn rebate(&self, delta: &Usage) {
        {
            let mut u = self.usage.borrow_mut();
            u.invocations -= delta.invocations;
            u.rejected -= delta.rejected;
            u.postings_processed -= delta.postings_processed;
            u.docs_short -= delta.docs_short;
            u.docs_long -= delta.docs_long;
            u.time_invocation -= delta.time_invocation;
            u.time_processing -= delta.time_processing;
            u.time_transmission -= delta.time_transmission;
            u.faults -= delta.faults;
            u.retries -= delta.retries;
            u.time_backoff -= delta.time_backoff;
        }
        self.emit(EventKind::Rebate {
            shard: self.shard_index.get(),
            charge: Charge {
                invocations: -(delta.invocations as i64),
                rejected: -(delta.rejected as i64),
                postings: -(delta.postings_processed as i64),
                docs_short: -(delta.docs_short as i64),
                docs_long: -(delta.docs_long as i64),
                time_invocation: -delta.time_invocation,
                time_processing: -delta.time_processing,
                time_transmission: -delta.time_transmission,
                faults: -(delta.faults as i64),
                retries: -(delta.retries as i64),
                time_backoff: -delta.time_backoff,
            },
        });
    }

    /// Charges simulated backoff time a client spent waiting before a
    /// retry. The ledger for *all* simulated time lives in the server's
    /// [`Usage`], so the core crate's retry layer calls this instead of
    /// keeping a second meter (and `Usage::total_cost` keeps decomposing
    /// exactly).
    pub fn charge_backoff(&self, seconds: f64) {
        {
            let mut u = self.usage.borrow_mut();
            u.retries += 1;
            u.time_backoff += seconds;
        }
        self.emit(EventKind::Backoff {
            shard: self.shard_index.get(),
            seconds,
            charge: Charge {
                retries: 1,
                time_backoff: seconds,
                ..Charge::default()
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{Document, TextSchema};

    fn server() -> TextServer {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(
            Document::new()
                .with(ti, "Belief Update in AI")
                .with(au, "Radhika"),
        );
        c.add_document(
            Document::new()
                .with(ti, "Text Retrieval")
                .with(au, "Gravano"),
        );
        TextServer::new(c)
    }

    #[test]
    fn search_charges_all_components() {
        let s = server();
        let r = s.search_str("TI='belief update'").unwrap();
        assert_eq!(r.len(), 1);
        let u = s.usage();
        assert_eq!(u.invocations, 1);
        assert!(u.postings_processed > 0);
        assert_eq!(u.docs_short, 1);
        let c = s.constants();
        let expected =
            c.c_i + c.c_p * u.postings_processed as f64 + c.c_s * u.docs_short as f64;
        assert!((u.total_cost() - expected).abs() < 1e-9);
    }

    #[test]
    fn retrieve_charges_long_form() {
        let s = server();
        let ids = s.search_str("AU='gravano'").unwrap().ids();
        let before = s.usage();
        let doc = s.retrieve(ids[0]).unwrap();
        assert!(!doc.values(s.collection().schema().field_by_name("title").unwrap()).is_empty());
        let delta = s.usage().since(&before);
        assert_eq!(delta.docs_long, 1);
        assert!((delta.time_transmission - s.constants().c_l).abs() < 1e-9);
        assert_eq!(delta.invocations, 0, "retrieval is not a search invocation");
    }

    #[test]
    fn term_cap_rejects_without_charging() {
        let mut s = server();
        s.set_max_terms(2);
        let q = "AU='a' or AU='b' or AU='c'";
        let err = s.search_str(q).unwrap_err();
        assert!(matches!(err, TextError::TooManyTerms { count: 3, max: 2 }));
        let u = s.usage();
        assert_eq!(u.invocations, 0);
        assert_eq!(u.rejected, 1);
        assert_eq!(u.total_cost(), 0.0);
    }

    #[test]
    fn unknown_doc_retrieve() {
        let s = server();
        assert!(matches!(
            s.retrieve(DocId(999)),
            Err(TextError::UnknownDoc(DocId(999)))
        ));
    }

    #[test]
    fn usage_since_diffs() {
        let s = server();
        s.search_str("AU='radhika'").unwrap();
        let mid = s.usage();
        s.search_str("AU='gravano'").unwrap();
        let delta = s.usage().since(&mid);
        assert_eq!(delta.invocations, 1);
    }

    #[test]
    fn probe_returns_ids_and_costs_like_search() {
        let s = server();
        let ids = s.probe(&crate::parse::parse_search("TI='text'", s.collection().schema()).unwrap()).unwrap();
        assert_eq!(ids.len(), 1);
        let u = s.usage();
        assert_eq!(u.invocations, 1);
        assert_eq!(u.docs_short, 1);
    }

    #[test]
    fn trace_log_records_queries() {
        let s = server();
        s.set_trace(true);
        s.search_str("TI='text' and AU='gravano'").unwrap();
        let log = s.take_log();
        assert_eq!(log, vec!["TI='text' and AU='gravano'".to_string()]);
        assert!(s.take_log().is_empty());
    }

    #[test]
    fn reset_usage() {
        let s = server();
        s.search_str("TI='text'").unwrap();
        assert!(s.usage().total_cost() > 0.0);
        s.reset_usage();
        assert_eq!(s.usage(), Usage::default());
    }

    #[test]
    fn unavailable_fault_charges_connection_attempt() {
        let mut s = server();
        s.set_fault_plan(crate::faults::FaultPlan::scripted(vec![(
            0,
            crate::faults::Fault::Unavailable,
        )]));
        let err = s.search_str("TI='text'").unwrap_err();
        assert!(matches!(err, TextError::Unavailable));
        assert!(err.is_transient());
        let u = s.usage();
        assert_eq!((u.faults, u.invocations, u.docs_short), (1, 1, 0));
        assert!((u.total_cost() - s.constants().c_i).abs() < 1e-9);
        // The next attempt (op 1) goes through and returns the real result.
        let r = s.search_str("TI='text'").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn timeout_fault_charges_partial_processing() {
        let mut s = server();
        s.set_fault_plan(crate::faults::FaultPlan::scripted(vec![(
            0,
            crate::faults::Fault::Timeout {
                after_postings: 250,
            },
        )]));
        let err = s.search_str("TI='text'").unwrap_err();
        assert!(matches!(err, TextError::Timeout { postings: 250 }));
        let u = s.usage();
        let c = s.constants();
        assert_eq!(u.postings_processed, 250);
        assert!((u.total_cost() - (c.c_i + c.c_p * 250.0)).abs() < 1e-9);
    }

    #[test]
    fn cap_reduction_takes_effect_immediately() {
        let mut s = server();
        s.set_fault_plan(crate::faults::FaultPlan::scripted(vec![(
            0,
            crate::faults::Fault::CapReduced { new_m: 2 },
        )]));
        let err = s.search_str("TI='text'").unwrap_err();
        assert!(matches!(err, TextError::CapReduced { new_m: 2 }));
        assert!(!err.is_transient());
        assert_eq!(s.max_terms(), 2);
        // An OR-package legal under the old cap is now rejected (uncharged).
        let before = s.usage();
        let err = s.search_str("AU='a' or AU='b' or AU='c'").unwrap_err();
        assert!(matches!(err, TextError::TooManyTerms { count: 3, max: 2 }));
        let delta = s.usage().since(&before);
        assert_eq!(delta.rejected, 1);
        assert_eq!(delta.total_cost(), 0.0);
    }

    #[test]
    fn retrieve_all_returns_partial_results_with_error() {
        let s = server();
        let ids = [DocId(0), DocId(1), DocId(999), DocId(0)];
        let before = s.usage();
        let err = s.retrieve_all(&ids).unwrap_err();
        // The two paid-for documents come back; the failure is identified.
        assert_eq!(err.docs.len(), 2);
        assert_eq!(err.failed, DocId(999));
        assert_eq!(err.error, TextError::UnknownDoc(DocId(999)));
        let delta = s.usage().since(&before);
        assert_eq!(delta.docs_long, 2, "exactly the returned docs are charged");
        assert!((delta.time_transmission - 2.0 * s.constants().c_l).abs() < 1e-9);
        // Success path is unchanged.
        let docs = s.retrieve_all(&[DocId(1), DocId(0)]).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn fault_free_usage_display_has_no_fault_segment() {
        let s = server();
        s.search_str("TI='text'").unwrap();
        let shown = s.usage().to_string();
        assert!(!shown.contains("backoff"), "no-fault display changed: {shown}");
        s.charge_backoff(2.5);
        let shown = s.usage().to_string();
        assert!(shown.contains("retries 1"), "missing backoff segment: {shown}");
        assert!(shown.contains("2.50s backoff"), "missing backoff time: {shown}");
    }

    #[test]
    fn slow_fault_charges_latency_but_still_answers() {
        let mut s = server();
        s.set_fault_plan(crate::faults::FaultPlan::scripted(vec![(
            0,
            crate::faults::Fault::Slow { delta_s: 5 },
        )]));
        let r = s.search_str("TI='text'").unwrap();
        assert_eq!(r.len(), 1, "slow search still returns the full result");
        let u = s.usage();
        assert_eq!(u.faults, 0, "latency-only faults are not error faults");
        assert_eq!(u.retries, 0, "no retry happened");
        assert!((u.time_backoff - 5.0).abs() < 1e-9);
        let c = s.constants();
        let expected = c.c_i
            + c.c_p * u.postings_processed as f64
            + c.c_s * u.docs_short as f64
            + 5.0;
        assert!((u.total_cost() - expected).abs() < 1e-9);
    }

    #[test]
    fn rebate_is_the_exact_inverse_of_a_leg() {
        let s = server();
        let before = s.usage();
        s.search_str("TI='text'").unwrap();
        s.retrieve(DocId(1)).unwrap();
        s.charge_backoff(2.0);
        let leg = s.usage().since(&before);
        assert!(leg.total_cost() > 0.0);
        s.rebate(&leg);
        assert_eq!(s.usage(), before, "rebate must undo the leg field-for-field");
    }

    #[test]
    fn charge_backoff_flows_into_total_cost() {
        let s = server();
        let before = s.usage();
        s.charge_backoff(1.0);
        s.charge_backoff(2.0);
        let delta = s.usage().since(&before);
        assert_eq!(delta.retries, 2);
        assert!((delta.time_backoff - 3.0).abs() < 1e-9);
        assert!((delta.total_cost() - 3.0).abs() < 1e-9);
    }
}
