//! Batched search — the Section 8 engineering extension.
//!
//! The paper's discussion observes that if text systems "provide the ability
//! to accept multiple queries in one invocation and can return answers in a
//! batched mode while maintaining the correspondence between each query and
//! its answers, then (as in the case for semi-join) invocation and possibly
//! transmission costs for the queries will be reduced."
//!
//! This module adds that capability to [`TextServer`]: a batch pays a single
//! invocation charge `c_i`, full processing per member query, and per-result
//! transmission with duplicate documents across the batch shipped only once
//! (the server remembers what it sent within the batch).

use std::collections::BTreeSet;

use textjoin_obs::{Charge, EventKind};

use crate::doc::DocId;
use crate::expr::SearchExpr;
use crate::server::{SearchResult, TextError, TextServer};

/// The answers to a batch: one [`SearchResult`] per member query, in order,
/// preserving the query↔answer correspondence the paper asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Per-query results, parallel to the request slice.
    pub results: Vec<SearchResult>,
}

impl BatchResult {
    /// The union of matching docids across the batch.
    pub fn all_ids(&self) -> Vec<DocId> {
        let set: BTreeSet<DocId> = self
            .results
            .iter()
            .flat_map(|r| r.docs.iter().map(|d| d.id))
            .collect();
        set.into_iter().collect()
    }
}

impl TextServer {
    /// Executes every query in `exprs` under a **single invocation**.
    ///
    /// Each member query is still subject to the term cap `M`; a violation
    /// fails the whole batch before anything is charged. Transmission of a
    /// document's short form is charged once per batch even if several
    /// member queries match it.
    pub fn search_batch(&self, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        for e in exprs {
            let count = e.term_count();
            if count > self.max_terms() {
                self.adjust_usage(|u| u.rejected += 1);
                if let Some(rec) = self.recorder() {
                    rec.emit(EventKind::Call {
                        op: "batch",
                        shard: self.shard_index(),
                        terms: count as u64,
                        err: Some(format!(
                            "rejected: member has {count} terms > cap {}",
                            self.max_terms()
                        )),
                        charge: Charge {
                            rejected: 1,
                            ..Charge::default()
                        },
                    });
                }
                return Err(TextError::TooManyTerms {
                    count,
                    max: self.max_terms(),
                });
            }
        }
        if exprs.is_empty() {
            return Ok(BatchResult {
                results: Vec::new(),
            });
        }
        // Run the member searches through the ordinary metered path, then
        // rebate the extra invocation charges and duplicate transmissions so
        // the batch is billed as one call.
        let _span = self.recorder().map(|r| r.span("batch"));
        let before = self.usage();
        let mut results = Vec::with_capacity(exprs.len());
        let mut shipped: BTreeSet<DocId> = BTreeSet::new();
        let mut duplicate_docs = 0u64;
        for e in exprs {
            let r = self.search(e)?;
            for d in &r.docs {
                if !shipped.insert(d.id) {
                    duplicate_docs += 1;
                }
            }
            results.push(r);
        }
        let after = self.usage();
        let extra_invocations = (after.invocations - before.invocations).saturating_sub(1);
        self.adjust_for_batch(extra_invocations, duplicate_docs);
        Ok(BatchResult { results })
    }
}

impl TextServer {
    /// Removes the per-call charges a batch should not pay: all but one
    /// invocation, and duplicate short-form transmissions.
    fn adjust_for_batch(&self, extra_invocations: u64, duplicate_docs: u64) {
        let c = self.constants();
        self.adjust_usage(|u| {
            u.invocations -= extra_invocations;
            u.time_invocation -= c.c_i * extra_invocations as f64;
            u.docs_short -= duplicate_docs;
            u.time_transmission -= c.c_s * duplicate_docs as f64;
        });
        if extra_invocations == 0 && duplicate_docs == 0 {
            return;
        }
        if let Some(rec) = self.recorder() {
            rec.emit(EventKind::Rebate {
                shard: self.shard_index(),
                charge: Charge {
                    invocations: -(extra_invocations as i64),
                    time_invocation: -(c.c_i * extra_invocations as f64),
                    docs_short: -(duplicate_docs as i64),
                    time_transmission: -(c.c_s * duplicate_docs as f64),
                    ..Charge::default()
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{Document, TextSchema};
    use crate::index::Collection;
    use crate::parse::parse_search;

    fn server() -> TextServer {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(Document::new().with(ti, "text retrieval").with(au, "Gravano"));
        c.add_document(Document::new().with(ti, "text indexing").with(au, "Kao"));
        c.add_document(Document::new().with(ti, "join processing").with(au, "Garcia"));
        TextServer::new(c)
    }

    fn q(s: &TextServer, text: &str) -> SearchExpr {
        parse_search(text, s.collection().schema()).unwrap()
    }

    #[test]
    fn batch_single_invocation() {
        let s = server();
        let exprs = vec![q(&s, "AU='gravano'"), q(&s, "AU='kao'"), q(&s, "AU='garcia'")];
        let br = s.search_batch(&exprs).unwrap();
        assert_eq!(br.results.len(), 3);
        assert_eq!(br.results[0].len(), 1);
        let u = s.usage();
        assert_eq!(u.invocations, 1, "batch pays one invocation");
        assert!((u.time_invocation - s.constants().c_i).abs() < 1e-9);
    }

    #[test]
    fn batch_dedups_transmission() {
        let s = server();
        // Both queries match doc0; its short form ships once.
        let exprs = vec![q(&s, "TI='text'"), q(&s, "AU='gravano'")];
        let br = s.search_batch(&exprs).unwrap();
        assert_eq!(br.results[0].len(), 2);
        assert_eq!(br.results[1].len(), 1);
        assert_eq!(s.usage().docs_short, 2, "doc0 shipped once, doc1 once");
        assert_eq!(br.all_ids().len(), 2);
    }

    #[test]
    fn batch_cheaper_than_separate_calls() {
        let s1 = server();
        let exprs = vec![q(&s1, "AU='gravano'"), q(&s1, "AU='kao'")];
        s1.search_batch(&exprs).unwrap();
        let batched = s1.usage().total_cost();

        let s2 = server();
        for e in &exprs {
            s2.search(e).unwrap();
        }
        let separate = s2.usage().total_cost();
        assert!(batched < separate);
        assert!((separate - batched - s1.constants().c_i).abs() < 1e-9);
    }

    #[test]
    fn batch_term_cap_fails_whole_batch() {
        let mut srv = server();
        srv.set_max_terms(1);
        let exprs = vec![
            q(&srv, "AU='gravano'"),
            q(&srv, "AU='kao' or AU='garcia'"), // 2 terms > cap
        ];
        assert!(srv.search_batch(&exprs).is_err());
        assert_eq!(srv.usage().invocations, 0, "nothing charged on rejection");
        assert_eq!(srv.usage().rejected, 1, "rejection is counted");
    }

    #[test]
    fn empty_batch() {
        let s = server();
        let br = s.search_batch(&[]).unwrap();
        assert!(br.results.is_empty());
        assert_eq!(s.usage().invocations, 0);
    }
}
