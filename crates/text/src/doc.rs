//! Documents, text fields, and result forms.
//!
//! The paper's model (Section 2.1): a text retrieval system manages a
//! collection of documents, each uniquely identified by a *docid*. A document
//! consists of a set of *text fields* (author, title, abstract, date, ...).
//! Searches return the *short form* (docid plus a subset of the fields);
//! the full document (*long form*) is retrievable separately by docid.

use std::collections::BTreeMap;
use std::fmt;

/// Unique document identifier within a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// Identifier of a text field within a collection's [`TextSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u16);

/// Schema of a document collection: the named text fields, which of them are
/// included in the short form, and the short search aliases (`TI`, `AU`, ...)
/// used in the Mercury-style query syntax.
#[derive(Debug, Clone, Default)]
pub struct TextSchema {
    fields: Vec<FieldDef>,
}

/// Definition of one text field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Full field name, e.g. `"title"`.
    pub name: String,
    /// Search alias, e.g. `"TI"`. Matched case-insensitively by the parser.
    pub alias: String,
    /// Whether this field's values are included in short-form results.
    pub in_short_form: bool,
}

impl TextSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field and returns its [`FieldId`].
    pub fn add_field(
        &mut self,
        name: impl Into<String>,
        alias: impl Into<String>,
        in_short_form: bool,
    ) -> FieldId {
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(FieldDef {
            name: name.into(),
            alias: alias.into(),
            in_short_form,
        });
        id
    }

    /// A bibliographic schema modeled on the CSTR database served by Project
    /// Mercury: `title` (TI), `author` (AU), `abstract` (AB), `year` (YR),
    /// `institution` (IN). Title, author and year are in the short form.
    pub fn bibliographic() -> Self {
        let mut s = Self::new();
        s.add_field("title", "TI", true);
        s.add_field("author", "AU", true);
        s.add_field("abstract", "AB", false);
        s.add_field("year", "YR", true);
        s.add_field("institution", "IN", false);
        s
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks up a field by full name (case-insensitive).
    pub fn field_by_name(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
            .map(|i| FieldId(i as u16))
    }

    /// Looks up a field by search alias (case-insensitive), e.g. `"TI"`.
    pub fn field_by_alias(&self, alias: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.alias.eq_ignore_ascii_case(alias))
            .map(|i| FieldId(i as u16))
    }

    /// Resolves either a full name or an alias to a field id.
    pub fn resolve(&self, name_or_alias: &str) -> Option<FieldId> {
        self.field_by_name(name_or_alias)
            .or_else(|| self.field_by_alias(name_or_alias))
    }

    /// Returns the definition of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not part of this schema.
    pub fn def(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.0 as usize]
    }

    /// Iterates over `(FieldId, &FieldDef)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldDef)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| (FieldId(i as u16), f))
    }

    /// Field ids included in the short form.
    pub fn short_form_fields(&self) -> Vec<FieldId> {
        self.iter()
            .filter(|(_, f)| f.in_short_form)
            .map(|(id, _)| id)
            .collect()
    }
}

/// A document: a docid plus values for (a subset of) the schema's fields.
/// A field may hold multiple values (e.g. several authors), mirroring the
/// set-valued attributes (`author {varchar}`) in the paper's `create table
/// mercury` example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    values: BTreeMap<FieldId, Vec<String>>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a value to `field`.
    pub fn push(&mut self, field: FieldId, value: impl Into<String>) -> &mut Self {
        self.values.entry(field).or_default().push(value.into());
        self
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, field: FieldId, value: impl Into<String>) -> Self {
        self.push(field, value);
        self
    }

    /// Values stored in `field` (empty slice if absent).
    pub fn values(&self, field: FieldId) -> &[String] {
        self.values.get(&field).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(FieldId, &[values])`.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &[String])> {
        self.values.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Total number of field values across all fields.
    pub fn value_count(&self) -> usize {
        self.values.values().map(Vec::len).sum()
    }

    /// Projects this document onto the short-form fields of `schema`.
    pub fn short_form(&self, id: DocId, schema: &TextSchema) -> ShortDoc {
        let mut fields = BTreeMap::new();
        for (fid, def) in schema.iter() {
            if def.in_short_form {
                if let Some(vs) = self.values.get(&fid) {
                    fields.insert(fid, vs.clone());
                }
            }
        }
        ShortDoc { id, fields }
    }
}

/// The abbreviated per-document record returned in a search result set:
/// the docid plus the short-form fields. (Paper, Section 2.1.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortDoc {
    /// The document's id, always present.
    pub id: DocId,
    /// Short-form field values.
    pub fields: BTreeMap<FieldId, Vec<String>>,
}

impl ShortDoc {
    /// Values of `field` in this short record (empty if not short-form).
    pub fn values(&self, field: FieldId) -> &[String] {
        self.fields.get(&field).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TextSchema {
        TextSchema::bibliographic()
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 5);
        let ti = s.field_by_name("title").unwrap();
        assert_eq!(s.field_by_alias("ti"), Some(ti));
        assert_eq!(s.field_by_alias("TI"), Some(ti));
        assert_eq!(s.resolve("TITLE"), Some(ti));
        assert_eq!(s.resolve("TI"), Some(ti));
        assert_eq!(s.resolve("nope"), None);
        assert_eq!(s.def(ti).name, "title");
    }

    #[test]
    fn short_form_fields_marked() {
        let s = schema();
        let short = s.short_form_fields();
        assert_eq!(short.len(), 3); // title, author, year
        assert!(short.contains(&s.field_by_name("title").unwrap()));
        assert!(!short.contains(&s.field_by_name("abstract").unwrap()));
    }

    #[test]
    fn document_multivalued_fields() {
        let s = schema();
        let au = s.field_by_name("author").unwrap();
        let ti = s.field_by_name("title").unwrap();
        let d = Document::new()
            .with(ti, "Belief Update in Practice")
            .with(au, "Radhika")
            .with(au, "Garcia");
        assert_eq!(d.values(au), ["Radhika", "Garcia"]);
        assert_eq!(d.values(ti).len(), 1);
        assert_eq!(d.value_count(), 3);
    }

    #[test]
    fn short_form_projection_drops_long_fields() {
        let s = schema();
        let ti = s.field_by_name("title").unwrap();
        let ab = s.field_by_name("abstract").unwrap();
        let d = Document::new()
            .with(ti, "A Title")
            .with(ab, "A very long abstract ...");
        let sf = d.short_form(DocId(7), &s);
        assert_eq!(sf.id, DocId(7));
        assert_eq!(sf.values(ti), ["A Title"]);
        assert!(sf.values(ab).is_empty());
    }

    #[test]
    fn empty_document() {
        let s = schema();
        let d = Document::new();
        assert_eq!(d.value_count(), 0);
        let sf = d.short_form(DocId(0), &s);
        assert!(sf.fields.is_empty());
    }
}
