//! # textjoin-text — a Boolean text retrieval system
//!
//! A from-scratch, in-process implementation of the class of text retrieval
//! system the paper *"Join Queries with External Text Sources"* (Chaudhuri,
//! Dayal, Yan; SIGMOD 1995) integrates with: an inversion-based Boolean
//! engine in the mold of CMU Project Mercury's CSTR service.
//!
//! The crate has two layers:
//!
//! * **Storage & evaluation** — [`index::Collection`] holds documents and a
//!   word→posting-list directory ([`postings`]); [`expr::SearchExpr`] is the
//!   Boolean search AST (words, truncated words, phrases, proximity, AND /
//!   OR / NOT, field-limited terms); [`eval`] answers searches by sorted-merge
//!   set operations, reporting how many postings were processed.
//! * **The metered server façade** — [`server::TextServer`] is the *only*
//!   interface the federated query processor uses (the paper's
//!   loose-integration premise). Every `search`/`retrieve` is billed with
//!   the paper's calibrated cost constants, making all experiments
//!   deterministic simulations of the OpenODB–Mercury testbed.
//!
//! Section 8 extensions are included: [`batch`] (multi-query invocations)
//! and [`stats`] (server-side vocabulary statistics export). The
//! [`signature`] module implements the signature-file access method the
//! paper's survey contrasts inverted indexes against, so the "inversion
//! wins at scale" premise is testable here.
//!
//! ```
//! use textjoin_text::{doc::{Document, TextSchema}, index::Collection, server::TextServer};
//!
//! let schema = TextSchema::bibliographic();
//! let ti = schema.field_by_name("title").unwrap();
//! let au = schema.field_by_name("author").unwrap();
//! let mut coll = Collection::new(schema);
//! coll.add_document(Document::new()
//!     .with(ti, "Belief Update Semantics")
//!     .with(au, "Radhika"));
//!
//! let server = TextServer::new(coll);
//! let hits = server.search_str("TI='belief update' and AU='Radhika'").unwrap();
//! assert_eq!(hits.len(), 1);
//! assert!(server.usage().total_cost() > 3.0); // one invocation charged
//! ```

pub mod batch;
pub mod doc;
pub mod eval;
pub mod expr;
pub mod faults;
pub mod index;
pub mod parse;
pub mod postings;
pub mod rebalance;
pub mod server;
pub mod service;
pub mod shard;
pub mod signature;
pub mod stats;
pub mod token;

pub use textjoin_obs as obs;

pub use doc::{DocId, Document, FieldId, TextSchema};
pub use expr::SearchExpr;
pub use faults::{Fault, FaultKinds, FaultPlan};
pub use index::Collection;
pub use rebalance::{MigrationJournal, MigrationPlan, MigrationProgress, Move, MoveStatus};
pub use server::{
    CostConstants, PartialRetrieveError, SearchResult, TextError, TextServer, Usage,
};
pub use service::TextService;
pub use shard::{PartialShardError, ShardedTextServer};
