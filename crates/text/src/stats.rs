//! Vocabulary statistics export — the Section 8 statistics extension.
//!
//! The paper's discussion: *"the text system can help the optimizer by
//! making available statistics such as distribution of fanout of the words
//! in the vocabulary. Such information will eliminate the need for sending
//! all single-column probes to the text system."*
//!
//! [`VocabularyStats`] is that export: per-field document frequencies and a
//! fanout histogram, computed once server-side and handed to the client
//! optimizer for free (no `c_i`/`c_p` charges — the point of the extension).

use std::collections::HashMap;

use crate::doc::FieldId;
use crate::index::Collection;
use crate::server::TextServer;

/// Per-field statistics for one field of the collection.
#[derive(Debug, Clone, Default)]
pub struct FieldStats {
    /// Number of distinct words occurring in the field.
    pub vocabulary: usize,
    /// Total document-frequency mass: Σ over words of df(word, field).
    pub total_df: u64,
    /// Histogram of document frequencies: `histogram[b]` counts words whose
    /// df falls in bucket `b` (power-of-two buckets: df ∈ [2^b, 2^(b+1))).
    pub histogram: Vec<u64>,
    /// Exact per-word document frequencies.
    df: HashMap<String, u32>,
}

impl FieldStats {
    /// Mean fanout over the field's vocabulary (average documents per word).
    pub fn mean_fanout(&self) -> f64 {
        if self.vocabulary == 0 {
            0.0
        } else {
            self.total_df as f64 / self.vocabulary as f64
        }
    }

    /// Document frequency of `word` in this field, 0 if absent.
    pub fn fanout(&self, word: &str) -> u32 {
        self.df.get(word).copied().unwrap_or(0)
    }

    /// Whether `word` occurs in this field at all — answers a single-column
    /// probe without contacting the server.
    pub fn occurs(&self, word: &str) -> bool {
        self.fanout(word) > 0
    }

    /// Whether any word in this field starts with `prefix` — the
    /// truncation-query analogue of [`occurs`](Self::occurs), used by
    /// stats-aware shard routing to prove a shard irrelevant.
    pub fn occurs_prefix(&self, prefix: &str) -> bool {
        if prefix.is_empty() {
            return self.vocabulary > 0;
        }
        self.df.keys().any(|w| w.starts_with(prefix))
    }
}

/// The exported statistics bundle.
#[derive(Debug, Clone)]
pub struct VocabularyStats {
    /// Total number of documents `D`.
    pub doc_count: usize,
    per_field: HashMap<FieldId, FieldStats>,
}

impl VocabularyStats {
    /// Computes the export from a collection. In a deployment this runs on
    /// the server; clients receive the result without paying query costs.
    pub fn compute(coll: &Collection) -> Self {
        let mut per_field: HashMap<FieldId, FieldStats> = HashMap::new();
        for (fid, _) in coll.schema().iter() {
            per_field.insert(fid, FieldStats::default());
        }
        for (word, list) in coll.iter_terms() {
            // Partition the word's postings by field and count distinct docs.
            let mut seen: HashMap<FieldId, (u32, Option<crate::doc::DocId>)> = HashMap::new();
            for p in list.postings() {
                let e = seen.entry(p.field).or_insert((0, None));
                if e.1 != Some(p.doc) {
                    e.0 += 1;
                    e.1 = Some(p.doc);
                }
            }
            for (fid, (df, _)) in seen {
                let fs = per_field.entry(fid).or_default();
                fs.vocabulary += 1;
                fs.total_df += u64::from(df);
                let bucket = (32 - df.leading_zeros()).saturating_sub(1) as usize;
                if fs.histogram.len() <= bucket {
                    fs.histogram.resize(bucket + 1, 0);
                }
                fs.histogram[bucket] += 1;
                fs.df.insert(word.to_owned(), df);
            }
        }
        Self {
            doc_count: coll.doc_count(),
            per_field,
        }
    }

    /// Merges per-shard exports into collection-wide statistics. Because
    /// the shards partition the collection, per-word document frequencies
    /// sum exactly; vocabulary, total df, and the fanout histogram are
    /// rebuilt from the summed frequencies.
    pub fn merged(parts: impl IntoIterator<Item = VocabularyStats>) -> Self {
        let mut doc_count = 0;
        let mut df: HashMap<FieldId, HashMap<String, u32>> = HashMap::new();
        for part in parts {
            doc_count += part.doc_count;
            for (fid, fs) in part.per_field {
                let merged = df.entry(fid).or_default();
                for (word, d) in fs.df {
                    *merged.entry(word).or_insert(0) += d;
                }
            }
        }
        let per_field = df
            .into_iter()
            .map(|(fid, df)| {
                let mut fs = FieldStats {
                    vocabulary: df.len(),
                    total_df: df.values().map(|&d| u64::from(d)).sum(),
                    histogram: Vec::new(),
                    df,
                };
                for &d in fs.df.values() {
                    let bucket = (32 - d.leading_zeros()).saturating_sub(1) as usize;
                    if fs.histogram.len() <= bucket {
                        fs.histogram.resize(bucket + 1, 0);
                    }
                    fs.histogram[bucket] += 1;
                }
                (fid, fs)
            })
            .collect();
        Self {
            doc_count,
            per_field,
        }
    }

    /// Statistics for `field`.
    pub fn field(&self, field: FieldId) -> Option<&FieldStats> {
        self.per_field.get(&field)
    }

    /// Exact fanout of `word` in `field` (0 if unknown).
    pub fn fanout(&self, word: &str, field: FieldId) -> u32 {
        self.field(field).map(|f| f.fanout(word)).unwrap_or(0)
    }

    /// Whether `word` occurs in `field` — a free single-column probe.
    pub fn occurs(&self, word: &str, field: FieldId) -> bool {
        self.fanout(word, field) > 0
    }
}

impl TextServer {
    /// Exports vocabulary statistics (Section 8 extension). Free of query
    /// charges by design.
    pub fn export_stats(&self) -> VocabularyStats {
        VocabularyStats::compute(self.collection())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{Document, TextSchema};

    fn coll() -> (Collection, FieldId, FieldId) {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(Document::new().with(ti, "text retrieval text").with(au, "Gravano"));
        c.add_document(Document::new().with(ti, "text indexing").with(au, "Kao"));
        c.add_document(Document::new().with(ti, "query processing").with(au, "Gravano"));
        (c, ti, au)
    }

    #[test]
    fn fanout_counts_documents_not_occurrences() {
        let (c, ti, _) = coll();
        let stats = VocabularyStats::compute(&c);
        // "text" appears twice in doc0 but df counts documents.
        assert_eq!(stats.fanout("text", ti), 2);
        assert_eq!(stats.fanout("query", ti), 1);
        assert_eq!(stats.fanout("gravano", ti), 0);
    }

    #[test]
    fn occurs_is_free_probe() {
        let (c, ti, au) = coll();
        let stats = VocabularyStats::compute(&c);
        assert!(stats.occurs("gravano", au));
        assert!(!stats.occurs("gravano", ti));
        assert!(!stats.occurs("zzz", au));
    }

    #[test]
    fn per_field_aggregates() {
        let (c, _, au) = coll();
        let stats = VocabularyStats::compute(&c);
        let fs = stats.field(au).unwrap();
        assert_eq!(fs.vocabulary, 2); // gravano, kao
        assert_eq!(fs.total_df, 3); // gravano ×2, kao ×1
        assert!((fs.mean_fanout() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let (c, _, au) = coll();
        let stats = VocabularyStats::compute(&c);
        let fs = stats.field(au).unwrap();
        // kao df=1 → bucket 0; gravano df=2 → bucket 1.
        assert_eq!(fs.histogram, vec![1, 1]);
    }

    #[test]
    fn export_via_server_charges_nothing() {
        let (c, _, au) = coll();
        let server = TextServer::new(c);
        let stats = server.export_stats();
        assert!(stats.occurs("kao", au));
        assert_eq!(server.usage().total_cost(), 0.0);
        assert_eq!(stats.doc_count, 3);
    }
}
