//! The loose-integration service surface, as a trait.
//!
//! The paper's premise (Section 2.3) is that the database system talks to
//! *a* text retrieval service through `search`/`retrieve` operations without
//! seeing its internals. [`TextService`] captures exactly that surface so
//! the federated query processor can run unchanged against a single
//! [`TextServer`] or a [`ShardedTextServer`] that scatters each operation
//! across many of them.
//!
//! Everything here is metered: implementations charge the paper's cost
//! constants into a [`Usage`] ledger, and `usage()` must decompose as
//! `c_i·invocations + c_p·postings + c_s·short + c_l·long + time_backoff`.

use crate::batch::BatchResult;
use crate::doc::{DocId, Document, ShortDoc, TextSchema};
use crate::expr::SearchExpr;
use crate::server::{
    CostConstants, PartialRetrieveError, SearchResult, TextError, TextServer, Usage,
};
use crate::shard::ShardedTextServer;
use crate::stats::VocabularyStats;

/// The metered search/retrieve surface of a text retrieval service.
///
/// This is the *only* interface `textjoin-core` may use to answer queries
/// (the loose-integration invariant); the sole sanctioned exception is
/// [`reconstruct_short`](Self::reconstruct_short), which rebuilds short
/// forms that were *already transmitted* and charged.
pub trait TextService {
    /// The collection's text schema.
    fn schema(&self) -> &TextSchema;

    /// Total number of documents `D`. Boolean text services advertise their
    /// collection size, and the paper's cost model needs it.
    fn doc_count(&self) -> usize;

    /// The per-search basic-term cap `M` currently in force. May drop
    /// mid-query under a fault plan that injects `CapReduced`; a sharded
    /// service reports the *minimum* over its shards so a package legal
    /// here is legal everywhere it is scattered.
    fn max_terms(&self) -> usize;

    /// The cost constants in force.
    fn constants(&self) -> CostConstants;

    /// Snapshot of the usage counters. For a sharded service this is the
    /// exact sum of the per-shard ledgers plus any aggregate-level charges.
    fn usage(&self) -> Usage;

    /// Resets the usage counters (all shard ledgers, for a sharded service).
    fn reset_usage(&self);

    /// Charges simulated backoff a client spent waiting before a retry.
    fn charge_backoff(&self, seconds: f64);

    /// Executes a search, returning the short forms of all matches in
    /// docid order.
    fn search(&self, expr: &SearchExpr) -> Result<SearchResult, TextError>;

    /// Parses and executes a Mercury-syntax search string.
    fn search_str(&self, query: &str) -> Result<SearchResult, TextError>;

    /// A probe (Section 3.3): a search whose caller only needs the docids.
    fn probe(&self, expr: &SearchExpr) -> Result<Vec<DocId>, TextError>;

    /// Long-form retrieval of one document by docid.
    fn retrieve(&self, id: DocId) -> Result<Document, TextError>;

    /// Retrieves many documents, in order, returning the already-charged
    /// prefix inside the error on failure.
    fn retrieve_all(&self, ids: &[DocId]) -> Result<Vec<Document>, Box<PartialRetrieveError>>;

    /// Multi-query invocation (Section 8 batch extension).
    fn search_batch(&self, exprs: &[SearchExpr]) -> Result<BatchResult, TextError>;

    /// Exports vocabulary statistics (Section 8 extension). Free of query
    /// charges by design.
    fn export_stats(&self) -> VocabularyStats;

    /// Reconstructs the short form of a document whose short form was
    /// *already transmitted* (and charged) by an earlier search on this
    /// service — the one sanctioned loose-integration exception, used by
    /// P+RTP phase 2 so candidates shipped as probe result sets are not
    /// billed twice. Must not be used to answer a query the service was
    /// never asked.
    fn reconstruct_short(&self, id: DocId) -> Option<ShortDoc>;

    /// Downcast to a sharded service, when the caller wants per-shard
    /// orchestration (per-shard retry budgets, partial-failure gathers).
    fn as_sharded(&self) -> Option<&ShardedTextServer> {
        None
    }

    /// The attached flight recorder, if any. Default: not recording.
    /// Observation is passive by contract — an implementation must charge
    /// identically whether or not a recorder is attached.
    fn recorder(&self) -> Option<std::rc::Rc<textjoin_obs::Recorder>> {
        None
    }

    /// The current topology epoch: bumped whenever a migration batch
    /// commits (or aborts) and docid routing changes. Single servers never
    /// change topology, so the default is a constant 0. Cache keys that
    /// depend on routing decisions must incorporate this value.
    fn topology_epoch(&self) -> u64 {
        0
    }
}

impl TextService for TextServer {
    fn schema(&self) -> &TextSchema {
        self.collection().schema()
    }

    fn doc_count(&self) -> usize {
        TextServer::doc_count(self)
    }

    fn max_terms(&self) -> usize {
        TextServer::max_terms(self)
    }

    fn constants(&self) -> CostConstants {
        TextServer::constants(self)
    }

    fn usage(&self) -> Usage {
        TextServer::usage(self)
    }

    fn reset_usage(&self) {
        TextServer::reset_usage(self)
    }

    fn charge_backoff(&self, seconds: f64) {
        TextServer::charge_backoff(self, seconds)
    }

    fn search(&self, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        TextServer::search(self, expr)
    }

    fn search_str(&self, query: &str) -> Result<SearchResult, TextError> {
        TextServer::search_str(self, query)
    }

    fn probe(&self, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        TextServer::probe(self, expr)
    }

    fn retrieve(&self, id: DocId) -> Result<Document, TextError> {
        TextServer::retrieve(self, id)
    }

    fn retrieve_all(&self, ids: &[DocId]) -> Result<Vec<Document>, Box<PartialRetrieveError>> {
        TextServer::retrieve_all(self, ids)
    }

    fn search_batch(&self, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        TextServer::search_batch(self, exprs)
    }

    fn export_stats(&self) -> VocabularyStats {
        TextServer::export_stats(self)
    }

    fn reconstruct_short(&self, id: DocId) -> Option<ShortDoc> {
        self.collection()
            .document(id)
            .map(|d| d.short_form(id, self.collection().schema()))
    }

    fn recorder(&self) -> Option<std::rc::Rc<textjoin_obs::Recorder>> {
        TextServer::recorder(self)
    }
}
