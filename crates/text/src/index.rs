//! The inverted index and document store.
//!
//! Mirrors the paper's inversion-based model (Section 2.1): each word maps —
//! through a main-memory *directory* — to an inverted list of postings. We
//! keep the directory as an ordered map so truncated searches (`filter?`)
//! become range scans, and store documents alongside for long-form
//! retrieval by docid.

use std::collections::BTreeMap;

use crate::doc::{DocId, Document, FieldId, TextSchema};
use crate::postings::{Posting, PostingList};
use crate::token::tokenize;

/// A searchable document collection: schema + document store + inverted
/// index. This is the passive storage layer; cost accounting lives in
/// [`crate::server::TextServer`].
#[derive(Debug, Clone)]
pub struct Collection {
    schema: TextSchema,
    docs: Vec<Document>,
    /// Directory: word → inverted list. Ordered for prefix range scans.
    directory: BTreeMap<String, PostingList>,
}

impl Collection {
    /// Creates an empty collection over `schema`.
    pub fn new(schema: TextSchema) -> Self {
        Self {
            schema,
            docs: Vec::new(),
            directory: BTreeMap::new(),
        }
    }

    /// The collection's schema.
    pub fn schema(&self) -> &TextSchema {
        &self.schema
    }

    /// Total number of documents — the paper's parameter `D`.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct indexed words.
    pub fn vocabulary_size(&self) -> usize {
        self.directory.len()
    }

    /// Adds a document, indexing every word of every field value, and
    /// returns its docid. Docids are assigned densely in insertion order,
    /// which keeps every inverted list sorted on append.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.docs.len() as u32);
        for (field, values) in doc.iter() {
            for (value_idx, value) in values.iter().enumerate() {
                for tok in tokenize(value) {
                    self.directory.entry(tok.word).or_default().push(Posting {
                        doc: id,
                        field,
                        value_idx: value_idx as u16,
                        pos: tok.pos,
                    });
                }
            }
        }
        self.docs.push(doc);
        id
    }

    /// Long-form retrieval: the full document for `id`, or `None` if the
    /// docid is unknown.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.0 as usize)
    }

    /// The inverted list for `word` (already normalized), or `None` if the
    /// word is not in the vocabulary. The returned list spans all fields;
    /// callers restrict by field as needed.
    pub fn lookup(&self, word: &str) -> Option<&PostingList> {
        self.directory.get(word)
    }

    /// Inverted lists for all words with the given prefix — the access path
    /// behind truncated search terms like `filter?`.
    pub fn prefix_lookup<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a PostingList)> + 'a {
        self.directory
            .range(prefix.to_owned()..)
            .take_while(move |(w, _)| w.starts_with(prefix))
            .map(|(w, l)| (w.as_str(), l))
    }

    /// Document frequency of `word` within `field` — how many documents
    /// contain the word in that field. This is the per-term *fanout* the
    /// paper's statistics (Section 4.2) estimate by sampling.
    pub fn doc_frequency(&self, word: &str, field: FieldId) -> usize {
        self.lookup(word)
            .map(|l| l.in_field(field).doc_count())
            .unwrap_or(0)
    }

    /// Iterates over all `(word, list)` entries — used by the statistics
    /// export extension (Section 8).
    pub fn iter_terms(&self) -> impl Iterator<Item = (&str, &PostingList)> {
        self.directory.iter().map(|(w, l)| (w.as_str(), l))
    }

    /// Sum of the lengths of all inverted lists (total postings).
    pub fn total_postings(&self) -> usize {
        self.directory.values().map(PostingList::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Collection, FieldId, FieldId) {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(
            Document::new()
                .with(ti, "Belief Update in AI")
                .with(au, "Radhika"),
        );
        c.add_document(
            Document::new()
                .with(ti, "Information Filtering")
                .with(au, "Gravano")
                .with(au, "Garcia"),
        );
        c.add_document(
            Document::new()
                .with(ti, "Update Propagation")
                .with(au, "Garcia"),
        );
        (c, ti, au)
    }

    #[test]
    fn add_and_retrieve() {
        let (c, ti, _) = sample();
        assert_eq!(c.doc_count(), 3);
        let d = c.document(DocId(1)).unwrap();
        assert_eq!(d.values(ti), ["Information Filtering"]);
        assert!(c.document(DocId(99)).is_none());
    }

    #[test]
    fn lookup_is_case_normalized() {
        let (c, _, _) = sample();
        assert!(c.lookup("belief").is_some());
        assert!(c.lookup("Belief").is_none(), "directory stores normalized words");
    }

    #[test]
    fn doc_frequency_per_field() {
        let (c, ti, au) = sample();
        assert_eq!(c.doc_frequency("update", ti), 2);
        assert_eq!(c.doc_frequency("garcia", au), 2);
        assert_eq!(c.doc_frequency("garcia", ti), 0);
        assert_eq!(c.doc_frequency("zzz", au), 0);
    }

    #[test]
    fn prefix_lookup_range() {
        let (c, _, _) = sample();
        let words: Vec<&str> = c.prefix_lookup("gra").map(|(w, _)| w).collect();
        assert_eq!(words, ["gravano"]);
        let words: Vec<&str> = c.prefix_lookup("ga").map(|(w, _)| w).collect();
        assert_eq!(words, ["garcia"]);
        assert_eq!(c.prefix_lookup("zzz").count(), 0);
    }

    #[test]
    fn posting_lists_sorted_across_docs() {
        let (c, _, _) = sample();
        let l = c.lookup("update").unwrap();
        let docs: Vec<u32> = l.postings().iter().map(|p| p.doc.0).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(docs, sorted);
    }

    #[test]
    fn totals() {
        let (c, _, _) = sample();
        assert!(c.vocabulary_size() >= 8);
        assert_eq!(
            c.total_postings(),
            c.iter_terms().map(|(_, l)| l.len()).sum::<usize>()
        );
    }
}
