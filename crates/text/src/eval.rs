//! Search evaluation against a [`Collection`].
//!
//! Processing follows the paper's model (Sections 2.1, 4.1): the inverted
//! lists named by the search are retrieved, and sorted-merge set operations
//! are performed on them. The evaluator therefore reports, alongside the
//! matching docids, the **sum of the lengths of the inverted lists
//! processed** — exactly the quantity the cost constant `c_p` multiplies.

use crate::doc::FieldId;
use crate::expr::{BasicTerm, SearchExpr, TermKind};
use crate::index::Collection;
use crate::postings::{positional_join, DocSet, PostingList};

/// The outcome of evaluating a search expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Matching documents.
    pub docs: DocSet,
    /// Sum of lengths of the inverted lists retrieved to answer the search.
    pub postings_read: usize,
}

/// Evaluates `expr` against `coll`.
pub fn evaluate(coll: &Collection, expr: &SearchExpr) -> EvalOutcome {
    let mut postings_read = 0;
    let docs = eval_expr(coll, expr, &mut postings_read);
    EvalOutcome {
        docs,
        postings_read,
    }
}

fn eval_expr(coll: &Collection, expr: &SearchExpr, postings_read: &mut usize) -> DocSet {
    match expr {
        SearchExpr::Term(t) => eval_term(coll, t, postings_read),
        SearchExpr::Near { a, b, distance } => eval_near(coll, a, b, *distance, postings_read),
        SearchExpr::And(cs) => {
            let mut iter = cs.iter();
            let Some(first) = iter.next() else {
                // An empty conjunction matches everything; Boolean text
                // systems reject such searches, and the server layer does
                // too, but the evaluator is total.
                return all_docs(coll);
            };
            let mut acc = eval_expr(coll, first, postings_read);
            for c in iter {
                if acc.is_empty() {
                    // Short-circuit: remaining lists still *could* be read
                    // by a real system, but sorted-merge intersection stops
                    // as soon as one side is exhausted; we model the
                    // favorable case consistently.
                    break;
                }
                let rhs = eval_expr(coll, c, postings_read);
                acc = acc.intersect(&rhs);
            }
            acc
        }
        SearchExpr::Or(cs) => {
            let mut acc = DocSet::new();
            for c in cs {
                let rhs = eval_expr(coll, c, postings_read);
                acc = acc.union(&rhs);
            }
            acc
        }
        SearchExpr::AndNot(a, b) => {
            let lhs = eval_expr(coll, a, postings_read);
            let rhs = eval_expr(coll, b, postings_read);
            lhs.difference(&rhs)
        }
    }
}

fn all_docs(coll: &Collection) -> DocSet {
    DocSet::from_sorted(
        (0..coll.doc_count() as u32)
            .map(crate::doc::DocId)
            .collect(),
    )
}

fn eval_term(coll: &Collection, term: &BasicTerm, postings_read: &mut usize) -> DocSet {
    match &term.kind {
        TermKind::Word(w) => {
            if w.is_empty() {
                return DocSet::new();
            }
            match coll.lookup(w) {
                Some(list) => {
                    *postings_read += list.len();
                    restrict(list, term.field).docs()
                }
                None => DocSet::new(),
            }
        }
        TermKind::Prefix(p) => {
            if p.is_empty() {
                return DocSet::new();
            }
            let mut acc = DocSet::new();
            for (_, list) in coll.prefix_lookup(p) {
                *postings_read += list.len();
                acc = acc.union(&restrict(list, term.field).docs());
            }
            acc
        }
        TermKind::Phrase(words) => eval_phrase(coll, words, term.field, postings_read),
    }
}

fn restrict(list: &PostingList, field: Option<FieldId>) -> PostingList {
    match field {
        Some(f) => list.in_field(f),
        None => list.clone(),
    }
}

/// Phrase evaluation: the words must appear consecutively within a single
/// field value. Implemented as a chain of positional joins carrying the
/// position of the *last* matched word forward.
fn eval_phrase(
    coll: &Collection,
    words: &[String],
    field: Option<FieldId>,
    postings_read: &mut usize,
) -> DocSet {
    let mut lists = Vec::with_capacity(words.len());
    for w in words {
        match coll.lookup(w) {
            Some(list) => {
                *postings_read += list.len();
                lists.push(restrict(list, field));
            }
            // A phrase containing an unindexed word matches nothing, but the
            // lists read so far were still processed.
            None => return DocSet::new(),
        }
    }
    if lists.is_empty() {
        return DocSet::new();
    }
    if lists.len() == 1 {
        return lists[0].docs();
    }
    // Carrier: postings of word i that end a valid prefix of the phrase.
    let mut carrier = lists[0].clone();
    for next in &lists[1..] {
        carrier = advance_phrase(&carrier, next);
        if carrier.is_empty() {
            return DocSet::new();
        }
    }
    carrier.docs()
}

/// Returns the postings of `next` that directly follow (gap exactly 1, same
/// doc/field/value) some posting in `carrier`.
fn advance_phrase(carrier: &PostingList, next: &PostingList) -> PostingList {
    let (pa, pb) = (carrier.postings(), next.postings());
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < pa.len() && j < pb.len() {
        let ka = (pa[i].doc, pa[i].field, pa[i].value_idx);
        let kb = (pb[j].doc, pb[j].field, pb[j].value_idx);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = i + pa[i..]
                    .iter()
                    .take_while(|p| (p.doc, p.field, p.value_idx) == ka)
                    .count();
                let j_end = j + pb[j..]
                    .iter()
                    .take_while(|p| (p.doc, p.field, p.value_idx) == kb)
                    .count();
                for y in &pb[j..j_end] {
                    if pa[i..i_end].iter().any(|x| x.pos + 1 == y.pos) {
                        out.push(*y);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    PostingList::from_sorted(out)
}

fn eval_near(
    coll: &Collection,
    a: &BasicTerm,
    b: &BasicTerm,
    distance: u32,
    postings_read: &mut usize,
) -> DocSet {
    let get = |t: &BasicTerm, postings_read: &mut usize| -> Option<PostingList> {
        match &t.kind {
            TermKind::Word(w) => coll.lookup(w).map(|l| {
                *postings_read += l.len();
                restrict(l, t.field)
            }),
            // Proximity over phrases/prefixes is not part of the paper's
            // model; treat the first word only.
            TermKind::Phrase(ws) => ws.first().and_then(|w| {
                coll.lookup(w).map(|l| {
                    *postings_read += l.len();
                    restrict(l, t.field)
                })
            }),
            TermKind::Prefix(p) => {
                if p.is_empty() {
                    return None;
                }
                let mut merged = Vec::new();
                for (_, l) in coll.prefix_lookup(p) {
                    *postings_read += l.len();
                    merged.extend_from_slice(restrict(l, t.field).postings());
                }
                merged.sort_unstable();
                Some(PostingList::from_sorted(merged))
            }
        }
    };
    let (Some(la), Some(lb)) = (get(a, postings_read), get(b, postings_read)) else {
        return DocSet::new();
    };
    positional_join(&la, &lb, -i64::from(distance), i64::from(distance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{DocId, Document, TextSchema};

    fn fixture() -> (Collection, FieldId, FieldId) {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        // doc0
        c.add_document(
            Document::new()
                .with(ti, "Belief Update and Revision")
                .with(au, "Radhika"),
        );
        // doc1
        c.add_document(
            Document::new()
                .with(ti, "Information Filtering Systems")
                .with(au, "Gravano")
                .with(au, "Garcia"),
        );
        // doc2
        c.add_document(
            Document::new()
                .with(ti, "Update of Belief Networks")
                .with(au, "Garcia"),
        );
        (c, ti, au)
    }

    fn ids(s: &DocSet) -> Vec<u32> {
        s.ids().iter().map(|d| d.0).collect()
    }

    #[test]
    fn word_term() {
        let (c, ti, _) = fixture();
        let out = evaluate(&c, &SearchExpr::term_in("update", ti));
        assert_eq!(ids(&out.docs), [0, 2]);
        assert_eq!(out.postings_read, c.lookup("update").unwrap().len());
    }

    #[test]
    fn field_restriction() {
        let (c, _, au) = fixture();
        // "update" never occurs in the author field.
        let out = evaluate(&c, &SearchExpr::term_in("update", au));
        assert!(out.docs.is_empty());
        // ... but the list was still read.
        assert!(out.postings_read > 0);
    }

    #[test]
    fn phrase_requires_adjacency() {
        let (c, ti, _) = fixture();
        // doc0 has "belief update" adjacent; doc2 has them separated.
        let out = evaluate(&c, &SearchExpr::term_in("belief update", ti));
        assert_eq!(ids(&out.docs), [0]);
    }

    #[test]
    fn three_word_phrase() {
        let (c, ti, _) = fixture();
        let out = evaluate(&c, &SearchExpr::term_in("information filtering systems", ti));
        assert_eq!(ids(&out.docs), [1]);
        let out = evaluate(&c, &SearchExpr::term_in("filtering information systems", ti));
        assert!(out.docs.is_empty());
    }

    #[test]
    fn and_or_not() {
        let (c, ti, au) = fixture();
        let both = SearchExpr::and(vec![
            SearchExpr::term_in("update", ti),
            SearchExpr::term_in("garcia", au),
        ]);
        assert_eq!(ids(&evaluate(&c, &both).docs), [2]);

        let either = SearchExpr::or(vec![
            SearchExpr::term_in("radhika", au),
            SearchExpr::term_in("garcia", au),
        ]);
        assert_eq!(ids(&evaluate(&c, &either).docs), [0, 1, 2]);

        let diff = SearchExpr::AndNot(
            Box::new(SearchExpr::term_in("update", ti)),
            Box::new(SearchExpr::term_in("revision", ti)),
        );
        assert_eq!(ids(&evaluate(&c, &diff).docs), [2]);
    }

    #[test]
    fn prefix_term() {
        let (c, ti, _) = fixture();
        // filter? matches "filtering"
        let out = evaluate(&c, &SearchExpr::term_in("filter?", ti));
        assert_eq!(ids(&out.docs), [1]);
        // updat? matches "update"
        let out = evaluate(&c, &SearchExpr::term_in("updat?", ti));
        assert_eq!(ids(&out.docs), [0, 2]);
    }

    #[test]
    fn near_search() {
        let (c, ti, _) = fixture();
        let near = |d| SearchExpr::Near {
            a: BasicTerm::parse_text("belief", Some(ti)),
            b: BasicTerm::parse_text("networks", Some(ti)),
            distance: d,
        };
        // doc2: "Update of Belief Networks" — gap 1.
        assert_eq!(ids(&evaluate(&c, &near(1)).docs), [2]);
        // order-insensitive: (networks, belief) also matches.
        let swapped = SearchExpr::Near {
            a: BasicTerm::parse_text("networks", Some(ti)),
            b: BasicTerm::parse_text("belief", Some(ti)),
            distance: 1,
        };
        assert_eq!(ids(&evaluate(&c, &swapped).docs), [2]);
    }

    #[test]
    fn near_with_empty_prefix_matches_nothing() {
        let (c, ti, _) = fixture();
        let e = SearchExpr::Near {
            a: BasicTerm {
                kind: TermKind::Prefix(String::new()),
                field: Some(ti),
            },
            b: BasicTerm::parse_text("update", Some(ti)),
            distance: 3,
        };
        let out = evaluate(&c, &e);
        assert!(out.docs.is_empty(), "empty prefix must not merge the index");
    }

    #[test]
    fn unknown_words_match_nothing() {
        let (c, ti, _) = fixture();
        assert!(evaluate(&c, &SearchExpr::term_in("xyzzy", ti)).docs.is_empty());
        assert!(evaluate(&c, &SearchExpr::term_in("xyzzy update", ti))
            .docs
            .is_empty());
    }

    #[test]
    fn postings_accounting_sums_all_lists() {
        let (c, ti, au) = fixture();
        let e = SearchExpr::and(vec![
            SearchExpr::term_in("update", ti),
            SearchExpr::term_in("garcia", au),
        ]);
        let expected = c.lookup("update").unwrap().len() + c.lookup("garcia").unwrap().len();
        assert_eq!(evaluate(&c, &e).postings_read, expected);
    }

    #[test]
    fn and_short_circuits_on_empty() {
        let (c, ti, au) = fixture();
        let e = SearchExpr::and(vec![
            SearchExpr::term_in("xyzzy", ti),
            SearchExpr::term_in("garcia", au),
        ]);
        let out = evaluate(&c, &e);
        assert!(out.docs.is_empty());
        assert_eq!(out.postings_read, 0, "second list not read after empty lhs");
    }

    #[test]
    fn multivalue_phrase_does_not_cross_values() {
        let schema = TextSchema::bibliographic();
        let au = schema.field_by_name("author").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(Document::new().with(au, "Luis").with(au, "Gravano"));
        // "luis gravano" as a phrase must not match across the two values.
        let out = evaluate(&c, &SearchExpr::term_in("luis gravano", au));
        assert!(out.docs.is_empty());
        let out = evaluate(&c, &SearchExpr::term_in("luis", au));
        assert_eq!(ids(&out.docs), [0]);
        let _ = DocId(0);
    }
}
