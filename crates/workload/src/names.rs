//! Deterministic name and vocabulary pools.
//!
//! Experiments need *seeded* synthetic data: surnames for students, faculty
//! and authors, and topic vocabulary for titles and abstracts. Names are
//! single alphanumeric tokens so they behave as one search term on both the
//! relational and the text side (the paper's examples — Gravano, Kao,
//! Radhika — are single words too).

use rand::rngs::StdRng;
use rand::Rng;

const ONSETS: &[&str] = &[
    "gra", "ka", "ra", "de", "wa", "mo", "chu", "da", "ya", "per", "li", "su", "ta", "ha", "vi",
    "no", "sa", "mi", "lu", "go", "ba", "fe", "zi", "qu", "ro",
];
const NUCLEI: &[&str] = &[
    "va", "dhi", "smi", "ler", "ri", "ma", "to", "ne", "ki", "ran", "mo", "la", "du", "pe", "sho",
];
const CODAS: &[&str] = &[
    "no", "ka", "th", "son", "dt", "an", "li", "rez", "berg", "ton", "wal", "dar", "ya", "s", "n",
];

/// Research-topic vocabulary used for titles and abstracts.
pub const TOPICS: &[&str] = &[
    "query", "optimization", "join", "text", "retrieval", "index", "inverted", "database",
    "distributed", "transaction", "semantics", "belief", "update", "revision", "filtering",
    "information", "hypertext", "storage", "concurrency", "recovery", "parallel", "object",
    "mediator", "heterogeneous", "schema", "integration", "probabilistic", "boolean", "vector",
    "ranking", "caching", "replication", "logging", "deduction", "constraint", "view",
    "materialized", "stream", "spatial", "temporal",
];

/// Draws a pronounceable, unique-ish surname. Collisions across draws are
/// possible; use [`unique_names`] when uniqueness is required.
pub fn surname(rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
    s.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
    if rng.gen_bool(0.7) {
        s.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    }
    // Capitalize.
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s,
    }
}

/// Draws `n` distinct surnames. Falls back to numbered suffixes once the
/// syllable space is exhausted, preserving single-token shape.
pub fn unique_names(rng: &mut StdRng, n: usize) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n {
        let mut name = surname(rng);
        attempts += 1;
        if attempts > 20 * (n + 10) || seen.contains(&name) {
            name = format!("{name}{}", out.len());
        }
        if seen.insert(name.clone()) {
            out.push(name);
        }
    }
    out
}

/// Draws a title of `words` topic words (may repeat across titles —
/// exactly what gives common words like 'text' a large fanout).
pub fn title(rng: &mut StdRng, words: usize) -> String {
    (0..words)
        .map(|_| TOPICS[rng.gen_range(0..TOPICS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Draws an abstract-like sentence of `words` topic words.
pub fn abstract_text(rng: &mut StdRng, words: usize) -> String {
    title(rng, words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn surnames_are_single_tokens() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = surname(&mut rng);
            assert!(!s.is_empty());
            assert!(s.chars().all(|c| c.is_alphanumeric()), "{s:?}");
        }
    }

    #[test]
    fn unique_names_are_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let names = unique_names(&mut rng, 500);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = unique_names(&mut StdRng::seed_from_u64(7), 10);
        let b = unique_names(&mut StdRng::seed_from_u64(7), 10);
        assert_eq!(a, b);
        let c = unique_names(&mut StdRng::seed_from_u64(8), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn titles_use_topic_vocabulary() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = title(&mut rng, 4);
        assert_eq!(t.split(' ').count(), 4);
        for w in t.split(' ') {
            assert!(TOPICS.contains(&w));
        }
    }
}
