//! Base parameter points for the paper's figure sweeps (Section 7.1/7.2).
//!
//! Figures 1(A), 1(B) and 2 are *cost-model* sweeps: the paper starts from
//! the calibrated parameter setting of a query and varies `s_1`, `N_1/N`
//! (and, for Figure 2, both) "using the cost formulas to compute the costs
//! of the methods". These functions pin the base points so every bench and
//! test sweeps from the same place.

use textjoin_core::cost::params::{CostParams, JoinStatistics, PredStats};

/// The calibrated environment: `D` documents, Mercury constants, fully
/// correlated (g = 1) joint model — the model the paper's experiments use.
pub fn mercury_params(d: f64) -> CostParams {
    CostParams::mercury(d)
}

/// Q3's base statistics (Example 3.4 / Figure 1(A)): `N = 100` project
/// membership rows, two predicates — `name in title` with the paper's
/// `s_1 = 0.16`, and `member in author`.
pub fn q3_base(d: f64) -> JoinStatistics {
    JoinStatistics {
        n: 100.0,
        n_k: 100.0,
        preds: vec![
            // project.name in title: selective, few distinct names.
            PredStats::simple(0.16, 2.0, 40.0),
            // project.member in author: moderately selective.
            PredStats::simple(0.5, 1.5, 90.0),
        ],
        sel_fanout: d,
        sel_postings: 0.0,
        sel_terms: 0,
        needs_long: true,
        short_form_sufficient: false,
    }
}

/// Q4's base statistics (Example 3.6 / Figure 1(B)): students in one area,
/// predicate 0 = `advisor in author` (few distinct advisors, every advisor
/// occurs: `s_1 = 1`), predicate 1 = `name in author`.
pub fn q4_base(d: f64) -> JoinStatistics {
    JoinStatistics {
        n: 50.0,
        n_k: 50.0,
        preds: vec![
            // advisor in author: all advisors occur; N_1 ≪ N.
            PredStats::simple(1.0, 4.0, 6.0),
            // name in author.
            PredStats::simple(0.3, 0.6, 50.0),
        ],
        sel_fanout: d,
        sel_postings: 0.0,
        sel_terms: 0,
        needs_long: true,
        short_form_sufficient: false,
    }
}

/// Applies a Figure 1(A)-style sweep point: sets `s_1` on predicate 0.
pub fn with_s1(mut stats: JoinStatistics, s1: f64) -> JoinStatistics {
    stats.preds[0].selectivity = s1;
    stats
}

/// Applies a Figure 1(B)/Figure 2-style sweep point: sets
/// `N_1 = frac × N` on predicate 0.
pub fn with_n1_frac(mut stats: JoinStatistics, frac: f64) -> JoinStatistics {
    stats.preds[0].distinct = (frac * stats.n).max(1.0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_points_match_paper_values() {
        let q3 = q3_base(10_000.0);
        assert!((q3.preds[0].selectivity - 0.16).abs() < 1e-12);
        assert_eq!(q3.n, 100.0);
        let q4 = q4_base(10_000.0);
        assert!((q4.preds[0].selectivity - 1.0).abs() < 1e-12);
        assert!(q4.preds[0].distinct < q4.n);
    }

    #[test]
    fn sweep_helpers() {
        let q3 = q3_base(10_000.0);
        assert_eq!(with_s1(q3.clone(), 0.7).preds[0].selectivity, 0.7);
        assert_eq!(with_n1_frac(q3, 0.5).preds[0].distinct, 50.0);
    }

    #[test]
    fn params_are_calibrated() {
        let p = mercury_params(5000.0);
        assert_eq!(p.g, 1, "the paper verifies with the fully correlated model");
        assert_eq!(p.d, 5000.0);
    }
}
