//! # textjoin-workload — synthetic experimental worlds
//!
//! Seeded generators standing in for the paper's testbed: a university
//! relational database (`student`, `faculty`, `project`) and a CSTR-like
//! document collection à la Project Mercury. The knobs in
//! [`world::WorldSpec`] pin exactly the statistics the paper's experiments
//! sweep (`N`, `N_i`, `s_i`, `f_i`), and [`paper`] provides the paper's
//! example queries Q1–Q5 against a generated world.
//!
//! ```
//! use textjoin_workload::{world::{World, WorldSpec}, paper};
//!
//! let w = World::generate(WorldSpec { students: 50, background_docs: 100,
//!                                     ..WorldSpec::default() });
//! let q1 = paper::q1(&w);
//! assert_eq!(q1.relation, "student");
//! ```

pub mod corpus;
pub mod knobs;
pub mod names;
pub mod paper;
pub mod world;

pub use world::{World, WorldSpec};
