//! The generated experimental world: a university database (student,
//! faculty, project) plus a CSTR-like document collection, with knobs that
//! pin the statistics the paper's experiments sweep — relation size `N`,
//! distinct counts `N_i`, predicate selectivities `s_i`, and fanouts `f_i`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use textjoin_rel::catalog::Catalog;
use textjoin_rel::schema::RelSchema;
use textjoin_rel::table::Table;
use textjoin_rel::tuple::Tuple;
use textjoin_rel::value::{Value, ValueType};
use textjoin_text::doc::Document;
use textjoin_text::index::Collection;
use textjoin_text::server::TextServer;

use crate::corpus::{cstr_schema, INSTITUTIONS};
use crate::names::{abstract_text, title, unique_names, TOPICS};

/// Research areas used for `student.area`.
pub const AREAS: &[&str] = &["AI", "db", "distributed systems", "theory"];

/// Departments used for `dept` columns.
pub const DEPTS: &[&str] = &["CS", "EE", "Math", "Stats"];

/// Generation knobs. Defaults give a laptop-fast world (a few thousand
/// documents) whose statistics echo the paper's setting.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// RNG seed — every run with the same spec is identical.
    pub seed: u64,
    /// Background documents (the corpus also gains the documents generated
    /// for publishing students and projects).
    pub background_docs: usize,
    /// Students (`N` for Q1/Q2/Q4-style queries before local selections).
    pub students: usize,
    /// Distinct advisors (`N_1` for Q4's probe column).
    pub advisors: usize,
    /// Fraction of students who author documents (drives `s` of
    /// `student.name in author`).
    pub student_publish_frac: f64,
    /// Documents authored per publishing student (drives `f`).
    pub docs_per_student_author: usize,
    /// Probability a publishing student's document is co-authored with
    /// their advisor (gives Q4 its answers).
    pub coauthor_with_advisor_frac: f64,
    /// Number of projects (distinct project names — `N_1` for Q3).
    pub projects: usize,
    /// Members (rows) per project; `N = projects × members_per_project`
    /// for Q3.
    pub members_per_project: usize,
    /// Fraction of project names that occur in some document title —
    /// exactly `s_1` of Q3's probe column.
    pub project_title_hit_frac: f64,
    /// Documents titled with each hit project name (drives Q3's `f_1`).
    pub docs_per_hit_project: usize,
    /// Probability a hit project's document is authored by a project
    /// member (the predicate correlation of Q3: 1.0 = fully correlated,
    /// matching the paper's fully-correlated cost model).
    pub project_doc_by_member_frac: f64,
    /// Fraction of projects sponsored by NSF (Q3's local selection).
    pub nsf_frac: f64,
    /// Probability a background document is co-authored by a faculty
    /// member (keeps advisors from being too prolific — the paper's Q4
    /// discussion assumes advisors are "not very prolific").
    pub background_faculty_coauthor_frac: f64,
    /// Fraction of documents dated "May 1993" (Q5's selection).
    pub year_1993_frac: f64,
    /// Documents with the phrase "belief update" in the title (Q1's
    /// selection), authored by senior AI students where possible.
    pub belief_update_docs: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        Self {
            seed: 42,
            background_docs: 2_000,
            students: 200,
            advisors: 12,
            student_publish_frac: 0.3,
            docs_per_student_author: 2,
            coauthor_with_advisor_frac: 0.5,
            projects: 40,
            members_per_project: 3,
            project_title_hit_frac: 0.16, // the paper's Q3 value of s_1
            docs_per_hit_project: 2,
            project_doc_by_member_frac: 0.9,
            nsf_frac: 0.5,
            background_faculty_coauthor_frac: 0.04,
            year_1993_frac: 0.3,
            belief_update_docs: 3,
        }
    }
}

/// The generated world.
pub struct World {
    /// The relational database: `student`, `faculty`, `project`.
    pub catalog: Catalog,
    /// The text server over the generated collection.
    pub server: TextServer,
    /// The advisor name playing the paper's 'Garcia' (used by Q2/Q4).
    pub anchor_advisor: String,
    /// The spec the world was generated from.
    pub spec: WorldSpec,
}

impl World {
    /// Generates a world from `spec`.
    pub fn generate(spec: WorldSpec) -> World {
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // --- People -----------------------------------------------------
        let student_names = unique_names(&mut rng, spec.students);
        let faculty_names = unique_names(&mut rng, spec.advisors);

        #[derive(Clone)]
        struct Student {
            name: String,
            advisor: String,
            area: &'static str,
            year: i64,
            dept: &'static str,
        }
        let students: Vec<Student> = student_names
            .iter()
            .map(|name| Student {
                name: name.clone(),
                advisor: faculty_names[rng.gen_range(0..faculty_names.len())].clone(),
                area: AREAS[rng.gen_range(0..AREAS.len())],
                year: rng.gen_range(1..=6),
                dept: DEPTS[rng.gen_range(0..DEPTS.len())],
            })
            .collect();

        // --- Projects ---------------------------------------------------
        // Project names are fresh single tokens; the first
        // `hit_frac × projects` of them will be injected into doc titles.
        let project_names: Vec<String> = unique_names(&mut rng, spec.projects)
            .into_iter()
            .map(|n| format!("{n}proj").to_lowercase())
            .collect();
        let hit_projects = ((spec.projects as f64) * spec.project_title_hit_frac).round() as usize;

        // Assign members.
        let mut project_rows: Vec<(String, String, String)> = Vec::new(); // (name, sponsor, member)
        for (pi, pname) in project_names.iter().enumerate() {
            let sponsor = if (pi as f64) < spec.nsf_frac * spec.projects as f64 {
                "NSF"
            } else {
                "DARPA"
            };
            for _ in 0..spec.members_per_project {
                let member = &students[rng.gen_range(0..students.len())].name;
                project_rows.push((pname.clone(), sponsor.to_owned(), member.clone()));
            }
        }
        // Shuffle so sponsors/hits are not clustered.
        project_rows.shuffle(&mut rng);

        // --- Corpus -----------------------------------------------------
        let schema = cstr_schema();
        let ti = schema.field_by_name("title").expect("schema has title");
        let au = schema.field_by_name("author").expect("schema has author");
        let ab = schema.field_by_name("abstract").expect("schema has abstract");
        let yr = schema.field_by_name("year").expect("schema has year");
        let inst = schema.field_by_name("institution").expect("schema has institution");
        let mut coll = Collection::new(schema);

        let year_of = |rng: &mut StdRng| {
            if rng.gen_bool(spec.year_1993_frac) {
                "May 1993"
            } else {
                "May 1990"
            }
        };
        let add_doc = |rng: &mut StdRng,
                           coll: &mut Collection,
                           doc_title: String,
                           authors: Vec<String>| {
            let mut d = Document::new()
                .with(ti, doc_title)
                .with(ab, abstract_text(rng, 12))
                .with(yr, year_of(rng))
                .with(inst, INSTITUTIONS[rng.gen_range(0..INSTITUTIONS.len())]);
            for a in authors {
                d.push(au, a);
            }
            coll.add_document(d);
        };

        // Background documents by faculty and outside authors.
        let outside_authors = unique_names(&mut rng, 300);
        for _ in 0..spec.background_docs {
            let mut authors = vec![outside_authors[rng.gen_range(0..outside_authors.len())].clone()];
            if rng.gen_bool(spec.background_faculty_coauthor_frac) {
                authors.push(faculty_names[rng.gen_range(0..faculty_names.len())].clone());
            }
            let t = title(&mut rng, 5);
            add_doc(&mut rng, &mut coll, t, authors);
        }

        // Publishing students.
        let publishing = ((spec.students as f64) * spec.student_publish_frac).round() as usize;
        for s in students.iter().take(publishing) {
            for _ in 0..spec.docs_per_student_author {
                let mut authors = vec![s.name.clone()];
                if rng.gen_bool(spec.coauthor_with_advisor_frac) {
                    authors.push(s.advisor.clone());
                }
                let t = title(&mut rng, 5);
                add_doc(&mut rng, &mut coll, t, authors);
            }
        }

        // 'belief update' documents for Q1, authored by senior AI students
        // when available (so Q1 has answers), else by outsiders.
        let senior_ai: Vec<&Student> = students
            .iter()
            .take(publishing)
            .filter(|s| s.area == "AI" && s.year > 3)
            .collect();
        for i in 0..spec.belief_update_docs {
            let author = if !senior_ai.is_empty() {
                senior_ai[i % senior_ai.len()].name.clone()
            } else {
                outside_authors[i % outside_authors.len()].clone()
            };
            let filler = TOPICS[rng.gen_range(0..TOPICS.len())];
            add_doc(
                &mut rng,
                &mut coll,
                format!("belief update {filler}"),
                vec![author],
            );
        }

        // Documents titled with hit project names; authored by a project
        // member half the time (so Q3 has both full matches and
        // probe-passes-query-fails cases).
        for pname in project_names.iter().take(hit_projects) {
            for _ in 0..spec.docs_per_hit_project {
                let member_rows: Vec<&(String, String, String)> = project_rows
                    .iter()
                    .filter(|(n, _, _)| n == pname)
                    .collect();
                let author = if rng.gen_bool(spec.project_doc_by_member_frac)
                    && !member_rows.is_empty()
                {
                    member_rows[rng.gen_range(0..member_rows.len())].2.clone()
                } else {
                    outside_authors[rng.gen_range(0..outside_authors.len())].clone()
                };
                let t = format!("{pname} {}", title(&mut rng, 3));
                add_doc(&mut rng, &mut coll, t, vec![author]);
            }
        }

        // --- Relational tables -------------------------------------------
        let mut catalog = Catalog::new();

        let sschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("advisor", ValueType::Str),
            ("area", ValueType::Str),
            ("year", ValueType::Int),
            ("dept", ValueType::Str),
        ]);
        let mut student = Table::new("student", sschema);
        for s in &students {
            student.push(Tuple::new(vec![
                Value::str(&*s.name),
                Value::str(&*s.advisor),
                Value::str(s.area),
                Value::int(s.year),
                Value::str(s.dept),
            ]));
        }
        catalog.register(student);

        let fschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut faculty = Table::new("faculty", fschema);
        for f in &faculty_names {
            faculty.push(Tuple::new(vec![
                Value::str(&**f),
                Value::str(DEPTS[rng.gen_range(0..DEPTS.len())]),
            ]));
        }
        catalog.register(faculty);

        let pschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("sponsor", ValueType::Str),
            ("member", ValueType::Str),
        ]);
        let mut project = Table::new("project", pschema);
        for (name, sponsor, member) in &project_rows {
            project.push(Tuple::new(vec![
                Value::str(&**name),
                Value::str(&**sponsor),
                Value::str(&**member),
            ]));
        }
        catalog.register(project);

        // The anchor advisor: the one advising the most publishing students
        // (the paper's 'Garcia', who has several students for Q2's IN list).
        // The anchor plays Q2's 'Garcia': prefer the advisor whose students
        // give Q2 a non-empty answer (a student-authored document with
        // 'text' in the title), breaking ties by publishing-student count
        // and then name — all deterministic (BTreeMap order).
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        let mut has_q2_answer: std::collections::BTreeMap<&str, bool> =
            std::collections::BTreeMap::new();
        for st in students.iter().take(publishing) {
            *counts.entry(st.advisor.as_str()).or_default() += 1;
            let expr = textjoin_text::expr::SearchExpr::and(vec![
                textjoin_text::expr::SearchExpr::term_in("text", ti),
                textjoin_text::expr::SearchExpr::term_in(&st.name, au),
            ]);
            if !textjoin_text::eval::evaluate(&coll, &expr).docs.is_empty() {
                has_q2_answer.insert(st.advisor.as_str(), true);
            }
        }
        let anchor_advisor = counts
            .iter()
            .max_by_key(|&(a, c)| {
                (
                    has_q2_answer.get(a).copied().unwrap_or(false),
                    *c,
                    std::cmp::Reverse(*a),
                )
            })
            .map(|(a, _)| (*a).to_owned())
            .unwrap_or_else(|| faculty_names[0].clone());

        World {
            catalog,
            server: TextServer::new(coll),
            anchor_advisor,
            spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_rel::ops::distinct_count;

    fn world() -> World {
        World::generate(WorldSpec {
            background_docs: 300,
            students: 80,
            projects: 20,
            ..WorldSpec::default()
        })
    }

    #[test]
    fn deterministic_generation() {
        let a = world();
        let b = world();
        assert_eq!(a.server.doc_count(), b.server.doc_count());
        assert_eq!(
            a.catalog.table("student").unwrap().rows(),
            b.catalog.table("student").unwrap().rows()
        );
        assert_eq!(a.anchor_advisor, b.anchor_advisor);
    }

    #[test]
    fn tables_have_expected_shape() {
        let w = world();
        let student = w.catalog.table("student").unwrap();
        assert_eq!(student.len(), 80);
        assert_eq!(distinct_count(student, student.col("name")), 80);
        assert!(distinct_count(student, student.col("advisor")) <= 12);
        let project = w.catalog.table("project").unwrap();
        assert_eq!(project.len(), 20 * 3);
        assert_eq!(distinct_count(project, project.col("name")), 20);
    }

    #[test]
    fn project_hit_fraction_controls_s1() {
        let w = world();
        let export = w.server.export_stats();
        let ti = w.server.collection().schema().field_by_name("title").unwrap();
        let project = w.catalog.table("project").unwrap();
        let stats = textjoin_core::stats::export_predicate(
            &export,
            project,
            project.col("name"),
            ti,
        );
        // Spec: 16% of 20 projects ≈ 3 hit names.
        assert!(
            (stats.selectivity - 0.15).abs() < 0.06,
            "measured s_1 = {}",
            stats.selectivity
        );
    }

    #[test]
    fn student_publish_fraction_controls_selectivity() {
        let w = world();
        let export = w.server.export_stats();
        let au = w.server.collection().schema().field_by_name("author").unwrap();
        let student = w.catalog.table("student").unwrap();
        let stats = textjoin_core::stats::export_predicate(
            &export,
            student,
            student.col("name"),
            au,
        );
        // Publishing students plus project members who authored hit-project
        // docs; the knob dominates but does not pin it exactly.
        assert!(
            stats.selectivity > 0.25 && stats.selectivity < 0.5,
            "measured s = {}",
            stats.selectivity
        );
        // Publishing students author ~2 docs each.
        assert!(stats.fanout > 0.3 && stats.fanout < 1.5, "f = {}", stats.fanout);
    }

    #[test]
    fn belief_update_docs_exist_with_senior_ai_authors() {
        let w = world();
        let hits = w.server.search_str("TI='belief update'").unwrap();
        // At least the injected documents; random topic titles can add more.
        assert!(hits.len() >= w.spec.belief_update_docs);
    }

    #[test]
    fn anchor_advisor_has_publishing_students() {
        let w = world();
        let student = w.catalog.table("student").unwrap();
        let advised: Vec<&str> = student
            .iter()
            .filter(|r| r.get(student.col("advisor")).as_str() == Some(&w.anchor_advisor))
            .map(|r| r.get(student.col("name")).as_str().expect("names are strings"))
            .collect();
        assert!(!advised.is_empty());
    }

    #[test]
    fn corpus_size_accounts_for_all_sources() {
        let w = world();
        let d = w.server.doc_count();
        // background + publishing-student docs + belief docs + project docs
        assert!(d >= 300 + w.spec.belief_update_docs);
        assert!(d < 1000);
    }
}
