//! The paper's example queries Q1–Q5 (Sections 2–6), expressed against a
//! generated [`World`](crate::world::World).

use textjoin_core::methods::Projection;
use textjoin_core::optimizer::plan::{ForeignSpec, MultiJoinQuery, RelJoinPred, RelSpec};
use textjoin_core::query::SingleJoinQuery;
use textjoin_rel::expr::{CmpOp, Pred};
use textjoin_rel::table::Table;

use crate::world::World;

/// Q1 (Section 2.2): senior AI students who authored reports with
/// 'belief update' in the title.
///
/// ```sql
/// select * from student, mercury
/// where student.area = 'AI' and student.year > 3
///   and 'belief update' in mercury.title
///   and student.name in mercury.author
/// ```
pub fn q1(w: &World) -> SingleJoinQuery {
    let student = w.catalog.table("student").expect("world has student");
    SingleJoinQuery {
        relation: "student".into(),
        local_pred: Pred::and(vec![
            Pred::eq(student.col("area"), "AI"),
            Pred::gt(student.col("year"), 3i64),
        ]),
        selections: vec![("belief update".into(), "title".into())],
        join: vec![("name".into(), "author".into())],
        projection: Projection::Full,
    }
}

/// Q2 (Example 3.3): docids of reports with 'text' in the title authored
/// by any of the anchor advisor's students — the query is itself a
/// semi-join.
///
/// ```sql
/// select docid from student, mercury
/// where student.advisor = '<anchor>'
///   and 'text' in mercury.title
///   and student.name in mercury.author
/// ```
pub fn q2(w: &World) -> SingleJoinQuery {
    let student = w.catalog.table("student").expect("world has student");
    SingleJoinQuery {
        relation: "student".into(),
        local_pred: Pred::eq(student.col("advisor"), w.anchor_advisor.as_str()),
        selections: vec![("text".into(), "title".into())],
        join: vec![("name".into(), "author".into())],
        projection: Projection::DocIds,
    }
}

/// Q3 (Example 3.4): NSF projects whose names appear in report titles
/// written by project members — two join predicates, the probing
/// showcase.
///
/// ```sql
/// select project.member, project.name, mercury.docid
/// from project, mercury
/// where project.sponsor = 'NSF'
///   and project.name in mercury.title
///   and project.member in mercury.author
/// ```
pub fn q3(w: &World) -> SingleJoinQuery {
    let project = w.catalog.table("project").expect("world has project");
    SingleJoinQuery {
        relation: "project".into(),
        local_pred: Pred::eq(project.col("sponsor"), "NSF"),
        selections: vec![],
        join: vec![
            ("name".into(), "title".into()),
            ("member".into(), "author".into()),
        ],
        projection: Projection::Full,
    }
}

/// Q4 (Example 3.6): distributed-systems students who co-authored reports
/// with their advisors.
///
/// ```sql
/// select * from student, mercury
/// where student.area = 'distributed systems'
///   and student.advisor in mercury.author
///   and student.name in mercury.author
/// ```
///
/// Predicate 0 is `advisor in author` (the low-distinct probe column),
/// predicate 1 is `name in author`.
pub fn q4(w: &World) -> SingleJoinQuery {
    let student = w.catalog.table("student").expect("world has student");
    SingleJoinQuery {
        relation: "student".into(),
        local_pred: Pred::eq(student.col("area"), "distributed systems"),
        selections: vec![],
        join: vec![
            ("advisor".into(), "author".into()),
            ("name".into(), "author".into()),
        ],
        projection: Projection::Full,
    }
}

/// Q5 (Example 6.1): documents from 1993 co-authored by a student and a
/// faculty member from another department — the multi-join query.
///
/// ```sql
/// select student.name, mercury.docid
/// from student, faculty, mercury
/// where student.name in mercury.author
///   and faculty.name in mercury.author
///   and faculty.dept != student.dept
///   and '1993' in mercury.year
/// ```
pub fn q5(_w: &World) -> MultiJoinQuery {
    MultiJoinQuery {
        relations: vec![
            RelSpec {
                name: "student".into(),
                local_pred: Pred::True,
            },
            RelSpec {
                name: "faculty".into(),
                local_pred: Pred::True,
            },
        ],
        rel_joins: vec![RelJoinPred {
            left_rel: 0,
            left_col: "dept".into(),
            op: CmpOp::Ne,
            right_rel: 1,
            right_col: "dept".into(),
        }],
        selections: vec![("1993".into(), "year".into())],
        foreign: vec![
            ForeignSpec {
                rel: 0,
                column: "name".into(),
                field: "author".into(),
            },
            ForeignSpec {
                rel: 1,
                column: "name".into(),
                field: "author".into(),
            },
        ],
        projection: Projection::Full,
    }
}

/// Q6 (beyond the paper): a three-way join whose plans chain *two* text
/// joins — NSF projects whose name appears in a report title, joined to
/// the member students whose names appear as authors.
///
/// ```sql
/// select * from project, student, mercury
/// where project.sponsor = 'NSF'
///   and project.member = student.name
///   and project.name in mercury.title
///   and student.name in mercury.author
/// ```
///
/// Unlike Q5 (where the single text join is the plan's first transport
/// operation), Q6's second text join dispatches after the first has
/// already spent transport time — the shape that exercises deadline
/// pressure and graceful degradation mid-plan.
pub fn q6(w: &World) -> MultiJoinQuery {
    let project = w.catalog.table("project").expect("world has project");
    MultiJoinQuery {
        relations: vec![
            RelSpec {
                name: "project".into(),
                local_pred: Pred::eq(project.col("sponsor"), "NSF"),
            },
            RelSpec {
                name: "student".into(),
                local_pred: Pred::True,
            },
        ],
        rel_joins: vec![RelJoinPred {
            left_rel: 0,
            left_col: "member".into(),
            op: CmpOp::Eq,
            right_rel: 1,
            right_col: "name".into(),
        }],
        selections: vec![],
        foreign: vec![
            ForeignSpec {
                rel: 0,
                column: "name".into(),
                field: "title".into(),
            },
            ForeignSpec {
                rel: 1,
                column: "name".into(),
                field: "author".into(),
            },
        ],
        projection: Projection::Full,
    }
}

/// The number of tuples Q_i's local selection keeps — handy when reporting
/// experiment parameters.
pub fn local_cardinality(w: &World, q: &SingleJoinQuery) -> usize {
    let t: &Table = w.catalog.table(&q.relation).expect("relation exists");
    textjoin_rel::ops::filter(t, &q.local_pred).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldSpec};
    use textjoin_core::query::prepare;

    fn world() -> World {
        World::generate(WorldSpec {
            background_docs: 300,
            students: 80,
            projects: 20,
            ..WorldSpec::default()
        })
    }

    #[test]
    fn queries_prepare_against_world() {
        let w = world();
        let ts = w.server.collection().schema();
        for q in [q1(&w), q2(&w), q3(&w), q4(&w)] {
            let p = prepare(&q, &w.catalog, ts).expect("prepares");
            assert!(p.filtered.len() <= 80 * 3);
        }
    }

    #[test]
    fn q1_has_answers() {
        let w = world();
        let ts = w.server.collection().schema();
        let p = prepare(&q1(&w), &w.catalog, ts).unwrap();
        assert!(!p.filtered.is_empty(), "some senior AI students exist");
        let ctx = textjoin_core::methods::ExecContext::new(&w.server);
        let out = textjoin_core::methods::ts::tuple_substitution(&ctx, &p.foreign_join(), true)
            .unwrap();
        assert!(
            !out.table.is_empty(),
            "belief-update docs are authored by senior AI students"
        );
    }

    #[test]
    fn q2_is_docid_projection() {
        let w = world();
        let ts = w.server.collection().schema();
        let p = prepare(&q2(&w), &w.catalog, ts).unwrap();
        assert!(!p.filtered.is_empty(), "anchor advisor has students");
        let ctx = textjoin_core::methods::ExecContext::new(&w.server);
        let out = textjoin_core::methods::sj::semi_join(&ctx, &p.foreign_join()).unwrap();
        assert_eq!(out.table.schema().len(), 1);
    }

    #[test]
    fn q3_q4_have_two_predicates() {
        let w = world();
        assert_eq!(q3(&w).join.len(), 2);
        assert_eq!(q4(&w).join.len(), 2);
    }

    #[test]
    fn q5_planner_accepts() {
        let w = world();
        let params = textjoin_core::cost::params::CostParams::mercury(w.server.doc_count() as f64);
        let (planned, outcome) = textjoin_core::exec::plan_and_execute(
            &q5(&w),
            &w.catalog,
            &w.server,
            params,
            textjoin_core::optimizer::multi::ExecutionSpace::Prl,
        )
        .unwrap();
        assert!(planned.plan.is_valid_prl());
        assert!(outcome.total_cost > 0.0);
    }

    #[test]
    fn local_cardinality_matches_filter() {
        let w = world();
        let q = q2(&w);
        let n = local_cardinality(&w, &q);
        assert!(n > 0 && n < 80);
    }
}
