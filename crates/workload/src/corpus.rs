//! The CSTR-like document collection schema.
//!
//! Project Mercury's Computer Science Technical Report database is modeled
//! as bibliographic records with title, author(s), abstract, year, and
//! institution. The short form — what a search result set carries — holds
//! the docid, title, and year; **author is long-form only**, which matches
//! the paper's observation that RTP-style matching generally requires
//! fetching documents (and makes the long-form cost `c_l` matter the way
//! Table 2 shows).

use textjoin_text::doc::TextSchema;

/// Builds the CSTR text schema.
pub fn cstr_schema() -> TextSchema {
    let mut s = TextSchema::new();
    s.add_field("title", "TI", true);
    s.add_field("author", "AU", false);
    s.add_field("abstract", "AB", false);
    s.add_field("year", "YR", true);
    s.add_field("institution", "IN", false);
    s
}

/// Institutions for the `institution` field.
pub const INSTITUTIONS: &[&str] = &[
    "CMU", "Stanford", "Berkeley", "MIT", "Wisconsin", "Toronto",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_fields_and_short_form() {
        let s = cstr_schema();
        assert_eq!(s.len(), 5);
        let au = s.field_by_name("author").unwrap();
        assert!(!s.def(au).in_short_form, "author is long-form only");
        let ti = s.field_by_name("title").unwrap();
        assert!(s.def(ti).in_short_form);
        assert_eq!(s.field_by_alias("YR"), s.field_by_name("year"));
    }
}
