//! Property tests: relational-algebra laws of the operators and joins.

use proptest::prelude::*;
use textjoin_rel::expr::{CmpOp, Pred};
use textjoin_rel::join::{hash_join, nested_loop_join, semi_join};
use textjoin_rel::ops::{distinct, distinct_count_multi, filter, project_distinct, sort_by};
use textjoin_rel::schema::{ColId, RelSchema};
use textjoin_rel::strmatch::{contains_term, like};
use textjoin_rel::table::Table;
use textjoin_rel::tuple::Tuple;
use textjoin_rel::value::{Value, ValueType};

const KEYS: &[&str] = &["a", "b", "c", "d"];

fn table(name: &'static str) -> impl Strategy<Value = Table> {
    prop::collection::vec((prop::sample::select(KEYS), 0i64..5), 0..12).prop_map(move |rows| {
        let schema =
            RelSchema::from_columns(vec![("k", ValueType::Str), ("v", ValueType::Int)]);
        let mut t = Table::new(name, schema);
        for (k, v) in rows {
            t.push(Tuple::new(vec![Value::str(k), Value::int(v)]));
        }
        t
    })
}

fn row_set(t: &Table) -> Vec<String> {
    let mut v: Vec<String> = t.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

proptest! {
    /// Hash join equals nested-loop join with the equality predicate.
    #[test]
    fn hash_join_equals_nested_loop(l in table("l"), r in table("r")) {
        let eq = Pred::CmpCols { left: ColId(0), op: CmpOp::Eq, right: ColId(2) };
        let nl = nested_loop_join(&l, &r, &eq);
        let hj = hash_join(&l, &r, ColId(0), ColId(0), &Pred::True);
        prop_assert_eq!(row_set(&nl), row_set(&hj));
    }

    /// Semi-join keeps exactly the left rows with a match, schema intact.
    #[test]
    fn semi_join_is_exists_filter(l in table("l"), r in table("r")) {
        let sj = semi_join(&l, &r, ColId(0), ColId(0));
        let keys: std::collections::HashSet<&Value> =
            r.iter().map(|t| t.get(ColId(0))).collect();
        let expected: Vec<String> = {
            let mut v: Vec<String> = l
                .iter()
                .filter(|t| keys.contains(t.get(ColId(0))))
                .map(|t| t.to_string())
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(row_set(&sj), expected);
        prop_assert_eq!(sj.schema(), l.schema());
    }

    /// Filter by conjunction equals sequential filters.
    #[test]
    fn filter_composes(t in table("t"), a in 0i64..5, b in 0i64..5) {
        let p1 = Pred::gt(ColId(1), a);
        let p2 = Pred::Cmp { col: ColId(1), op: CmpOp::Lt, rhs: Value::int(b) };
        let both = filter(&t, &Pred::and(vec![p1.clone(), p2.clone()]));
        let seq = filter(&filter(&t, &p1), &p2);
        prop_assert_eq!(row_set(&both), row_set(&seq));
    }

    /// Distinct is idempotent and never grows.
    #[test]
    fn distinct_idempotent(t in table("t")) {
        let d1 = distinct(&t);
        let d2 = distinct(&d1);
        prop_assert!(d1.len() <= t.len());
        prop_assert_eq!(row_set(&d1), row_set(&d2));
    }

    /// project_distinct row count equals the multi-column distinct count.
    #[test]
    fn project_distinct_counts(t in table("t")) {
        let cols = vec![ColId(0), ColId(1)];
        let pd = project_distinct(&t, &cols);
        prop_assert_eq!(pd.len(), distinct_count_multi(&t, &cols));
    }

    /// sort_by produces a sorted permutation.
    #[test]
    fn sort_by_sorts(t in table("t")) {
        let s = sort_by(&t, &[ColId(0), ColId(1)]);
        prop_assert_eq!(s.len(), t.len());
        prop_assert_eq!(row_set(&s), row_set(&t));
        for w in s.rows().windows(2) {
            let o = w[0]
                .get(ColId(0))
                .total_cmp(w[1].get(ColId(0)))
                .then(w[0].get(ColId(1)).total_cmp(w[1].get(ColId(1))));
            prop_assert!(o != std::cmp::Ordering::Greater);
        }
    }

    /// LIKE with no wildcards is equality; %s% matches any embedding.
    #[test]
    fn like_laws(s in "[a-z]{0,6}", pre in "[a-z]{0,3}", post in "[a-z]{0,3}") {
        prop_assert!(like(&s, &s));
        let embedded = format!("{pre}{s}{post}");
        let pat = format!("%{s}%");
        prop_assert!(like(&embedded, &pat));
        prop_assert!(like(&embedded, "%"));
    }

    /// contains_term is reflexive on normalized text and invariant under
    /// case change of the needle.
    #[test]
    fn contains_term_laws(words in prop::collection::vec("[a-z]{1,5}", 1..4)) {
        let text = words.join(" ");
        prop_assert!(contains_term(&text, &text));
        prop_assert!(contains_term(&text, &text.to_uppercase()));
        for w in &words {
            prop_assert!(contains_term(&text, w));
        }
    }
}
