//! Binary join operators.
//!
//! The relational side offers the traditional methods: nested-loop join
//! with an arbitrary residual predicate, and hash join for equi-joins.
//! Join outputs concatenate the operand schemas; name clashes on the right
//! are prefixed with the right table's name.

use std::collections::HashMap;

use crate::expr::Pred;
use crate::schema::ColId;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;

/// Builds the concatenated output schema/table shell for a join of `l`, `r`.
fn join_shell(l: &Table, r: &Table) -> Table {
    let schema = l.schema().concat(r.schema(), r.name());
    Table::new(format!("({} ⋈ {})", l.name(), r.name()), schema)
}

/// Nested-loop join: emits `lrow ++ rrow` for every pair satisfying `pred`.
/// `pred` is expressed over the concatenated schema (left columns first,
/// right columns shifted by `l.schema().len()` — see [`Pred::shift`]).
pub fn nested_loop_join(l: &Table, r: &Table, pred: &Pred) -> Table {
    let mut out = join_shell(l, r);
    let mut rows = Vec::new();
    for lt in l.iter() {
        for rt in r.iter() {
            let joined = lt.concat(rt);
            if pred.eval(&joined) {
                rows.push(joined);
            }
        }
    }
    out = out.with_rows(rows);
    out
}

/// Hash equi-join on `l.lcol = r.rcol`, with an optional residual predicate
/// over the concatenated schema. NULL keys never join (SQL semantics).
pub fn hash_join(l: &Table, r: &Table, lcol: ColId, rcol: ColId, residual: &Pred) -> Table {
    let mut out = join_shell(l, r);
    // Build on the smaller side; probe with the larger.
    let build_left = l.len() <= r.len();
    let (build, probe) = if build_left { (l, r) } else { (r, l) };
    let (bcol, pcol) = if build_left { (lcol, rcol) } else { (rcol, lcol) };

    let mut ht: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
    for bt in build.iter() {
        let k = bt.get(bcol);
        if !k.is_null() {
            ht.entry(k).or_default().push(bt);
        }
    }
    let mut rows = Vec::new();
    for pt in probe.iter() {
        let k = pt.get(pcol);
        if k.is_null() {
            continue;
        }
        if let Some(matches) = ht.get(k) {
            for bt in matches {
                let joined = if build_left {
                    bt.concat(pt)
                } else {
                    pt.concat(bt)
                };
                if residual.eval(&joined) {
                    rows.push(joined);
                }
            }
        }
    }
    // Hash join may permute output order relative to nested loop; sort by
    // nothing — bag semantics, callers must not rely on order.
    out = out.with_rows(rows);
    out
}

/// Semi-join `l ⋉ r` on `l.lcol = r.rcol`: rows of `l` with at least one
/// match in `r`. Keeps `l`'s schema. This is the relational analogue of the
/// reduction the paper's *probe nodes* perform on a relation.
pub fn semi_join(l: &Table, r: &Table, lcol: ColId, rcol: ColId) -> Table {
    let keys: std::collections::HashSet<&Value> = r
        .iter()
        .map(|t| t.get(rcol))
        .filter(|v| !v.is_null())
        .collect();
    let rows: Vec<Tuple> = l
        .iter()
        .filter(|t| keys.contains(t.get(lcol)))
        .cloned()
        .collect();
    Table::new(format!("({} ⋉ {})", l.name(), r.name()), l.schema().clone()).with_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::RelSchema;
    use crate::tuple;
    use crate::value::ValueType;

    fn student() -> Table {
        let schema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut t = Table::new("student", schema);
        t.push(tuple!["Gravano", "CS"]);
        t.push(tuple!["Kao", "CS"]);
        t.push(tuple!["Pham", "EE"]);
        t
    }

    fn faculty() -> Table {
        let schema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut t = Table::new("faculty", schema);
        t.push(tuple!["Garcia", "CS"]);
        t.push(tuple!["Dayal", "EE"]);
        t
    }

    #[test]
    fn nested_loop_cross_and_theta() {
        let s = student();
        let f = faculty();
        let cross = nested_loop_join(&s, &f, &Pred::True);
        assert_eq!(cross.len(), 6);
        assert_eq!(cross.schema().len(), 4);
        // theta: different departments (the Q5 predicate)
        let p = Pred::CmpCols {
            left: ColId(1),
            op: CmpOp::Ne,
            right: ColId(3),
        };
        let theta = nested_loop_join(&s, &f, &p);
        assert_eq!(theta.len(), 3); // Gravano-Dayal, Kao-Dayal, Pham-Garcia
    }

    #[test]
    fn join_schema_prefixes_clashes() {
        let s = student();
        let f = faculty();
        let j = nested_loop_join(&s, &f, &Pred::True);
        assert!(j.schema().column_by_name("faculty.name").is_some());
        assert!(j.schema().column_by_name("faculty.dept").is_some());
        assert!(j.schema().column_by_name("name").is_some());
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let s = student();
        let f = faculty();
        let eq = Pred::CmpCols {
            left: ColId(1),
            op: CmpOp::Eq,
            right: ColId(3),
        };
        let nl = nested_loop_join(&s, &f, &eq);
        let hj = hash_join(&s, &f, ColId(1), ColId(1), &Pred::True);
        assert_eq!(nl.len(), hj.len());
        let mut nl_rows: Vec<String> = nl.iter().map(|t| t.to_string()).collect();
        let mut hj_rows: Vec<String> = hj.iter().map(|t| t.to_string()).collect();
        nl_rows.sort();
        hj_rows.sort();
        assert_eq!(nl_rows, hj_rows);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let mut s = student();
        s.push(Tuple::new(vec![Value::str("Ghost"), Value::Null]));
        let mut f = faculty();
        f.push(Tuple::new(vec![Value::str("Phantom"), Value::Null]));
        let hj = hash_join(&s, &f, ColId(1), ColId(1), &Pred::True);
        assert!(hj.iter().all(|t| !t.get(ColId(1)).is_null()));
    }

    #[test]
    fn hash_join_residual() {
        let s = student();
        let f = faculty();
        // same dept AND student name != 'Kao'
        let residual = Pred::Cmp {
            col: ColId(0),
            op: CmpOp::Ne,
            rhs: Value::str("Kao"),
        };
        let hj = hash_join(&s, &f, ColId(1), ColId(1), &residual);
        assert_eq!(hj.len(), 2); // Gravano-Garcia, Pham-Dayal
    }

    #[test]
    fn semi_join_reduces() {
        let s = student();
        let f = faculty();
        let sj = semi_join(&s, &f, s.col("dept"), f.col("dept"));
        assert_eq!(sj.len(), 3, "all students have a same-dept faculty");
        let mut tiny = Table::new(
            "one",
            RelSchema::from_columns(vec![("dept", ValueType::Str)]),
        );
        tiny.push(tuple!["CS"]);
        let sj = semi_join(&s, &tiny, s.col("dept"), ColId(0));
        assert_eq!(sj.len(), 2);
        assert_eq!(sj.schema(), s.schema(), "semi-join keeps left schema");
    }

    #[test]
    fn empty_side_joins() {
        let s = student();
        let empty = Table::new("empty", s.schema().clone());
        assert!(nested_loop_join(&empty, &s, &Pred::True).is_empty());
        assert!(hash_join(&s, &empty, ColId(1), ColId(1), &Pred::True).is_empty());
        assert!(semi_join(&s, &empty, ColId(1), ColId(1)).is_empty());
    }
}
