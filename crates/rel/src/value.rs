//! Scalar values.
//!
//! The relational side of the integrated system (the paper's OpenODB role)
//! needs only a small type lattice: variable-length strings (the join
//! columns — names, titles — are all `varchar`), integers (`student.year`),
//! and SQL-style `NULL`.

use std::cmp::Ordering;
use std::fmt;

/// A scalar value stored in a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for grouping/distinct purposes,
    /// but predicate comparisons against NULL are false (SQL three-valued
    /// logic collapsed to two values, which is all conjunctive queries need).
    Null,
    /// A 64-bit integer.
    Int(i64),
    /// A string (`varchar`).
    Str(String),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string contents if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer contents if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// SQL comparison: `None` if either side is NULL or the types are
    /// incomparable; otherwise the ordering.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for sorting and grouping (NULL sorts first,
    /// integers before strings). Unlike [`sql_cmp`](Self::sql_cmp) this is
    /// total, so NULLs group together.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// Integer column.
    Int,
    /// String column.
    Str,
}

impl Value {
    /// Whether the value conforms to `ty` (NULL conforms to every type).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _) | (Value::Int(_), ValueType::Int) | (Value::Str(_), ValueType::Str)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_is_none() {
        assert_eq!(Value::Null.sql_cmp(&Value::int(1)), None);
        assert_eq!(Value::int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::int(1).sql_cmp(&Value::int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("a")),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::str("a").sql_cmp(&Value::int(1)), None);
    }

    #[test]
    fn total_cmp_is_total() {
        let vals = [Value::Null, Value::int(3), Value::str("x")];
        for a in &vals {
            for b in &vals {
                let _ = a.total_cmp(b); // must not panic
            }
            assert_eq!(a.total_cmp(a), Ordering::Equal);
        }
        assert_eq!(Value::Null.total_cmp(&Value::int(0)), Ordering::Less);
        assert_eq!(Value::int(9).total_cmp(&Value::str("")), Ordering::Less);
    }

    #[test]
    fn conversions_and_accessors() {
        let v: Value = "abc".into();
        assert_eq!(v.as_str(), Some("abc"));
        assert_eq!(v.as_int(), None);
        let v: Value = 42i64.into();
        assert_eq!(v.as_int(), Some(42));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn conforms() {
        assert!(Value::int(1).conforms_to(ValueType::Int));
        assert!(!Value::int(1).conforms_to(ValueType::Str));
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Str));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::int(-5).to_string(), "-5");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
    }
}
