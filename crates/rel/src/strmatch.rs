//! SQL-style string matching.
//!
//! The RTP join method (paper, Section 3.2) finishes a foreign join on the
//! relational side using "the string matching functions in SQL". Two
//! functions are provided:
//!
//! * [`like`] — SQL `LIKE` with `%` and `_` wildcards, the primitive the
//!   paper calls SQL's "primitive string matching operations";
//! * [`contains_term`] — word-boundary phrase containment with the *same
//!   normalization as the text system's indexer*. The paper stresses that
//!   relational processing of text predicates needs "consistent semantics"
//!   with the foreign system; matching on normalized word boundaries is what
//!   makes `'smith' in author` computed relationally agree with the text
//!   server's answer.

/// SQL `LIKE`: `%` matches any run (including empty), `_` any single
/// character. Matching is case-sensitive, per standard SQL.
pub fn like(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|k| rec(&s[k..], rest)),
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((&c, rest)) => s.first() == Some(&c) && rec(&s[1..], rest),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Returns `true` if `needle` occurs in `haystack` as a contiguous sequence
/// of whole words, under the text system's normalization (case-folded
/// alphanumeric words). An empty needle never matches.
///
/// ```
/// use textjoin_rel::strmatch::contains_term;
/// assert!(contains_term("Belief Update, revisited", "belief UPDATE"));
/// assert!(!contains_term("Belief-free Updating", "belief update"));
/// assert!(!contains_term("disbelief update", "belief update"));
/// ```
pub fn contains_term(haystack: &str, needle: &str) -> bool {
    let hay = normalize_words(haystack);
    let ned = normalize_words(needle);
    if ned.is_empty() || ned.len() > hay.len() {
        return false;
    }
    hay.windows(ned.len()).any(|w| w == ned.as_slice())
}

fn normalize_words(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_wildcards() {
        assert!(like("Gravano", "Gra%"));
        assert!(like("Gravano", "%van%"));
        assert!(like("Gravano", "G_avano"));
        assert!(!like("Gravano", "gra%")); // case-sensitive
        assert!(like("", "%"));
        assert!(!like("", "_"));
        assert!(like("abc", "abc"));
        assert!(!like("abc", "ab"));
    }

    #[test]
    fn like_adjacent_percents() {
        assert!(like("abc", "%%"));
        assert!(like("abc", "a%%c"));
        assert!(like("ac", "a%c"));
    }

    #[test]
    fn contains_term_word_boundaries() {
        assert!(contains_term("Update of Belief Networks", "belief networks"));
        assert!(!contains_term("Update of Belief Networks", "update networks"));
        assert!(!contains_term("disbelief", "belief"));
        assert!(contains_term("A belief.", "BELIEF"));
    }

    #[test]
    fn contains_term_empty_and_longer() {
        assert!(!contains_term("abc", ""));
        assert!(!contains_term("one", "one two"));
        assert!(contains_term("one two", "one two"));
    }

    #[test]
    fn contains_term_matches_indexer_semantics() {
        // Punctuation-insensitive, like the tokenizer.
        assert!(contains_term("Garcia-Molina, H.", "garcia molina"));
    }
}
