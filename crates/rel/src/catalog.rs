//! A named-table catalog with per-table statistics.

use std::collections::BTreeMap;

use crate::stats::TableStats;
use crate::table::Table;

/// The database: a map of named tables. Statistics are computed lazily and
/// cached per table version (recomputed on replacement).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, (Table, TableStats)>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under its own name, computing its
    /// statistics.
    pub fn register(&mut self, table: Table) {
        let stats = TableStats::compute(&table);
        self.tables.insert(table.name().to_owned(), (table, stats));
    }

    /// The table named `name`.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(|(t, _)| t)
    }

    /// Statistics for the table named `name`.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name).map(|(_, s)| s)
    }

    /// All table names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use crate::tuple;
    use crate::value::ValueType;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        let schema = RelSchema::from_columns(vec![("name", ValueType::Str)]);
        let mut t = Table::new("student", schema);
        t.push(tuple!["Kao"]);
        cat.register(t);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.table("student").unwrap().len(), 1);
        assert_eq!(cat.stats("student").unwrap().rows, 1);
        assert!(cat.table("faculty").is_none());
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["student"]);
    }

    #[test]
    fn replace_recomputes_stats() {
        let mut cat = Catalog::new();
        let schema = RelSchema::from_columns(vec![("name", ValueType::Str)]);
        let t = Table::new("student", schema.clone());
        cat.register(t);
        assert_eq!(cat.stats("student").unwrap().rows, 0);
        let mut t2 = Table::new("student", schema);
        t2.push(tuple!["Kao"]);
        t2.push(tuple!["Pham"]);
        cat.register(t2);
        assert_eq!(cat.stats("student").unwrap().rows, 2);
    }
}
