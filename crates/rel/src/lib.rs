//! # textjoin-rel — a minimal relational engine
//!
//! The relational substrate of the textjoin reproduction: the role OpenODB
//! plays in the paper *"Join Queries with External Text Sources"*
//! (Chaudhuri, Dayal, Yan; SIGMOD 1995). It provides exactly the relational
//! capability the paper's join methods exercise:
//!
//! * typed in-memory [`table::Table`]s over [`schema::RelSchema`]s;
//! * selection / projection / distinct / sort / group operators ([`ops`]);
//! * nested-loop, hash, and semi joins ([`join`]);
//! * SQL string matching ([`strmatch`]) with semantics *consistent* with the
//!   text system's indexer — the prerequisite for the RTP join method;
//! * a [`catalog::Catalog`] with the statistics (`N`, `N_i`) the cost model
//!   consumes ([`stats`]).
//!
//! ```
//! use textjoin_rel::{schema::RelSchema, table::Table, value::ValueType,
//!                    expr::Pred, ops::filter, tuple};
//!
//! let schema = RelSchema::from_columns(vec![
//!     ("name", ValueType::Str), ("year", ValueType::Int)]);
//! let mut student = Table::new("student", schema);
//! student.push(tuple!["Gravano", 4i64]);
//! student.push(tuple!["Kao", 2i64]);
//!
//! let seniors = filter(&student, &Pred::gt(student.col("year"), 3i64));
//! assert_eq!(seniors.len(), 1);
//! ```

pub mod catalog;
pub mod expr;
pub mod join;
pub mod ops;
pub mod schema;
pub mod stats;
pub mod strmatch;
pub mod table;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use expr::{CmpOp, Pred};
pub use schema::{ColId, RelSchema};
pub use table::Table;
pub use tuple::Tuple;
pub use value::{Value, ValueType};
