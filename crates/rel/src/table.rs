//! In-memory tables.

use std::fmt;

use crate::schema::{ColId, RelSchema};
use crate::tuple::Tuple;
use crate::value::Value;

/// A named, schema-ful bag of tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: RelSchema,
    rows: Vec<Tuple>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: RelSchema) -> Self {
        Self {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table (intermediate results get synthesized names).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// Number of rows — the paper's `N` for a joining relation.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity or a value type does not match the schema.
    pub fn push(&mut self, t: Tuple) {
        assert_eq!(
            t.arity(),
            self.schema.len(),
            "tuple arity {} != schema arity {} for table {}",
            t.arity(),
            self.schema.len(),
            self.name
        );
        for (c, def) in self.schema.iter() {
            assert!(
                t.get(c).conforms_to(def.ty),
                "value {} does not conform to column {} of table {}",
                t.get(c),
                def.name,
                self.name
            );
        }
        self.rows.push(t);
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterates over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Column id by name.
    ///
    /// # Panics
    /// Panics if the column does not exist — table construction is
    /// programmer-facing, so a typo should fail loudly.
    pub fn col(&self, name: &str) -> ColId {
        self.schema
            .column_by_name(name)
            .unwrap_or_else(|| panic!("no column {name:?} in table {}", self.name))
    }

    /// All values of one column, in row order.
    pub fn column_values(&self, c: ColId) -> Vec<Value> {
        self.rows.iter().map(|t| t.get(c).clone()).collect()
    }

    /// Replaces the rows wholesale (used by operators that permute rows).
    pub fn with_rows(mut self, rows: Vec<Tuple>) -> Self {
        self.rows = rows;
        self
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} [{} rows]", self.name, self.schema, self.len())?;
        for t in self.rows.iter().take(20) {
            writeln!(f, "  {t}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  ... {} more", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn student() -> Table {
        let schema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("year", ValueType::Int),
        ]);
        let mut t = Table::new("student", schema);
        t.push(tuple!["Gravano", 4i64]);
        t.push(tuple!["Kao", 2i64]);
        t
    }

    #[test]
    fn push_and_len() {
        let t = student();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1].get(t.col("name")).as_str(), Some("Kao"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = student();
        t.push(tuple!["x"]);
    }

    #[test]
    #[should_panic(expected = "conform")]
    fn type_mismatch_panics() {
        let mut t = student();
        t.push(tuple![1i64, 2i64]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        student().col("nope");
    }

    #[test]
    fn null_allowed_any_type() {
        let mut t = student();
        t.push(Tuple::new(vec![Value::Null, Value::Null]));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn column_values_in_order() {
        let t = student();
        let names = t.column_values(t.col("name"));
        assert_eq!(names, vec![Value::str("Gravano"), Value::str("Kao")]);
    }
}
