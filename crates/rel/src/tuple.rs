//! Tuples (rows).

use std::fmt;

use crate::schema::ColId;
use crate::value::Value;

/// A row: values positionally aligned with a [`crate::schema::RelSchema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The value in column `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn get(&self, c: ColId) -> &Value {
        &self.values[c.0]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Concatenation with another tuple (join output row).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Projection onto `cols` in the given order.
    pub fn project(&self, cols: &[ColId]) -> Tuple {
        Tuple {
            values: cols.iter().map(|&c| self.get(c).clone()).collect(),
        }
    }

    /// The projection used as a grouping/distinct key.
    pub fn key(&self, cols: &[ColId]) -> Vec<Value> {
        cols.iter().map(|&c| self.get(c).clone()).collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Convenience macro-free constructor from heterogeneous literals.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_arity() {
        let t = tuple!["Radhika", "AI", 4i64];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(ColId(0)).as_str(), Some("Radhika"));
        assert_eq!(t.get(ColId(2)).as_int(), Some(4));
    }

    #[test]
    fn concat_and_project() {
        let a = tuple!["x", 1i64];
        let b = tuple!["y"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(ColId(2)).as_str(), Some("y"));
        let p = c.project(&[ColId(2), ColId(0)]);
        assert_eq!(p.values(), &[Value::str("y"), Value::str("x")]);
    }

    #[test]
    fn key_extracts_columns() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.key(&[ColId(1)]), vec![Value::str("b")]);
    }

    #[test]
    fn display() {
        let t = tuple!["a", 7i64];
        assert_eq!(t.to_string(), "['a', 7]");
    }
}
