//! Relation schemas.

use std::fmt;

use crate::value::ValueType;

/// Index of a column within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColId(pub usize);

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the schema).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelSchema {
    columns: Vec<ColumnDef>,
}

impl RelSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn from_columns(cols: Vec<(impl Into<String>, ValueType)>) -> Self {
        let mut s = Self::new();
        for (name, ty) in cols {
            s.add_column(name, ty);
        }
        s
    }

    /// Appends a column and returns its id.
    ///
    /// # Panics
    /// Panics if a column of the same name exists.
    pub fn add_column(&mut self, name: impl Into<String>, ty: ValueType) -> ColId {
        let name = name.into();
        assert!(
            self.column_by_name(&name).is_none(),
            "duplicate column {name:?}"
        );
        let id = ColId(self.columns.len());
        self.columns.push(ColumnDef { name, ty });
        id
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Looks up a column id by name.
    pub fn column_by_name(&self, name: &str) -> Option<ColId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(ColId)
    }

    /// The definition of `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn def(&self, id: ColId) -> &ColumnDef {
        &self.columns[id.0]
    }

    /// Iterates `(ColId, &ColumnDef)`.
    pub fn iter(&self) -> impl Iterator<Item = (ColId, &ColumnDef)> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, c)| (ColId(i), c))
    }

    /// Concatenates two schemas (for join outputs), prefixing clashing
    /// names on the right with `rprefix.`.
    pub fn concat(&self, other: &RelSchema, rprefix: &str) -> RelSchema {
        let mut out = self.clone();
        for (_, c) in other.iter() {
            let name = if out.column_by_name(&c.name).is_some() {
                format!("{rprefix}.{}", c.name)
            } else {
                c.name.clone()
            };
            out.add_column(name, c.ty);
        }
        out
    }

    /// Projects onto `cols`, preserving the given order.
    pub fn project(&self, cols: &[ColId]) -> RelSchema {
        let mut out = RelSchema::new();
        for &c in cols {
            let d = self.def(c);
            out.add_column(d.name.clone(), d.ty);
        }
        out
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{} {}",
                c.name,
                match c.ty {
                    ValueType::Int => "int",
                    ValueType::Str => "varchar",
                }
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student() -> RelSchema {
        RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("area", ValueType::Str),
            ("year", ValueType::Int),
        ])
    }

    #[test]
    fn add_and_lookup() {
        let s = student();
        assert_eq!(s.len(), 3);
        assert_eq!(s.column_by_name("area"), Some(ColId(1)));
        assert_eq!(s.column_by_name("nope"), None);
        assert_eq!(s.def(ColId(2)).ty, ValueType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_name_panics() {
        let mut s = student();
        s.add_column("name", ValueType::Str);
    }

    #[test]
    fn concat_prefixes_clashes() {
        let a = student();
        let b = RelSchema::from_columns(vec![("name", ValueType::Str), ("dept", ValueType::Str)]);
        let j = a.concat(&b, "faculty");
        assert_eq!(j.len(), 5);
        assert!(j.column_by_name("faculty.name").is_some());
        assert!(j.column_by_name("dept").is_some());
    }

    #[test]
    fn project_reorders() {
        let s = student();
        let p = s.project(&[ColId(2), ColId(0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.def(ColId(0)).name, "year");
        assert_eq!(p.def(ColId(1)).name, "name");
    }

    #[test]
    fn display_format() {
        assert_eq!(
            student().to_string(),
            "(name varchar, area varchar, year int)"
        );
    }
}
