//! Unary relational operators.
//!
//! These are plain functions from [`Table`] to [`Table`]; the federated
//! executor composes them. Everything is set-at-a-time and in-memory, which
//! matches the paper's setting (the relational side is never the
//! bottleneck; its reading cost is the same across all join methods and is
//! omitted from the cost formulas).

use std::collections::HashSet;

use crate::expr::Pred;
use crate::schema::ColId;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;

/// σ — rows of `t` satisfying `pred`.
pub fn filter(t: &Table, pred: &Pred) -> Table {
    let rows: Vec<Tuple> = t.iter().filter(|r| pred.eval(r)).cloned().collect();
    Table::new(format!("σ({})", t.name()), t.schema().clone()).with_rows(rows)
}

/// π — projection onto `cols` (bag semantics: duplicates kept).
pub fn project(t: &Table, cols: &[ColId]) -> Table {
    let schema = t.schema().project(cols);
    let rows: Vec<Tuple> = t.iter().map(|r| r.project(cols)).collect();
    Table::new(format!("π({})", t.name()), schema).with_rows(rows)
}

/// Projection with duplicate elimination — the paper's "distinct tuples in
/// the projection of the relational table over the join columns", the
/// quantity `N_J` that tuple substitution and probing are charged for.
pub fn project_distinct(t: &Table, cols: &[ColId]) -> Table {
    let schema = t.schema().project(cols);
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut rows = Vec::new();
    for r in t.iter() {
        let key = r.key(cols);
        if seen.insert(key) {
            rows.push(r.project(cols));
        }
    }
    Table::new(format!("πδ({})", t.name()), schema).with_rows(rows)
}

/// δ — duplicate elimination over whole rows.
pub fn distinct(t: &Table) -> Table {
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut rows = Vec::new();
    for r in t.iter() {
        if seen.insert(r.values().to_vec()) {
            rows.push(r.clone());
        }
    }
    Table::new(format!("δ({})", t.name()), t.schema().clone()).with_rows(rows)
}

/// Sorts rows by `cols` (lexicographically, NULLs first). Stable, so equal
/// keys preserve input order. The P+TS variant for ordered relations
/// (paper, Section 3.3) relies on this grouping.
pub fn sort_by(t: &Table, cols: &[ColId]) -> Table {
    let mut rows = t.rows().to_vec();
    rows.sort_by(|a, b| {
        for &c in cols {
            let o = a.get(c).total_cmp(b.get(c));
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    Table::new(format!("sort({})", t.name()), t.schema().clone()).with_rows(rows)
}

/// Number of distinct values in column `c` — the paper's `N_i`.
pub fn distinct_count(t: &Table, c: ColId) -> usize {
    let mut seen: HashSet<&Value> = HashSet::new();
    for r in t.iter() {
        seen.insert(r.get(c));
    }
    seen.len()
}

/// Number of distinct keys over a column *set* — the paper's `N_J` for a
/// multi-column probe.
pub fn distinct_count_multi(t: &Table, cols: &[ColId]) -> usize {
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for r in t.iter() {
        seen.insert(r.key(cols));
    }
    seen.len()
}

/// Groups row indices by key over `cols`, in first-appearance order.
/// Returns `(key, row indices)` pairs.
pub fn group_by(t: &Table, cols: &[ColId]) -> Vec<(Vec<Value>, Vec<usize>)> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<Value>, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, r) in t.iter().enumerate() {
        let key = r.key(cols);
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        entry.push(i);
    }
    order
        .into_iter()
        .map(|k| {
            let idx = groups.remove(&k).expect("group recorded");
            (k, idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use crate::tuple;
    use crate::value::ValueType;

    fn sample() -> Table {
        let schema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("advisor", ValueType::Str),
            ("year", ValueType::Int),
        ]);
        let mut t = Table::new("student", schema);
        t.push(tuple!["Gravano", "Garcia", 4i64]);
        t.push(tuple!["Kao", "Garcia", 2i64]);
        t.push(tuple!["Pham", "Wiederhold", 4i64]);
        t.push(tuple!["Gravano", "Garcia", 4i64]); // duplicate row
        t
    }

    #[test]
    fn filter_selects() {
        let t = sample();
        let f = filter(&t, &Pred::gt(t.col("year"), 3i64));
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|r| r.get(t.col("year")).as_int() == Some(4)));
    }

    #[test]
    fn project_keeps_duplicates_distinct_drops() {
        let t = sample();
        let adv = t.col("advisor");
        assert_eq!(project(&t, &[adv]).len(), 4);
        let pd = project_distinct(&t, &[adv]);
        assert_eq!(pd.len(), 2);
        assert_eq!(pd.schema().len(), 1);
    }

    #[test]
    fn distinct_whole_rows() {
        let t = sample();
        assert_eq!(distinct(&t).len(), 3);
    }

    #[test]
    fn sort_groups_equal_keys() {
        let t = sample();
        let s = sort_by(&t, &[t.col("advisor")]);
        let advisors: Vec<Option<&str>> = s
            .iter()
            .map(|r| r.get(t.col("advisor")).as_str())
            .collect();
        assert_eq!(
            advisors,
            [Some("Garcia"), Some("Garcia"), Some("Garcia"), Some("Wiederhold")]
        );
    }

    #[test]
    fn distinct_counts() {
        let t = sample();
        assert_eq!(distinct_count(&t, t.col("advisor")), 2);
        assert_eq!(distinct_count(&t, t.col("name")), 3);
        assert_eq!(
            distinct_count_multi(&t, &[t.col("name"), t.col("advisor")]),
            3
        );
    }

    #[test]
    fn group_by_first_appearance_order() {
        let t = sample();
        let groups = group_by(&t, &[t.col("advisor")]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, vec![Value::str("Garcia")]);
        assert_eq!(groups[0].1, vec![0, 1, 3]);
        assert_eq!(groups[1].1, vec![2]);
    }

    #[test]
    fn empty_table_ops() {
        let t = Table::new(
            "empty",
            RelSchema::from_columns(vec![("x", ValueType::Int)]),
        );
        assert!(filter(&t, &Pred::True).is_empty());
        assert!(distinct(&t).is_empty());
        assert_eq!(distinct_count(&t, ColId(0)), 0);
        assert!(group_by(&t, &[ColId(0)]).is_empty());
    }
}
