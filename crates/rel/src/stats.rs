//! Table statistics.
//!
//! The paper's cost model needs, per joining relation: the row count `N`
//! and the number of distinct values `N_i` in each (potential probe)
//! column. These are standard catalog statistics; we compute them exactly
//! (real systems would estimate — exactness only sharpens the experiments).

use crate::ops::{distinct_count, distinct_count_multi};
use crate::schema::ColId;
use crate::table::Table;

/// Statistics for one table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Row count `N`.
    pub rows: usize,
    /// Distinct-value count `N_i` per column, indexed by `ColId`.
    pub distinct: Vec<usize>,
}

impl TableStats {
    /// Computes statistics for `t`.
    pub fn compute(t: &Table) -> Self {
        let distinct = (0..t.schema().len())
            .map(|i| distinct_count(t, ColId(i)))
            .collect();
        Self {
            rows: t.len(),
            distinct,
        }
    }

    /// `N_i` for column `c`.
    pub fn distinct_in(&self, c: ColId) -> usize {
        self.distinct[c.0]
    }

    /// The paper's estimate of `N_J` for a multi-column set `J`:
    /// `min(Π N_i, N)` — deliberately an over-estimate so probing is chosen
    /// "only when the default method of tuple substitution is expected to
    /// perform significantly worse" (Section 4.3).
    pub fn estimated_distinct_multi(&self, cols: &[ColId]) -> usize {
        let prod = cols
            .iter()
            .map(|c| self.distinct_in(*c))
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX);
        prod.min(self.rows)
    }

    /// The *exact* `N_J`, for comparison with the estimate (used in tests
    /// and the runtime-optimization extension).
    pub fn exact_distinct_multi(t: &Table, cols: &[ColId]) -> usize {
        distinct_count_multi(t, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use crate::tuple;
    use crate::value::ValueType;

    fn sample() -> Table {
        let schema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("advisor", ValueType::Str),
        ]);
        let mut t = Table::new("student", schema);
        t.push(tuple!["Gravano", "Garcia"]);
        t.push(tuple!["Kao", "Garcia"]);
        t.push(tuple!["Pham", "Wiederhold"]);
        t
    }

    #[test]
    fn compute_counts() {
        let t = sample();
        let s = TableStats::compute(&t);
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct_in(ColId(0)), 3);
        assert_eq!(s.distinct_in(ColId(1)), 2);
    }

    #[test]
    fn multi_column_estimate_capped_by_rows() {
        let t = sample();
        let s = TableStats::compute(&t);
        // Π = 3 × 2 = 6, capped at N = 3.
        assert_eq!(s.estimated_distinct_multi(&[ColId(0), ColId(1)]), 3);
        assert_eq!(s.estimated_distinct_multi(&[ColId(1)]), 2);
        // Estimate over-approximates the exact count.
        let exact = TableStats::exact_distinct_multi(&t, &[ColId(0), ColId(1)]);
        assert_eq!(exact, 3);
        assert!(s.estimated_distinct_multi(&[ColId(0), ColId(1)]) >= exact.min(s.rows));
    }

    #[test]
    fn overflow_safe() {
        let t = sample();
        let mut s = TableStats::compute(&t);
        s.distinct = vec![usize::MAX / 2, usize::MAX / 2];
        assert_eq!(s.estimated_distinct_multi(&[ColId(0), ColId(1)]), s.rows);
    }
}
