//! Row predicates.
//!
//! Predicates are evaluated over a single tuple; join predicates are
//! expressed over the *concatenated* schema of the join's operands, which is
//! how the executor materializes candidate rows.

use std::fmt;

use crate::schema::{ColId, RelSchema};
use crate::strmatch::{contains_term, like};
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match (self, ord) {
            (_, None) => false, // NULL or type mismatch: predicate is false
            (CmpOp::Eq, Some(Equal)) => true,
            (CmpOp::Ne, Some(o)) => o != Equal,
            (CmpOp::Lt, Some(Less)) => true,
            (CmpOp::Le, Some(Less | Equal)) => true,
            (CmpOp::Gt, Some(Greater)) => true,
            (CmpOp::Ge, Some(Greater | Equal)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A Boolean predicate over one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true (the empty conjunction).
    True,
    /// `col <op> literal`.
    Cmp {
        /// Column operand.
        col: ColId,
        /// Operator.
        op: CmpOp,
        /// Literal operand.
        rhs: Value,
    },
    /// `left <op> right` over two columns (join predicates).
    CmpCols {
        /// Left column.
        left: ColId,
        /// Operator.
        op: CmpOp,
        /// Right column.
        right: ColId,
    },
    /// SQL `col LIKE pattern`.
    Like {
        /// Column operand (string).
        col: ColId,
        /// LIKE pattern with `%`/`_`.
        pattern: String,
    },
    /// Term containment: the literal occurs (word-boundary, normalized) in
    /// the column's string — the relational mirror of a text search term.
    ContainsTerm {
        /// Column searched.
        col: ColId,
        /// The term looked for.
        term: String,
    },
    /// Term containment between columns: `needle_col`'s value occurs in
    /// `hay_col`'s string. This is the RTP join predicate
    /// (`student.name in mercury.author` computed relationally).
    ContainsCol {
        /// Column holding the text searched.
        hay_col: ColId,
        /// Column holding the term looked for.
        needle_col: ColId,
    },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `col = literal` shorthand.
    pub fn eq(col: ColId, rhs: impl Into<Value>) -> Self {
        Pred::Cmp {
            col,
            op: CmpOp::Eq,
            rhs: rhs.into(),
        }
    }

    /// `col > literal` shorthand.
    pub fn gt(col: ColId, rhs: impl Into<Value>) -> Self {
        Pred::Cmp {
            col,
            op: CmpOp::Gt,
            rhs: rhs.into(),
        }
    }

    /// Conjunction that flattens and drops `True` children.
    pub fn and(children: Vec<Pred>) -> Self {
        let mut flat = Vec::new();
        for c in children {
            match c {
                Pred::True => {}
                Pred::And(cs) => flat.extend(cs),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Pred::True,
            1 => flat.pop().expect("len checked"),
            _ => Pred::And(flat),
        }
    }

    /// Evaluates over `t`.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp { col, op, rhs } => op.eval(t.get(*col).sql_cmp(rhs)),
            Pred::CmpCols { left, op, right } => op.eval(t.get(*left).sql_cmp(t.get(*right))),
            Pred::Like { col, pattern } => t
                .get(*col)
                .as_str()
                .is_some_and(|s| like(s, pattern)),
            Pred::ContainsTerm { col, term } => t
                .get(*col)
                .as_str()
                .is_some_and(|s| contains_term(s, term)),
            Pred::ContainsCol {
                hay_col,
                needle_col,
            } => match (t.get(*hay_col).as_str(), t.get(*needle_col).as_str()) {
                (Some(h), Some(n)) => contains_term(h, n),
                _ => false,
            },
            Pred::And(cs) => cs.iter().all(|c| c.eval(t)),
            Pred::Or(cs) => cs.iter().any(|c| c.eval(t)),
            Pred::Not(c) => !c.eval(t),
        }
    }

    /// Shifts every column reference by `offset` — used to rebase a
    /// predicate onto the concatenated schema of a join.
    pub fn shift(&self, offset: usize) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::Cmp { col, op, rhs } => Pred::Cmp {
                col: ColId(col.0 + offset),
                op: *op,
                rhs: rhs.clone(),
            },
            Pred::CmpCols { left, op, right } => Pred::CmpCols {
                left: ColId(left.0 + offset),
                op: *op,
                right: ColId(right.0 + offset),
            },
            Pred::Like { col, pattern } => Pred::Like {
                col: ColId(col.0 + offset),
                pattern: pattern.clone(),
            },
            Pred::ContainsTerm { col, term } => Pred::ContainsTerm {
                col: ColId(col.0 + offset),
                term: term.clone(),
            },
            Pred::ContainsCol {
                hay_col,
                needle_col,
            } => Pred::ContainsCol {
                hay_col: ColId(hay_col.0 + offset),
                needle_col: ColId(needle_col.0 + offset),
            },
            Pred::And(cs) => Pred::And(cs.iter().map(|c| c.shift(offset)).collect()),
            Pred::Or(cs) => Pred::Or(cs.iter().map(|c| c.shift(offset)).collect()),
            Pred::Not(c) => Pred::Not(Box::new(c.shift(offset))),
        }
    }

    /// Renders against `schema` for EXPLAIN output.
    pub fn display<'a>(&'a self, schema: &'a RelSchema) -> DisplayPred<'a> {
        DisplayPred { pred: self, schema }
    }
}

/// [`fmt::Display`] helper binding a predicate to its schema.
pub struct DisplayPred<'a> {
    pred: &'a Pred,
    schema: &'a RelSchema,
}

impl fmt::Display for DisplayPred<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pred(self.pred, self.schema, f)
    }
}

fn fmt_pred(p: &Pred, s: &RelSchema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        Pred::True => write!(f, "true"),
        Pred::Cmp { col, op, rhs } => write!(f, "{} {op} {rhs}", s.def(*col).name),
        Pred::CmpCols { left, op, right } => {
            write!(f, "{} {op} {}", s.def(*left).name, s.def(*right).name)
        }
        Pred::Like { col, pattern } => write!(f, "{} like '{pattern}'", s.def(*col).name),
        Pred::ContainsTerm { col, term } => write!(f, "'{term}' in {}", s.def(*col).name),
        Pred::ContainsCol {
            hay_col,
            needle_col,
        } => write!(f, "{} in {}", s.def(*needle_col).name, s.def(*hay_col).name),
        Pred::And(cs) => {
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                fmt_pred(c, s, f)?;
            }
            Ok(())
        }
        Pred::Or(cs) => {
            write!(f, "(")?;
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    write!(f, " or ")?;
                }
                fmt_pred(c, s, f)?;
            }
            write!(f, ")")
        }
        Pred::Not(c) => {
            write!(f, "not (")?;
            fmt_pred(c, s, f)?;
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    #[test]
    fn cmp_literal() {
        let t = tuple!["AI", 4i64];
        assert!(Pred::eq(ColId(0), "AI").eval(&t));
        assert!(Pred::gt(ColId(1), 3i64).eval(&t));
        assert!(!Pred::gt(ColId(1), 4i64).eval(&t));
    }

    #[test]
    fn null_comparisons_false() {
        let t = Tuple::new(vec![Value::Null]);
        assert!(!Pred::eq(ColId(0), "x").eval(&t));
        assert!(!Pred::Cmp {
            col: ColId(0),
            op: CmpOp::Ne,
            rhs: Value::str("x")
        }
        .eval(&t));
    }

    #[test]
    fn cmp_cols_for_joins() {
        // faculty.dept != student.dept over a concatenated row
        let t = tuple!["CS", "EE"];
        let p = Pred::CmpCols {
            left: ColId(0),
            op: CmpOp::Ne,
            right: ColId(1),
        };
        assert!(p.eval(&t));
        let same = tuple!["CS", "CS"];
        assert!(!p.eval(&same));
    }

    #[test]
    fn contains_variants() {
        let t = tuple!["Update of Belief Networks", "belief"];
        assert!(Pred::ContainsTerm {
            col: ColId(0),
            term: "belief networks".into()
        }
        .eval(&t));
        assert!(Pred::ContainsCol {
            hay_col: ColId(0),
            needle_col: ColId(1)
        }
        .eval(&t));
        assert!(Pred::Like {
            col: ColId(0),
            pattern: "%Belief%".into()
        }
        .eval(&t));
    }

    #[test]
    fn boolean_connectives() {
        let t = tuple![1i64];
        let p = Pred::and(vec![Pred::True, Pred::gt(ColId(0), 0i64)]);
        assert!(p.eval(&t));
        assert!(matches!(p, Pred::Cmp { .. }), "True dropped, And collapsed");
        let q = Pred::Or(vec![Pred::eq(ColId(0), 2i64), Pred::eq(ColId(0), 1i64)]);
        assert!(q.eval(&t));
        assert!(!Pred::Not(Box::new(q)).eval(&t));
    }

    #[test]
    fn shift_rebases_columns() {
        let p = Pred::ContainsCol {
            hay_col: ColId(0),
            needle_col: ColId(1),
        };
        let t = tuple!["ignored", "Update of Belief", "belief"];
        assert!(p.shift(1).eval(&t));
    }

    #[test]
    fn display_readable() {
        let mut s = RelSchema::new();
        let name = s.add_column("name", ValueType::Str);
        let year = s.add_column("year", ValueType::Int);
        let p = Pred::and(vec![Pred::eq(name, "Kao"), Pred::gt(year, 3i64)]);
        assert_eq!(p.display(&s).to_string(), "name = 'Kao' and year > 3");
    }
}
