//! Rebalance experiment: what stats-aware routing saves and what online
//! migration costs.
//!
//! Two tables, both fully seeded and byte-identical across runs:
//!
//! 1. **Fan-out** — TS over a 4-shard server with vocabulary-based shard
//!    pruning off vs on. The pruned fan-out column is computed from the
//!    same selection masks the executor folds into
//!    `CostParams::with_scatter_fanout`, so this table and the planner's
//!    `effective_c_i` can never drift (the lockstep rule in
//!    `optimizer/multi.rs::stats_for`).
//! 2. **Amortization** — a full fault-free drain of one shard at several
//!    batch sizes: smaller batches mean finer interruption granularity
//!    but more `c_i` invocations; every charge comes from the dedicated
//!    migration bucket (`migration_usage`), disjoint from query charges.

use textjoin_bench::experiments::{default_world, rebalance_table};
use textjoin_bench::format::table;

fn main() {
    let w = default_world();
    let t = rebalance_table(&w);
    println!(
        "Rebalance — stats-aware routing and online migration over a\n\
         {}-shard server (D = {} documents, seed = {})\n",
        t.n_shards,
        w.server.doc_count(),
        w.spec.seed
    );

    println!("Scatter fan-out, TS per query (routing off vs on; rows asserted equal):\n");
    let fanout_rows: Vec<Vec<String>> = t
        .fanout
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.full.to_string(),
                r.pruned.to_string(),
                format!("{:.1}", r.secs_off),
                format!("{:.1}", r.secs_on),
                format!("{:+.1}", (r.secs_on / r.secs_off - 1.0) * 100.0),
                r.rows.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["Query", "shards", "plan fan-out", "secs off", "secs on", "Δ%", "rows"],
            &fanout_rows,
        )
    );
    println!();
    println!("The plan fan-out folds only the query's selection terms into the");
    println!("vocabulary masks — a sound superset the planner prices through");
    println!("effective_c_i (here every shard may match a lone selection term,");
    println!("so the plan never undercounts). Each *executed* search also");
    println!("carries its join binding and prunes finer; the Δ% column is that");
    println!("per-search pruning, always ≤ what the plan promised.\n");

    println!(
        "Migration amortization — drain shard {} into shard {} (fault-free):\n",
        t.src_shard, t.dst_shard
    );
    let amort_rows: Vec<Vec<String>> = t
        .amortization
        .iter()
        .map(|r| {
            vec![
                r.batch_docs.to_string(),
                r.batches.to_string(),
                r.docs.to_string(),
                r.postings.to_string(),
                r.invocations.to_string(),
                format!("{:.1}", r.total_cost),
                format!("{:.3}", r.cost_per_doc),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["batch", "batches", "docs", "postings", "inv", "cost", "cost/doc"],
            &amort_rows,
        )
    );
    println!();
    println!("Each batch buys a source leg (c_i + c_l per doc) and a");
    println!("destination leg (c_i + c_p per posting); the posting and");
    println!("document totals are batch-size invariant, so the cost/doc");
    println!("column isolates the per-invocation overhead a finer");
    println!("interruption granularity costs.");
}
