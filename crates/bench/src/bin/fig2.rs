//! Reproduces Figure 2: TS vs P+TS winner regions over (s_1, N_1/N).

use textjoin_bench::experiments::fig2;

fn main() {
    let d = 10_000.0;
    let f = fig2(d, 24);
    println!("Figure 2 — winner regions over (s_1, N_1/N), D = {d}\n");
    println!("{}", f.render());
    println!(
        "Agreement with the analytic boundary s_1 < 1 − N_1/N: {:.1}%",
        100.0 * f.boundary_agreement()
    );
    println!("(Paper: each method occupies about half the space, split by that line.)");
}
