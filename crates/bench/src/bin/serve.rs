//! Multi-tenant serving session demo: admission control, deficit-round-
//! robin fairness, overload shedding, per-tenant budgets, and session
//! caches, all on seeded workloads with simulated clocks. Byte-identical
//! across runs.

use textjoin_bench::experiments::{default_world, serve_bench_report};
use textjoin_bench::format;

fn main() {
    let w = default_world();
    let r = serve_bench_report(&w);

    println!(
        "Serve — multi-tenant session over a 4x2 replicated server, shard 2 primary dead\n\
         (D = {} documents, seed = {}; clocks are simulated seconds)\n",
        w.server.doc_count(),
        w.spec.seed
    );
    println!(
        "stream: {} requests | completed {} | rejected {} | shed {} (shed rate {:.1}%) | \
         plan degradations {} | p99 cost {:.2}s | aggregate charge {:.2}s\n",
        r.stream_len,
        r.completed,
        r.rejected,
        r.shed,
        r.shed_rate_ppm as f64 / 10_000.0,
        r.degradations,
        r.p99_cost,
        r.aggregate_cost
    );

    let rows: Vec<Vec<String>> = r
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.name.clone(),
                t.priority.to_string(),
                if t.budget >= 1e9 {
                    "inf".to_owned()
                } else {
                    format!("{:.0}s", t.budget)
                },
                t.admitted.to_string(),
                t.completed.to_string(),
                t.rejected.to_string(),
                t.shed.to_string(),
                t.budget_aborted.to_string(),
                format!("{:.2}", t.spent),
                format!("{:.1}%", t.share_ppm as f64 / 10_000.0),
                format!("{:.2}", t.p99_cost),
                t.probe_hits.to_string(),
                t.plan_hits.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        format::table(
            &[
                "tenant", "prio", "budget", "admit", "done", "rej", "shed", "abort", "spent",
                "share", "p99", "probe+", "plan+",
            ],
            &rows
        )
    );

    let c = &r.cache;
    println!(
        "\nsession caches, {} repeated specs: {:.2}s vs {:.2}s per-execution \
         ({:.1}% saved; {} probe hits, {} plan hits)",
        c.queries,
        c.session_total,
        c.per_exec_total,
        c.saved_ppm as f64 / 10_000.0,
        c.probe_hits,
        c.plan_hits
    );
}
