//! Reproduces the Section 4.1 calibration of the cost constants, then
//! closes the loop the trace-driven way: records the Table-2 and chaos
//! workloads with the flight recorder attached and fits the constants
//! back from the per-event charges by least squares, printing a
//! configured-vs-fitted drift table per workload. Everything is seeded —
//! two invocations print byte-identical output (CI diffs them).

use textjoin_bench::experiments::{
    calibrate, chaos_trace, default_world, drift_table, table2_trace, DriftTable,
};

fn print_drift(name: &str, t: &DriftTable) {
    println!("workload: {name} ({} events)", t.events);
    println!("  component  configured    fitted        drift      obs");
    for r in &t.rows {
        if r.determined {
            println!(
                "  {:<9}  {:<12.6}  {:<12.6}  {:>+7.2}%  {:>5}",
                r.component,
                r.configured,
                r.fitted,
                r.drift * 100.0,
                r.observations
            );
        } else {
            println!(
                "  {:<9}  {:<12.6}  (undetermined: kept configured)",
                r.component, r.configured
            );
        }
    }
    println!("  rms residual: {:.9} s/call", t.rms_residual);
    println!(
        "  effective c_i: configured {:.6} -> fitted {:.6} \
         ({} faults, {:.3} s backoff observed)",
        t.effective_configured, t.effective_fitted, t.faults, t.backoff_seconds
    );
    println!();
}

fn main() {
    let w = default_world();
    let c = calibrate(&w);
    println!("Section 4.1 calibration against the text server:\n");
    println!("  c_i = {:<10} (paper: 3 s/invocation)", c.c_i);
    println!("  c_p = {:<10} (paper: 0.00001 s/posting)", c.c_p);
    println!("  c_s = {:<10} (paper: 0.015 s/short-form doc)", c.c_s);
    println!("  c_l = {:<10} (paper: 4 s/long-form doc)", c.c_l);
    println!();

    println!("Trace-driven re-calibration (least squares over per-event charges):\n");
    let t2 = table2_trace(&w);
    print_drift("table2 (healthy)", &drift_table(&w, &t2));
    let ch = chaos_trace(&w);
    print_drift("chaos (transient rate 0.2)", &drift_table(&w, &ch));
}
