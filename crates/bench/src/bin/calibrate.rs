//! Reproduces the Section 4.1 calibration of the cost constants.

use textjoin_bench::experiments::{calibrate, default_world};

fn main() {
    let w = default_world();
    let c = calibrate(&w);
    println!("Section 4.1 calibration against the text server:\n");
    println!("  c_i = {:<10} (paper: 3 s/invocation)", c.c_i);
    println!("  c_p = {:<10} (paper: 0.00001 s/posting)", c.c_p);
    println!("  c_s = {:<10} (paper: 0.015 s/short-form doc)", c.c_s);
    println!("  c_l = {:<10} (paper: 4 s/long-form doc)", c.c_l);
}
