//! Makespan experiment: concurrent scatter/gather transport with hedged
//! replica reads against a replicated sharded server whose primaries run
//! slow (latency-only faults — they always answer, sometimes late).
//!
//! Every (method × query) cell runs on a fresh seeded virtual-time
//! scheduler under a per-query deadline. Legs on different shards overlap
//! up to the per-shard lane limit; a primary leg that lands above the
//! adaptive budget's latency quantile races a hedge read on the secondary
//! and the loser's charge is rebated. The table compares the serial
//! transport time (every leg issued, cancelled hedges included) against
//! the concurrent makespan, and counts hedges, cancellations, and
//! deadline crossings — none of which ever surface as an error or change
//! a result (asserted).
//!
//! The second section plans and executes Q5 twice: unbounded, then under
//! a deadline derived from the unbounded makespan, showing the executor
//! degrade probing methods TS-style under deadline pressure instead of
//! erroring — same rows, fewer text round-trips on the critical path.

use textjoin_bench::experiments::{deadline_demo, default_world, makespan_table};

fn main() {
    let w = default_world();
    let t = makespan_table(&w);
    println!(
        "Makespan — concurrent transport over Q1–Q4, {} shards × {} replicas,\n\
         each shard's primary on a seeded slow plan (rate {}, latency-only),\n\
         per-query deadline {}s, hedged reads from the adaptive budget's\n\
         latency EWMA, losers cancelled and rebated\n\
         (D = {} documents, seed = {})\n",
        t.n_shards,
        t.n_replicas,
        t.slow_rate,
        t.deadline,
        w.server.doc_count(),
        w.spec.seed
    );
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>7} {:>8} {:>8} {:>6}",
        "method", "serial", "makespan", "speedup", "hedges", "cancels", "dl-miss", "rows"
    );
    for (m, cell) in t.methods.iter().zip(&t.cells) {
        match cell {
            Some(c) => println!(
                "{:<10} {:>9.1}s {:>9.1}s {:>7.2}x {:>7} {:>8} {:>8} {:>6}",
                m,
                c.serial,
                c.makespan,
                c.serial / c.makespan,
                c.hedges,
                c.cancels,
                c.deadline_misses,
                c.rows
            ),
            None => println!("{m:<10} {:>10}", "n/a"),
        }
    }
    println!();
    println!("Every cell returns the fault-free answer (asserted): slow legs");
    println!("and deadline crossings are flagged, hedged, or degraded — never");
    println!("errors. Makespan sits strictly below serial in every cell");
    println!("(asserted): scatter legs overlap across shards.");
    println!();

    let runs = deadline_demo(&w);
    println!("Deadline degradation — Q6 (two chained text joins) planned and");
    println!("executed on the same replicated server, unbounded vs a deadline");
    println!("at 60% of the unbounded makespan:\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>8} {:>6}",
        "run", "total", "serial", "makespan", "degraded", "dl-miss", "rows"
    );
    for r in &runs {
        println!(
            "{:<14} {:>9.1}s {:>9.1}s {:>9.1}s {:>9} {:>8} {:>6}",
            r.label, r.total, r.serial, r.makespan, r.degradations, r.deadline_misses, r.rows
        );
    }
    println!();
    for r in &runs {
        println!("{}:", r.label);
        for line in r.plan.lines() {
            println!("  {line}");
        }
    }
    println!();
    println!("Under pressure the executor skips probe phases and runs probing");
    println!("text joins TS-style: same rows (asserted), no probe round-trips");
    println!("spent on pruning that can no longer pay for itself.");
}
