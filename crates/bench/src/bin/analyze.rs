//! Plan-quality observability report: EXPLAIN ANALYZE on the chosen Q5
//! plan, counterfactual-regret tables over the fault-free, chaos, and
//! multi-join workloads, per-tenant plan-quality columns from a served
//! stream, and both misestimation-detector scenarios (drifted constants
//! vs stale statistics). Everything is seeded and simulated — two
//! invocations print byte-identical output, and CI diffs them.

use textjoin_bench::experiments::{analyze_report, default_world, RegretRow};

fn regret_table(title: &str, rows: &[RegretRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<4} {:>5} {:<22} {:>10} {:<22} {:>10} {:>9} {:>7} {:>7}\n",
        "qry", "cands", "chosen", "actual", "best", "actual", "regret", "share", "cost q"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:>5} {:<22} {:>10.2} {:<22} {:>10.2} {:>9.2} {:>6.1}% {:>7.2}\n",
            r.query,
            r.candidates,
            r.chosen,
            r.chosen_actual,
            r.best,
            r.best_actual,
            r.regret,
            r.regret_share * 100.0,
            r.cost_q
        ));
    }
    out
}

fn main() {
    let w = default_world();
    println!(
        "Plan-quality observability — counterfactual regret and misestimation\n\
         (D = {} documents, seed = {}; all costs are simulated seconds)\n",
        w.server.doc_count(),
        w.spec.seed
    );
    let r = analyze_report(&w);

    println!("== EXPLAIN ANALYZE: chosen Q5 plan (PrL+residuals) ==");
    print!("{}", r.explain);

    println!("\n== counterfactual regret: single joins, fault-free ==");
    print!("{}", regret_table("each candidate replayed on its own charge-free sandbox", &r.fault_free));

    println!("\n== counterfactual regret: single joins, transient faults (rate 0.20, <=2) ==");
    print!("{}", regret_table("same seeded fault plan on every sandbox", &r.chaos));

    println!("\n== counterfactual regret: multi-join text-method grafts ==");
    print!("{}", regret_table("chosen plan vs every text-join method grafted into the same tree", &r.multi));

    println!("\n== per-tenant plan quality (served stream, analyze on) ==");
    println!("{:<8} {:>9} {:>8} {:>8} {:>8}", "tenant", "analyzed", "p50 q", "p90 q", "max q");
    for t in &r.serve {
        println!(
            "{:<8} {:>9} {:>8.2} {:>8.2} {:>8.2}",
            t.tenant, t.analyzed, t.p50_q, t.p90_q, t.max_q
        );
    }

    println!("\n== misestimation detector: server prices drifted 8x ==");
    print!("{}", r.monitor_constants);

    println!("\n== misestimation detector: statistics exported from a stale corpus ==");
    print!("{}", r.monitor_stale);
}
