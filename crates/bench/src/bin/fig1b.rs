//! Reproduces Figure 1(B): Q4 method costs as N_1/N sweeps 0.01 → 1.

use textjoin_bench::experiments::fig1b;
use textjoin_bench::format::series;

fn main() {
    let d = 10_000.0;
    let f = fig1b(d, 20);
    println!("Figure 1(B) — Q4 method costs vs N_1/N (D = {d}, s_1 = 1, g = 1)\n");
    println!("{}", series(f.x_name, &f.xs, &f.series));
    println!("Expected shape: probe-based methods (P1+TS, P1+RTP) rise with");
    println!("N_1/N (more probes, all succeeding); TS unaffected.");
}
