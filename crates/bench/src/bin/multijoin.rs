//! Section 6: Q5 planned and executed in each execution space.

use textjoin_bench::experiments::{default_world, multijoin};

fn main() {
    let w = default_world();
    println!("Q5 across execution spaces (left-deep ⊂ PrL ⊂ PrL+residuals)\n");
    for r in multijoin(&w) {
        println!(
            "{:>14}: est {:>8.1}s  measured {:>8.1}s  probes {}  rows {}",
            r.space, r.est_cost, r.measured, r.probes, r.rows
        );
        for line in r.plan.lines() {
            println!("                 {line}");
        }
    }
}
