//! Reproduces Figure 1(A): Q3 method costs as s_1 sweeps 0 → 1.

use textjoin_bench::experiments::fig1a;
use textjoin_bench::format::series;

fn main() {
    let d = 10_000.0;
    let f = fig1a(d, 20);
    println!("Figure 1(A) — Q3 method costs vs s_1 (D = {d}, cost model, g = 1)\n");
    println!("{}", series(f.x_name, &f.xs, &f.series));
    println!("Expected shape: TS flat; P1+TS rises with s_1 and crosses TS;");
    println!("SJ+RTP constant-ish and competitive at high s_1.");
}
