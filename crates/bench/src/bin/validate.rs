//! Section 7 validation: does the cost model predict the measured winner?

use textjoin_bench::experiments::{default_world, validate};
use textjoin_bench::format::{table, usage_line};

fn main() {
    let w = default_world();
    println!("Model-predicted vs measured optimal method, Q1–Q4\n");
    for v in validate(&w) {
        println!("{}: predicted {} | measured {}", v.query, v.predicted, v.measured);
        println!("    text usage: {}", usage_line(&v.usage.metrics_snapshot()));
        let rows: Vec<Vec<String>> = v
            .detail
            .iter()
            .map(|(m, pred, meas)| {
                vec![m.clone(), format!("{pred:.1}"), format!("{meas:.1}")]
            })
            .collect();
        println!("{}", table(&["method", "predicted (s)", "measured (s)"], &rows));
    }
}
