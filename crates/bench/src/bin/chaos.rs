//! Chaos experiment: cost overhead of each join method under seeded
//! transient fault injection (Unavailable / Timeout / cap renegotiation)
//! with the standard retry policy absorbing the faults.
//!
//! Fault plans are bounded to 2 consecutive faults per operation, below
//! the 4-attempt retry budget, so every run completes with the fault-free
//! answer; the table shows what the robustness costs.
//!
//! With `--sharded`, the same queries run against a 4-shard scatter/gather
//! server whose shards carry independent fault plans, with the adaptive
//! retry budget steering per-shard attempts.
//!
//! With `--replicated`, every shard carries two replicas and one shard's
//! primary replica is permanently dead: every cell exercises failover
//! routing and the per-shard circuit breaker, and still returns the
//! fault-free answer.
//!
//! With `--rebalance`, every cell runs *during* a paced online migration
//! whose source primary dies after the first committed batch: queries
//! race live topology-epoch bumps, transfers drain via the surviving
//! replica, and the journal finishes every move — still returning the
//! fault-free answer.

use textjoin_bench::experiments::{
    chaos_table, default_world, rebalance_chaos_table, replicated_chaos_table,
    sharded_chaos_table,
};
use textjoin_bench::format::chaos_report;

fn main() {
    let sharded = std::env::args().any(|a| a == "--sharded");
    let replicated = std::env::args().any(|a| a == "--replicated");
    let rebalance = std::env::args().any(|a| a == "--rebalance");
    let w = default_world();
    if rebalance {
        let t = rebalance_chaos_table(&w);
        println!(
            "Rebalance chaos — total simulated cost over Q1–Q4 vs per-operation\n\
             fault rate while an online migration drains shard {} into shard {}\n\
             ({} docs in {}-doc batches, paced between query legs), {} shards ×\n\
             {} replicas, source primary dead after batch 1\n\
             (D = {} documents, seed = {}, transient faults, ≤2 consecutive on\n\
             survivors, adaptive retry budget + journal-resume transfers)\n",
            t.src_shard,
            t.dst_shard,
            t.migrated_docs,
            t.batch_docs,
            t.n_shards,
            t.n_replicas,
            w.server.doc_count(),
            w.spec.seed
        );
        print!("{}", chaos_report(&t.methods, &t.rates, &t.cells, &t.fault_cells));
        println!("Every cell returns the fault-free answer (asserted) while rows");
        println!("physically move between shards mid-query: stale gathers re-");
        println!("scatter only the shards a commit touched, source transfer legs");
        println!("drain via the surviving replica once the primary dies, and the");
        println!("journal resumes interrupted batches without re-buying postings");
        println!("— every cell also drains its migration to completion.");
    } else if replicated {
        let t = replicated_chaos_table(&w);
        println!(
            "Replicated chaos — total simulated cost over Q1–Q4 vs per-operation\n\
             fault rate on the surviving replicas, {} shards × {} replicas with\n\
             shard {}'s primary permanently dead\n\
             (D = {} documents, seed = {}, transient faults, ≤2 consecutive on\n\
             survivors, adaptive retry budget + per-shard circuit breaker)\n",
            t.n_shards,
            t.n_replicas,
            t.dead_shard,
            w.server.doc_count(),
            w.spec.seed
        );
        print!("{}", chaos_report(&t.methods, &t.rates, &t.cells, &t.fault_cells));
        println!("Every cell returns the fault-free answer (asserted) even though");
        println!("one replica never answers: gather legs fail over to the");
        println!("surviving replica, and once the per-shard breaker opens the");
        println!("dead primary is skipped entirely (probed on a fixed cadence).");
        println!("The rate-0 column is no longer free — it prices discovering");
        println!("the dead primary before the breaker opens.");
    } else if sharded {
        let t = sharded_chaos_table(&w);
        println!(
            "Sharded chaos — total simulated cost over Q1–Q4 vs per-operation\n\
             fault rate, {} shards with independent fault plans\n\
             (D = {} documents, seed = {}, transient faults, ≤2 consecutive,\n\
             adaptive retry budget over the 4-attempt/1s/2s/4s base policy)\n",
            t.n_shards,
            w.server.doc_count(),
            w.spec.seed
        );
        print!("{}", chaos_report(&t.methods, &t.rates, &t.cells, &t.fault_cells));
        println!("Every cell returns the fault-free answer (asserted). Scatter");
        println!("charges one invocation per shard, so sharded baselines sit");
        println!("above the single-server table; the adaptive budget widens");
        println!("attempts on healthy shards and absorbs the bounded faults.");
    } else {
        let t = chaos_table(&w);
        println!(
            "Chaos — total simulated cost over Q1–Q4 vs per-operation fault rate\n\
             (D = {} documents, seed = {}, transient faults, ≤2 consecutive,\n\
             retry policy: 4 attempts, 1s/2s/4s simulated backoff)\n",
            w.server.doc_count(),
            w.spec.seed
        );
        print!("{}", chaos_report(&t.methods, &t.rates, &t.cells, &t.fault_cells));
        println!("Every cell returns the fault-free answer (asserted); the");
        println!("overhead is retries, simulated backoff, and partially-charged");
        println!("timeouts — never a changed result.");
    }
}
