//! Chaos experiment: cost overhead of each join method under seeded
//! transient fault injection (Unavailable / Timeout / cap renegotiation)
//! with the standard retry policy absorbing the faults.
//!
//! Fault plans are bounded to 2 consecutive faults per operation, below
//! the 4-attempt retry budget, so every run completes with the fault-free
//! answer; the table shows what the robustness costs.
//!
//! With `--sharded`, the same queries run against a 4-shard scatter/gather
//! server whose shards carry independent fault plans, with the adaptive
//! retry budget steering per-shard attempts.

use textjoin_bench::experiments::{chaos_table, default_world, sharded_chaos_table};
use textjoin_bench::format::table;

fn cost_rows(
    methods: &[&'static str],
    rates: &[f64],
    cells: &[Vec<Option<(f64, f64)>>],
) -> (Vec<String>, Vec<Vec<String>>) {
    let mut headers: Vec<String> = vec!["Join Method".into()];
    for &r in rates {
        headers.push(format!("p={r:.2}"));
    }
    for &r in &rates[1..] {
        headers.push(format!("Δ%@{r:.2}"));
    }
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut row = vec![m.to_string()];
            for cell in &cells[mi] {
                row.push(match cell {
                    Some((secs, _)) => format!("{secs:.1}"),
                    None => "-".into(),
                });
            }
            for cell in &cells[mi][1..] {
                row.push(match cell {
                    Some((_, pct)) => format!("+{pct:.1}"),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    (headers, rows)
}

fn fault_rows(
    methods: &[&'static str],
    rates: &[f64],
    fault_cells: &[Vec<Option<(u64, u64)>>],
) -> (Vec<String>, Vec<Vec<String>>) {
    let mut headers: Vec<String> = vec!["Join Method".into()];
    for &r in rates {
        headers.push(format!("flt/rty p={r:.2}"));
    }
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut row = vec![m.to_string()];
            for cell in &fault_cells[mi] {
                row.push(match cell {
                    Some((faults, retries)) => format!("{faults}/{retries}"),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    (headers, rows)
}

fn print_tables(
    methods: &[&'static str],
    rates: &[f64],
    cells: &[Vec<Option<(f64, f64)>>],
    fault_cells: &[Vec<Option<(u64, u64)>>],
) {
    let (headers, rows) = cost_rows(methods, rates, cells);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", table(&header_refs, &rows));
    println!("Injected faults / retries absorbed (summed over Q1–Q4):\n");
    let (fheaders, frows) = fault_rows(methods, rates, fault_cells);
    let fheader_refs: Vec<&str> = fheaders.iter().map(String::as_str).collect();
    println!("{}", table(&fheader_refs, &frows));
}

fn main() {
    let sharded = std::env::args().any(|a| a == "--sharded");
    let w = default_world();
    if sharded {
        let t = sharded_chaos_table(&w);
        println!(
            "Sharded chaos — total simulated cost over Q1–Q4 vs per-operation\n\
             fault rate, {} shards with independent fault plans\n\
             (D = {} documents, seed = {}, transient faults, ≤2 consecutive,\n\
             adaptive retry budget over the 4-attempt/1s/2s/4s base policy)\n",
            t.n_shards,
            w.server.doc_count(),
            w.spec.seed
        );
        print_tables(&t.methods, &t.rates, &t.cells, &t.fault_cells);
        println!("Every cell returns the fault-free answer (asserted). Scatter");
        println!("charges one invocation per shard, so sharded baselines sit");
        println!("above the single-server table; the adaptive budget widens");
        println!("attempts on healthy shards and absorbs the bounded faults.");
    } else {
        let t = chaos_table(&w);
        println!(
            "Chaos — total simulated cost over Q1–Q4 vs per-operation fault rate\n\
             (D = {} documents, seed = {}, transient faults, ≤2 consecutive,\n\
             retry policy: 4 attempts, 1s/2s/4s simulated backoff)\n",
            w.server.doc_count(),
            w.spec.seed
        );
        print_tables(&t.methods, &t.rates, &t.cells, &t.fault_cells);
        println!("Every cell returns the fault-free answer (asserted); the");
        println!("overhead is retries, simulated backoff, and partially-charged");
        println!("timeouts — never a changed result.");
    }
}
