//! Chaos experiment: cost overhead of each join method under seeded
//! transient fault injection (Unavailable / Timeout / cap renegotiation)
//! with the standard retry policy absorbing the faults.
//!
//! Fault plans are bounded to 2 consecutive faults per operation, below
//! the 4-attempt retry budget, so every run completes with the fault-free
//! answer; the table shows what the robustness costs.

use textjoin_bench::experiments::{chaos_table, default_world};
use textjoin_bench::format::table;

fn main() {
    let w = default_world();
    println!(
        "Chaos — total simulated cost over Q1–Q4 vs per-operation fault rate\n\
         (D = {} documents, seed = {}, transient faults, ≤2 consecutive,\n\
         retry policy: 4 attempts, 1s/2s/4s simulated backoff)\n",
        w.server.doc_count(),
        w.spec.seed
    );
    let t = chaos_table(&w);
    let mut headers: Vec<String> = vec!["Join Method".into()];
    for &r in &t.rates {
        headers.push(format!("p={r:.2}"));
    }
    for &r in &t.rates[1..] {
        headers.push(format!("Δ%@{r:.2}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = t
        .methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut row = vec![m.to_string()];
            for cell in &t.cells[mi] {
                row.push(match cell {
                    Some((secs, _)) => format!("{secs:.1}"),
                    None => "-".into(),
                });
            }
            for cell in &t.cells[mi][1..] {
                row.push(match cell {
                    Some((_, pct)) => format!("+{pct:.1}"),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    println!("{}", table(&header_refs, &rows));
    println!("Every cell returns the fault-free answer (asserted); the");
    println!("overhead is retries, simulated backoff, and partially-charged");
    println!("timeouts — never a changed result.");
}
