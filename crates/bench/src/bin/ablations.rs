//! Ablation studies of the design choices DESIGN.md calls out: TS
//! variants, probe schedules, probe-column search strategies, and the
//! runtime fetch guard.

use textjoin_bench::experiments::{ablations, default_world};
use textjoin_bench::format::table;

fn main() {
    let w = default_world();
    for a in ablations(&w) {
        println!("## {}\n", a.name);
        let rows: Vec<Vec<String>> = a
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    format!("{:.1}", r.secs),
                    r.invocations.to_string(),
                    r.rows.to_string(),
                ]
            })
            .collect();
        println!("{}", table(&["variant", "secs", "invocations", "rows"], &rows));
    }
}
