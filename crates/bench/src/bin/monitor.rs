//! Continuous telemetry demo: the windowed monitor consuming the flight
//! recorder live, with all three detectors exercised on seeded workloads.
//!
//! Three sections, all byte-identical across runs:
//!
//! 1. **Skew closed loop** — the paper workload against a server whose
//!    shard 1 replicas fault transiently; the load-skew detector trips on
//!    that shard's invoice share, derives a migration advisory from the
//!    docid traffic it observed, and executing the advisory through the
//!    online migration engine measurably lowers the hot shard's share on
//!    the re-run.
//! 2. **SLO burn rate** — a healthy / degraded (slow primaries under a
//!    deadline) / recovered timeline on one continuous simulated clock;
//!    the dual-window burn rate fires during the sustained degradation
//!    and clears on recovery.
//! 3. **Cost drift** — the watchdog re-fitting the Table-2 trace stays
//!    silent on the faithful recording and flags `c_i` after a simulated
//!    mid-trace repricing.

use textjoin_bench::experiments::{
    default_world, monitor_drift_report, monitor_skew_report, monitor_slo_report,
};

fn main() {
    let w = default_world();
    println!(
        "Monitor — windowed telemetry over the flight-recorder stream\n\
         (D = {} documents, seed = {}; clocks are simulated seconds)\n",
        w.server.doc_count(),
        w.spec.seed
    );

    let skew = monitor_skew_report(&w);
    println!(
        "== Load skew: closed loop over a {}x{} server, shard {} degraded \
         (transient rate {:.2})\n",
        skew.n_shards, skew.n_replicas, skew.hot_shard, skew.fault_rate
    );
    println!("-- phase A: observe (monitor teed into the recorder)\n");
    print!("{}", skew.before.table);
    let shares = |phase: &textjoin_bench::experiments::SkewPhase| {
        phase
            .shares
            .iter()
            .enumerate()
            .map(|(i, s)| format!("s{i}={:.1}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("\nledger shares (whole phase): {}", shares(&skew.before));
    let a = &skew.before.advice[0];
    println!(
        "advice taken: shard{} -> shard{} docs [{},{}) ({} hits), executed in \
         batches of {} ({} docs migrated)\n",
        a.src, a.dst, a.lo, a.hi, a.hits, skew.batch_docs, skew.migrated_docs
    );
    println!("-- phase B: same workload after executing the advice\n");
    print!("{}", skew.after.table);
    println!("\nledger shares (whole phase): {}", shares(&skew.after));
    println!(
        "max shard share: {:.1}% -> {:.1}%\n",
        skew.before.max_share * 100.0,
        skew.after.max_share * 100.0
    );

    let slo = monitor_slo_report(&w);
    println!(
        "== SLO burn rate: healthy / slow-primary episode (rate {:.2}, \
         deadline {:.0}s) / recovery\n",
        slo.slow_rate, slo.deadline
    );
    print!("{}", slo.table);
    println!(
        "\n{} deadline misses and {} hedges over the timeline; alert \
         transitions: {}\n",
        slo.misses,
        slo.hedges,
        slo.transitions
            .iter()
            .map(|(w, f)| format!("w{w}:{}", if *f { "fire" } else { "clear" }))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let drift = monitor_drift_report(&w);
    println!(
        "== Cost drift: watchdog re-fit over the Table-2 trace every 2 \
         windows of {:.0}s\n",
        drift.window_secs
    );
    println!("clean trace: {} drift alerts", drift.clean_alerts);
    println!(
        "after a {:.1}x invocation repricing at the halfway clock:",
        drift.repricing
    );
    for (component, configured, fitted) in &drift.flagged {
        println!("  flagged {component}: configured {configured:.6} fitted {fitted:.6}");
    }
}
