//! Flight-recorder replay: runs P+RTP on a composite-join paper query
//! under seeded transient faults with the recorder attached, then renders
//! the trace as an indented span tree with per-phase cost rollups.
//!
//! Everything is seeded — two invocations print byte-identical trees. The
//! EXPERIMENTS.md observability appendix is regenerated from this binary.

use textjoin_bench::experiments::{default_world, explain_run};
use textjoin_obs::render;

fn main() {
    let w = default_world();
    println!(
        "Trace replay — P+RTP under transient faults (rate 0.20, ≤2 consecutive)\n\
         (D = {} documents, seed = {}; clocks are simulated seconds)\n",
        w.server.doc_count(),
        w.spec.seed
    );
    let events = explain_run(&w);
    print!("{}", render(&events));
}
