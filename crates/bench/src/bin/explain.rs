//! Flight-recorder replay: renders a trace as an indented span tree with
//! per-phase cost rollups, then a deterministic histogram-quantile
//! summary (pow2 bucket midpoints).
//!
//! With a path argument, replays that JSONL trace file. With no path,
//! runs the built-in scenario — P+RTP on a composite-join paper query
//! under seeded transient faults — so CI can diff two invocations.
//! `--windows <secs>` additionally replays the events through the
//! windowed [`Monitor`] and appends its per-window health table (the same
//! rendering the `monitor` binary prints). Everything is seeded — two
//! invocations print byte-identical output. The EXPERIMENTS.md
//! observability appendix is regenerated from this binary.

use textjoin_bench::experiments::{default_world, explain_run};
use textjoin_obs::{parse_jsonl, render, Event, MetricsSnapshot, Monitor, MonitorConfig};

/// The p50/p90/p99 summary `explain` appends below the span tree. The
/// quantiles come from the metrics registry's pow2 histograms replayed
/// from the events — bucket midpoints, so the numbers are deterministic
/// estimates, not exact order statistics.
fn quantile_summary(events: &[Event]) -> String {
    let snap = MetricsSnapshot::from_events(events);
    let mut out = String::from("\nquantiles (pow2 bucket midpoints):\n");
    let mut any = false;
    for key in ["hist.postings", "hist.docs_short"] {
        if let Some((p50, p90, p99)) = snap.quantiles(key) {
            out.push_str(&format!(
                "  {key:<16} p50={p50} p90={p90} p99={p99}\n"
            ));
            any = true;
        }
    }
    if !any {
        out.push_str("  (no histogram observations in this trace)\n");
    }
    out
}

/// The optional `--windows` section: the monitor's per-window health
/// table over the same events the span tree rendered.
fn window_summary(events: &[Event], window_secs: f64) -> String {
    let mon = Monitor::replay(MonitorConfig::new(window_secs), events);
    format!("\n{}", mon.render_table())
}

fn usage() -> ! {
    eprintln!("usage: explain [trace.jsonl] [--windows <secs>]");
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut windows: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--windows" {
            let Some(secs) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                usage();
            };
            if !secs.is_finite() || secs <= 0.0 {
                usage();
            }
            windows = Some(secs);
        } else if path.is_none() {
            path = Some(arg);
        } else {
            usage();
        }
    }

    if let Some(path) = path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("explain: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let events = match parse_jsonl(&text) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("explain: {path}: {e}");
                std::process::exit(1);
            }
        };
        println!("Trace replay — {path}\n");
        print!("{}", render(&events));
        print!("{}", quantile_summary(&events));
        if let Some(secs) = windows {
            print!("{}", window_summary(&events, secs));
        }
        return;
    }

    let w = default_world();
    println!(
        "Trace replay — P+RTP under transient faults (rate 0.20, ≤2 consecutive)\n\
         (D = {} documents, seed = {}; clocks are simulated seconds)\n",
        w.server.doc_count(),
        w.spec.seed
    );
    let events = explain_run(&w);
    print!("{}", render(&events));
    print!("{}", quantile_summary(&events));
    if let Some(secs) = windows {
        print!("{}", window_summary(&events, secs));
    }
}
