//! Flight-recorder replay: renders a trace as an indented span tree with
//! per-phase cost rollups, then a deterministic histogram-quantile
//! summary (pow2 bucket midpoints).
//!
//! With a path argument, replays that JSONL trace file. With no path,
//! runs the built-in scenario — P+RTP on a composite-join paper query
//! under seeded transient faults — so CI can diff two invocations.
//! `--windows <secs>` additionally replays the events through the
//! windowed [`Monitor`] and appends its per-window health table (the same
//! rendering the `monitor` binary prints). `--analyze` appends the
//! EXPLAIN ANALYZE estimated-vs-actual plan tree of the built-in Q5
//! scenario (it needs a live planner/executor pair, so it does not
//! combine with a replayed trace file). Flags may appear in any order;
//! unknown flags print the usage line. Everything is seeded — two
//! invocations print byte-identical output. The EXPERIMENTS.md
//! observability appendix is regenerated from this binary.

use textjoin_bench::experiments::{default_world, explain_analyze, explain_run};
use textjoin_obs::{parse_jsonl, render, Event, MetricsSnapshot, Monitor, MonitorConfig};

/// The p50/p90/p99 summary `explain` appends below the span tree. The
/// quantiles come from the metrics registry's pow2 histograms replayed
/// from the events — bucket midpoints, so the numbers are deterministic
/// estimates, not exact order statistics.
fn quantile_summary(events: &[Event]) -> String {
    let snap = MetricsSnapshot::from_events(events);
    let mut out = String::from("\nquantiles (pow2 bucket midpoints):\n");
    let mut any = false;
    for key in ["hist.postings", "hist.docs_short"] {
        if let Some((p50, p90, p99)) = snap.quantiles(key) {
            out.push_str(&format!(
                "  {key:<16} p50={p50} p90={p90} p99={p99}\n"
            ));
            any = true;
        }
    }
    if !any {
        out.push_str("  (no histogram observations in this trace)\n");
    }
    out
}

/// The optional `--windows` section: the monitor's per-window health
/// table over the same events the span tree rendered.
fn window_summary(events: &[Event], window_secs: f64) -> String {
    let mon = Monitor::replay(MonitorConfig::new(window_secs), events);
    format!("\n{}", mon.render_table())
}

/// Parsed command line. Flags and the positional trace path may appear in
/// any order.
#[derive(Debug, Default, PartialEq)]
struct Cli {
    path: Option<String>,
    windows: Option<f64>,
    analyze: bool,
}

/// Parses the argument list (without the program name). Returns a message
/// for the usage line on any unknown flag, malformed flag value, or extra
/// positional argument.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--windows" => {
                let secs = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or("--windows needs a positive number of seconds")?;
                cli.windows = Some(secs);
            }
            "--analyze" => cli.analyze = true,
            s if s.starts_with('-') => return Err(format!("unknown flag {s}")),
            _ if cli.path.is_none() => cli.path = Some(arg),
            _ => return Err(format!("unexpected extra argument {arg}")),
        }
    }
    if cli.analyze && cli.path.is_some() {
        return Err("--analyze runs the built-in scenario and does not take a trace file".into());
    }
    Ok(cli)
}

fn usage(msg: &str) -> ! {
    eprintln!("explain: {msg}");
    eprintln!("usage: explain [trace.jsonl] [--windows <secs>] [--analyze]");
    std::process::exit(2);
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => usage(&msg),
    };

    if let Some(path) = cli.path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("explain: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let events = match parse_jsonl(&text) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("explain: {path}: {e}");
                std::process::exit(1);
            }
        };
        println!("Trace replay — {path}\n");
        print!("{}", render(&events));
        print!("{}", quantile_summary(&events));
        if let Some(secs) = cli.windows {
            print!("{}", window_summary(&events, secs));
        }
        return;
    }

    let w = default_world();
    println!(
        "Trace replay — P+RTP under transient faults (rate 0.20, ≤2 consecutive)\n\
         (D = {} documents, seed = {}; clocks are simulated seconds)\n",
        w.server.doc_count(),
        w.spec.seed
    );
    let events = explain_run(&w);
    print!("{}", render(&events));
    print!("{}", quantile_summary(&events));
    if let Some(secs) = cli.windows {
        print!("{}", window_summary(&events, secs));
    }
    if cli.analyze {
        println!("\nEXPLAIN ANALYZE — chosen Q5 plan (PrL+residuals):");
        print!("{}", explain_analyze(&w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_parse_in_any_order() {
        let a = parse(&["trace.jsonl", "--windows", "10"]).expect("parses");
        let b = parse(&["--windows", "10", "trace.jsonl"]).expect("parses");
        assert_eq!(a, b);
        assert_eq!(a.path.as_deref(), Some("trace.jsonl"));
        assert_eq!(a.windows, Some(10.0));
        let c = parse(&["--analyze", "--windows", "5"]).expect("parses");
        assert!(c.analyze);
        assert_eq!(c.windows, Some(5.0));
    }

    #[test]
    fn unknown_flags_and_bad_values_are_rejected() {
        assert!(parse(&["--frobnicate"]).is_err(), "unknown flag");
        assert!(parse(&["--windows"]).is_err(), "missing value");
        assert!(parse(&["--windows", "-3"]).is_err(), "negative width");
        assert!(parse(&["--windows", "abc"]).is_err(), "non-numeric width");
        assert!(parse(&["a.jsonl", "b.jsonl"]).is_err(), "two paths");
        assert!(parse(&["a.jsonl", "--analyze"]).is_err(), "analyze needs the built-in run");
    }

    #[test]
    fn empty_args_are_the_builtin_scenario() {
        let cli = parse(&[]).expect("parses");
        assert_eq!(cli, Cli::default());
    }
}
