//! Reproduces Table 2: execution times of each join method on Q1–Q4.

use textjoin_bench::experiments::{default_world, table2};
use textjoin_bench::format::{cost_cell, table};

fn main() {
    let w = default_world();
    println!(
        "Table 2 — execution times (simulated seconds) on the generated world\n\
         (D = {} documents, seed = {})\n",
        w.server.doc_count(),
        w.spec.seed
    );
    let t = table2(&w);
    let headers = ["Join Method", "Q1", "Q2", "Q3", "Q4"];
    let rows: Vec<Vec<String>> = t
        .methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut row = vec![m.to_string()];
            row.extend(t.cells[mi].iter().map(|c| cost_cell(c.secs)));
            row
        })
        .collect();
    println!("{}", table(&headers, &rows));
    println!("Paper's Table 2 (wall-clock seconds on OpenODB–Mercury):");
    println!("  TS      145   52  328  43");
    println!("  RTP       8   91    -   -");
    println!("  SJ+RTP   18    9   97  20");
    println!("  P+TS      -    -   81  52");
    println!("  P+RTP     -    -  118  12");
}
