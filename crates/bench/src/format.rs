//! Plain-text table and series formatting for the experiment binaries.

use textjoin_obs::MetricsSnapshot;

/// Renders an aligned ASCII table. `headers.len()` must equal each row's
/// length.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), ncols, "row arity mismatch");
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push_str(&fmt_row(
        widths.iter().map(|_| "-").collect::<Vec<_>>(),
        &widths,
    ));
    for r in rows {
        out.push_str(&fmt_row(r.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats an optional cost cell: `-` when the method is inapplicable.
pub fn cost_cell(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "-".to_owned(),
    }
}

/// Renders series data (one x column, one column per named series) as an
/// aligned table — the textual equivalent of a figure.
pub fn series(
    x_name: &str,
    xs: &[f64],
    series: &[(&str, Vec<Option<f64>>)],
) -> String {
    let mut headers = vec![x_name];
    headers.extend(series.iter().map(|(n, _)| *n));
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![format!("{x:.3}")];
            row.extend(series.iter().map(|(_, ys)| cost_cell(ys[i])));
            row
        })
        .collect();
    table(&headers, &rows)
}

fn cost_rows(
    methods: &[&'static str],
    rates: &[f64],
    cells: &[Vec<Option<(f64, f64)>>],
) -> (Vec<String>, Vec<Vec<String>>) {
    let mut headers: Vec<String> = vec!["Join Method".into()];
    for &r in rates {
        headers.push(format!("p={r:.2}"));
    }
    for &r in &rates[1..] {
        headers.push(format!("Δ%@{r:.2}"));
    }
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut row = vec![m.to_string()];
            for cell in &cells[mi] {
                row.push(match cell {
                    Some((secs, _)) => format!("{secs:.1}"),
                    None => "-".into(),
                });
            }
            for cell in &cells[mi][1..] {
                row.push(match cell {
                    Some((_, pct)) => format!("+{pct:.1}"),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    (headers, rows)
}

fn fault_rows(
    methods: &[&'static str],
    rates: &[f64],
    fault_cells: &[Vec<Option<(u64, u64)>>],
) -> (Vec<String>, Vec<Vec<String>>) {
    let mut headers: Vec<String> = vec!["Join Method".into()];
    for &r in rates {
        headers.push(format!("flt/rty p={r:.2}"));
    }
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut row = vec![m.to_string()];
            for cell in &fault_cells[mi] {
                row.push(match cell {
                    Some((faults, retries)) => format!("{faults}/{retries}"),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    (headers, rows)
}

/// Renders the chaos report both chaos grids share: the method × rate cost
/// table (with overhead percentages) followed by the fault/retry table.
/// The fault counters come from the same [`MetricsSnapshot`] keys the
/// observability layer exports, so the printed numbers and the trace-side
/// metrics can never drift apart.
pub fn chaos_report(
    methods: &[&'static str],
    rates: &[f64],
    cells: &[Vec<Option<(f64, f64)>>],
    fault_cells: &[Vec<Option<(u64, u64)>>],
) -> String {
    let (headers, rows) = cost_rows(methods, rates, cells);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out = table(&header_refs, &rows);
    out.push('\n');
    out.push_str("Injected faults / retries absorbed (summed over Q1–Q4):\n\n");
    let (fheaders, frows) = fault_rows(methods, rates, fault_cells);
    let fheader_refs: Vec<&str> = fheaders.iter().map(String::as_str).collect();
    out.push_str(&table(&fheader_refs, &frows));
    out.push('\n');
    out
}

/// One-line usage summary fed from a metrics snapshot — the single place
/// that decides which ledger fields a summary prints, so binaries cannot
/// silently drop the robustness columns (faults, retries, backoff).
pub fn usage_line(snap: &MetricsSnapshot) -> String {
    format!(
        "inv {}  post {}  short {}  long {}  faults {}  retries {}  backoff {:.1}s  total {:.1}s",
        snap.counter("usage.invocations"),
        snap.counter("usage.postings"),
        snap.counter("usage.docs_short"),
        snap.counter("usage.docs_long"),
        snap.counter("usage.faults"),
        snap.counter("usage.retries"),
        snap.value("usage.time_backoff"),
        snap.value("usage.total_cost"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["method", "cost"],
            &[
                vec!["TS".into(), "145.0".into()],
                vec!["SJ+RTP".into(), "18.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("TS"));
        assert!(lines[3].contains("SJ+RTP"));
        // Aligned: all lines same length.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_checks_arity() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn cost_cells() {
        assert_eq!(cost_cell(Some(12.34)), "12.3");
        assert_eq!(cost_cell(None), "-");
    }

    #[test]
    fn chaos_report_layout() {
        let methods: Vec<&'static str> = vec!["TS", "P+TS"];
        let rates = vec![0.0, 0.1];
        let cells = vec![
            vec![Some((10.0, 0.0)), Some((12.0, 20.0))],
            vec![None, None],
        ];
        let fault_cells = vec![vec![Some((0, 0)), Some((3, 3))], vec![None, None]];
        let r = chaos_report(&methods, &rates, &cells, &fault_cells);
        assert!(r.contains("p=0.10"));
        assert!(r.contains("+20.0"));
        assert!(r.contains("Injected faults / retries absorbed"));
        assert!(r.contains("3/3"));
        // Inapplicable methods render as dashes in both tables.
        assert!(r.lines().filter(|l| l.trim_start().starts_with("P+TS")).count() == 2);
    }

    #[test]
    fn usage_line_shows_robustness_fields() {
        let mut snap = MetricsSnapshot::default();
        snap.incr("usage.invocations", 7);
        snap.incr("usage.faults", 2);
        snap.incr("usage.retries", 2);
        snap.add_value("usage.time_backoff", 3.0);
        snap.add_value("usage.total_cost", 41.25);
        let line = usage_line(&snap);
        assert_eq!(
            line,
            "inv 7  post 0  short 0  long 0  faults 2  retries 2  backoff 3.0s  total 41.2s"
        );
    }

    #[test]
    fn series_renders() {
        let s = series(
            "s1",
            &[0.0, 0.5],
            &[("TS", vec![Some(1.0), Some(1.0)]), ("P+TS", vec![Some(0.5), None])],
        );
        assert!(s.contains("s1"));
        assert!(s.contains("P+TS"));
        assert!(s.lines().count() == 4);
    }
}
