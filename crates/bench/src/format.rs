//! Plain-text table and series formatting for the experiment binaries.

/// Renders an aligned ASCII table. `headers.len()` must equal each row's
/// length.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), ncols, "row arity mismatch");
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push_str(&fmt_row(
        widths.iter().map(|_| "-").collect::<Vec<_>>(),
        &widths,
    ));
    for r in rows {
        out.push_str(&fmt_row(r.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats an optional cost cell: `-` when the method is inapplicable.
pub fn cost_cell(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "-".to_owned(),
    }
}

/// Renders series data (one x column, one column per named series) as an
/// aligned table — the textual equivalent of a figure.
pub fn series(
    x_name: &str,
    xs: &[f64],
    series: &[(&str, Vec<Option<f64>>)],
) -> String {
    let mut headers = vec![x_name];
    headers.extend(series.iter().map(|(n, _)| *n));
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![format!("{x:.3}")];
            row.extend(series.iter().map(|(_, ys)| cost_cell(ys[i])));
            row
        })
        .collect();
    table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["method", "cost"],
            &[
                vec!["TS".into(), "145.0".into()],
                vec!["SJ+RTP".into(), "18.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("TS"));
        assert!(lines[3].contains("SJ+RTP"));
        // Aligned: all lines same length.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_checks_arity() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn cost_cells() {
        assert_eq!(cost_cell(Some(12.34)), "12.3");
        assert_eq!(cost_cell(None), "-");
    }

    #[test]
    fn series_renders() {
        let s = series(
            "s1",
            &[0.0, 0.5],
            &[("TS", vec![Some(1.0), Some(1.0)]), ("P+TS", vec![Some(0.5), None])],
        );
        assert!(s.contains("s1"));
        assert!(s.contains("P+TS"));
        assert!(s.lines().count() == 4);
    }
}
