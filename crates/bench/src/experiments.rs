//! Experiment runners reproducing the paper's evaluation (Section 7).
//!
//! Each function is deterministic (seeded worlds, simulated costs) and
//! returns structured results; the `src/bin/*` binaries print them in the
//! paper's shape and `EXPERIMENTS.md` records paper-vs-measured.

use textjoin_core::cost::formulas::{cost_p_rtp, cost_p_ts, cost_sj, cost_ts};
use textjoin_core::cost::params::{CostParams, JoinStatistics};
use textjoin_core::exec::execute_single;
use textjoin_core::methods::probe::ProbeSchedule;
use textjoin_core::methods::{ExecContext, MethodError};
use textjoin_core::optimizer::multi::ExecutionSpace;
use textjoin_core::optimizer::single::{
    enumerate_methods, optimal_probe_bounded, MethodCandidate, MethodKind,
};
use textjoin_core::query::{prepare, PreparedQuery, SingleJoinQuery};
use textjoin_workload::knobs;
use textjoin_workload::paper;
use textjoin_workload::world::{World, WorldSpec};

/// The default world for execution experiments — sized so Q1–Q4 behave like
/// the paper's setting (Q3 has ~100 membership rows, a few percent of
/// students publish several reports, etc.).
pub fn default_world() -> World {
    World::generate(WorldSpec::default())
}

/// Cost parameters for a world: the Mercury calibration with the world's
/// document count.
pub fn world_params(w: &World) -> CostParams {
    CostParams::mercury(w.server.doc_count() as f64)
}

// ---------------------------------------------------------------------
// Table 2: execution times for sample queries
// ---------------------------------------------------------------------

/// A single measured cell: method × query.
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// Method label as in the paper (`TS`, `RTP`, `SJ+RTP`, `P+TS`, `P+RTP`).
    pub method: &'static str,
    /// Simulated seconds; `None` if the method is inapplicable to the query.
    pub secs: Option<f64>,
    /// Output rows (all applicable methods must agree).
    pub rows: Option<usize>,
}

/// Table 2: rows = methods, columns = Q1..Q4.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `cells[m][q]` for method `m`, query `q`.
    pub cells: Vec<Vec<MeasuredCell>>,
    /// Method labels in row order.
    pub methods: Vec<&'static str>,
}

fn probe_cols_for(
    params: &CostParams,
    stats: &JoinStatistics,
    f: fn(&CostParams, &JoinStatistics, &[usize]) -> textjoin_core::cost::formulas::CostBreakdown,
) -> Vec<usize> {
    optimal_probe_bounded(params, stats, f)
        .map(|(cols, _)| cols)
        .unwrap_or_else(|| vec![0])
}

/// One measured method run: the simulated cost, the rows emitted, and the
/// usage ledger delta (carrying fault/retry counts for the chaos tables).
#[derive(Debug, Clone, Copy)]
pub struct RunMeasure {
    /// Total simulated seconds (text charges + `c_a` × comparisons).
    pub secs: f64,
    /// Rows emitted.
    pub rows: usize,
    /// Text-service usage delta, including `faults` / `retries`.
    pub text: textjoin_text::server::Usage,
}

/// Runs one method on a prepared query, returning its simulated cost.
pub fn run_method(
    w: &World,
    prepared: &PreparedQuery,
    kind: MethodKind,
    probe_cols: &[usize],
) -> Result<(f64, usize), MethodError> {
    run_method_ctx(&ExecContext::new(&w.server), prepared, kind, probe_cols)
        .map(|m| (m.secs, m.rows))
}

/// Like [`run_method`] but against an explicit service — the chaos benches
/// hand in fresh (possibly sharded) servers carrying fault plans.
pub fn run_method_on(
    server: &dyn textjoin_text::service::TextService,
    prepared: &PreparedQuery,
    kind: MethodKind,
    probe_cols: &[usize],
) -> Result<RunMeasure, MethodError> {
    run_method_ctx(&ExecContext::new(server), prepared, kind, probe_cols)
}

/// Core runner: executes `kind` through an explicit [`ExecContext`] (the
/// sharded chaos bench attaches an adaptive retry budget to it).
pub fn run_method_ctx(
    ctx: &ExecContext<'_>,
    prepared: &PreparedQuery,
    kind: MethodKind,
    probe_cols: &[usize],
) -> Result<RunMeasure, MethodError> {
    let cand = MethodCandidate {
        kind,
        label: String::new(),
        probe_cols: probe_cols.to_vec(),
        cost: Default::default(),
    };
    let out = execute_single(ctx, prepared, &cand, ProbeSchedule::ProbeFirst)?;
    Ok(RunMeasure {
        secs: out.report.total_cost(),
        rows: out.report.output_rows,
        text: out.report.text,
    })
}

/// Reproduces Table 2: executes every applicable method on Q1–Q4 in the
/// integrated system, reporting simulated seconds.
pub fn table2(w: &World) -> Table2 {
    let queries: Vec<SingleJoinQuery> =
        vec![paper::q1(w), paper::q2(w), paper::q3(w), paper::q4(w)];
    let methods: Vec<&'static str> = vec!["TS", "RTP", "SJ/SJ+RTP", "P+TS", "P+RTP"];
    let ts_schema = w.server.collection().schema();
    let params = world_params(w);

    let mut cells: Vec<Vec<MeasuredCell>> = vec![Vec::new(); methods.len()];
    for q in &queries {
        let prepared = prepare(q, &w.catalog, ts_schema).expect("paper query prepares");
        let export = w.server.export_stats();
        let stats = prepared.statistics_from_export(&export, ts_schema);
        let k = stats.k();

        let mut push = |mi: usize, r: Result<(f64, usize), MethodError>| {
            let cell = match r {
                Ok((secs, rows)) => MeasuredCell {
                    method: methods[mi],
                    secs: Some(secs),
                    rows: Some(rows),
                },
                Err(_) => MeasuredCell {
                    method: methods[mi],
                    secs: None,
                    rows: None,
                },
            };
            cells[mi].push(cell);
        };

        push(0, run_method(w, &prepared, MethodKind::Ts, &[]));
        push(1, run_method(w, &prepared, MethodKind::Rtp, &[]));
        push(2, run_method(w, &prepared, MethodKind::Sj, &[]));
        if k >= 2 {
            let pts = probe_cols_for(&params, &stats, cost_p_ts);
            push(3, run_method(w, &prepared, MethodKind::PTs, &pts));
            let prtp = probe_cols_for(&params, &stats, cost_p_rtp);
            push(4, run_method(w, &prepared, MethodKind::PRtp, &prtp));
        } else {
            // The paper reports P-methods only for the multi-predicate
            // queries Q3/Q4.
            push(3, Err(MethodError::NotApplicable("k < 2".into())));
            push(4, Err(MethodError::NotApplicable("k < 2".into())));
        }
    }
    Table2 { cells, methods }
}

// ---------------------------------------------------------------------
// Figures 1(A), 1(B): cost-model sweeps
// ---------------------------------------------------------------------

/// One figure: x values and per-method cost series.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Name of the swept parameter.
    pub x_name: &'static str,
    /// The sweep points.
    pub xs: Vec<f64>,
    /// `(method label, cost at each x)`.
    pub series: Vec<(&'static str, Vec<Option<f64>>)>,
}

fn sweep_methods(params: &CostParams, stats_at: impl Fn(f64) -> JoinStatistics, xs: Vec<f64>, x_name: &'static str) -> Sweep {
    let mut ts = Vec::new();
    let mut sj = Vec::new();
    let mut p1_ts = Vec::new();
    let mut p2_ts = Vec::new();
    let mut p1_rtp = Vec::new();
    for &x in &xs {
        let s = stats_at(x);
        ts.push(Some(cost_ts(params, &s).total()));
        sj.push(cost_sj(params, &s, true).map(|c| c.total()));
        p1_ts.push(Some(cost_p_ts(params, &s, &[0]).total()));
        p2_ts.push(Some(cost_p_ts(params, &s, &[1]).total()));
        p1_rtp.push(Some(cost_p_rtp(params, &s, &[0]).total()));
    }
    Sweep {
        x_name,
        xs,
        series: vec![
            ("TS", ts),
            ("SJ+RTP", sj),
            ("P1+TS", p1_ts),
            ("P2+TS", p2_ts),
            ("P1+RTP", p1_rtp),
        ],
    }
}

/// Figure 1(A): Q3's method costs as `s_1` (the fraction of project names
/// found in titles) sweeps 0 → 1.
pub fn fig1a(d: f64, points: usize) -> Sweep {
    let params = knobs::mercury_params(d);
    let base = knobs::q3_base(d);
    let xs: Vec<f64> = (0..=points).map(|i| i as f64 / points as f64).collect();
    sweep_methods(
        &params,
        |s1| knobs::with_s1(base.clone(), s1),
        xs,
        "s1",
    )
}

/// Figure 1(B): Q4's method costs as `N_1/N` (distinct advisors over
/// relation size) sweeps 0.01 → 1, with `s_1` fixed at 1.
pub fn fig1b(d: f64, points: usize) -> Sweep {
    let params = knobs::mercury_params(d);
    let base = knobs::q4_base(d);
    let xs: Vec<f64> = (0..=points)
        .map(|i| 0.01 + (1.0 - 0.01) * i as f64 / points as f64)
        .collect();
    sweep_methods(
        &params,
        |frac| knobs::with_n1_frac(base.clone(), frac),
        xs,
        "N1/N",
    )
}

// ---------------------------------------------------------------------
// Figure 2: TS vs P+TS winner regions
// ---------------------------------------------------------------------

/// The Figure 2 grid: for each `(s_1, N_1/N)` cell, whether P+TS beats TS,
/// plus the analytic boundary prediction `s_1 < 1 − N_1/N`.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// `s_1` values (rows).
    pub s1s: Vec<f64>,
    /// `N_1/N` values (columns).
    pub fracs: Vec<f64>,
    /// `winner[i][j]` — true when P+TS wins at `(s1s[i], fracs[j])`.
    pub p_ts_wins: Vec<Vec<bool>>,
}

impl Fig2 {
    /// Fraction of grid cells where the winner matches the analytic
    /// approximation `P+TS wins ⇔ s_1 < 1 − N_1/N` (Section 7.2).
    pub fn boundary_agreement(&self) -> f64 {
        let mut agree = 0usize;
        let mut total = 0usize;
        for (i, &s1) in self.s1s.iter().enumerate() {
            for (j, &f) in self.fracs.iter().enumerate() {
                total += 1;
                if self.p_ts_wins[i][j] == (s1 < 1.0 - f) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total.max(1) as f64
    }

    /// ASCII rendering: `P` where P+TS wins, `t` where TS wins.
    pub fn render(&self) -> String {
        let mut out = String::from("rows: s1 (top=1), cols: N1/N (left=0.01)\n");
        for i in (0..self.s1s.len()).rev() {
            for j in 0..self.fracs.len() {
                out.push(if self.p_ts_wins[i][j] { 'P' } else { 't' });
            }
            out.push_str(&format!("  s1={:.2}\n", self.s1s[i]));
        }
        out
    }
}

/// Computes the Figure 2 grid for Q3's base parameters.
pub fn fig2(d: f64, points: usize) -> Fig2 {
    let params = knobs::mercury_params(d);
    let base = knobs::q3_base(d);
    let s1s: Vec<f64> = (0..=points).map(|i| i as f64 / points as f64).collect();
    let fracs: Vec<f64> = (0..=points)
        .map(|i| 0.01 + (1.0 - 0.01) * i as f64 / points as f64)
        .collect();
    let mut p_ts_wins = vec![vec![false; fracs.len()]; s1s.len()];
    for (i, &s1) in s1s.iter().enumerate() {
        for (j, &frac) in fracs.iter().enumerate() {
            let stats = knobs::with_n1_frac(knobs::with_s1(base.clone(), s1), frac);
            let ts = cost_ts(&params, &stats).total();
            let pts = cost_p_ts(&params, &stats, &[0]).total();
            p_ts_wins[i][j] = pts < ts;
        }
    }
    Fig2 {
        s1s,
        fracs,
        p_ts_wins,
    }
}

// ---------------------------------------------------------------------
// Section 7 validation: does the model predict the measured ranking?
// ---------------------------------------------------------------------

/// Validation record for one query: the model's cheapest method and the
/// measured cheapest method.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Query label.
    pub query: &'static str,
    /// Model's choice.
    pub predicted: String,
    /// Measured winner.
    pub measured: String,
    /// Per-method `(label, predicted, measured)`.
    pub detail: Vec<(String, f64, f64)>,
    /// Text-service usage summed over the measured runs. Carries the
    /// robustness fields (faults, retries, backoff) so the summary printed
    /// by the `validate` binary cannot silently drop them.
    pub usage: textjoin_text::server::Usage,
}

/// For Q1–Q4: rank methods by the cost model and by measured simulated
/// execution; report both winners.
pub fn validate(w: &World) -> Vec<Validation> {
    let ts_schema = w.server.collection().schema();
    let params = world_params(w);
    let queries: Vec<(&'static str, SingleJoinQuery)> = vec![
        ("Q1", paper::q1(w)),
        ("Q2", paper::q2(w)),
        ("Q3", paper::q3(w)),
        ("Q4", paper::q4(w)),
    ];
    let mut out = Vec::new();
    for (label, q) in queries {
        let prepared = prepare(&q, &w.catalog, ts_schema).expect("prepares");
        let export = w.server.export_stats();
        let stats = prepared.statistics_from_export(&export, ts_schema);
        let cands = enumerate_methods(&params, &stats, q.projection, false);
        let mut detail = Vec::new();
        let mut usage = textjoin_text::server::Usage::default();
        for c in &cands {
            let ctx = ExecContext::new(&w.server);
            if let Ok(m) = run_method_ctx(&ctx, &prepared, c.kind, &c.probe_cols) {
                detail.push((c.label.clone(), c.cost.total(), m.secs));
                usage.accumulate(&m.text);
            }
        }
        let predicted = detail
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|d| d.0.clone())
            .unwrap_or_default();
        let measured = detail
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
            .map(|d| d.0.clone())
            .unwrap_or_default();
        out.push(Validation {
            query: label,
            predicted,
            measured,
            detail,
            usage,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Section 4.1 calibration
// ---------------------------------------------------------------------

/// Recovered cost constants from micro-measurements against the server.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Recovered invocation cost.
    pub c_i: f64,
    /// Recovered per-posting cost.
    pub c_p: f64,
    /// Recovered short-form transmission cost.
    pub c_s: f64,
    /// Recovered long-form transmission cost.
    pub c_l: f64,
}

/// Re-derives the cost constants the way the paper calibrated the
/// OpenODB–Mercury system: run operations, regress cost on counters.
/// (Our server charges exactly linearly, so recovery is exact — the point
/// is exercising the measurement machinery end to end.)
pub fn calibrate(w: &World) -> Calibration {
    let server = &w.server;
    server.reset_usage();
    // A no-op-ish search: unknown word → zero postings, zero results.
    server
        .search_str("TI='zzzzunknownword'")
        .expect("search ok");
    let u1 = server.usage();
    let c_i = u1.total_cost() / u1.invocations as f64;

    // A search with postings and results.
    server.reset_usage();
    server.search_str("TI='query'").expect("search ok");
    let u2 = server.usage();
    let c_s = if u2.docs_short > 0 {
        (u2.time_transmission) / u2.docs_short as f64
    } else {
        0.0
    };
    let c_p = if u2.postings_processed > 0 {
        u2.time_processing / u2.postings_processed as f64
    } else {
        0.0
    };

    // A long-form retrieval.
    server.reset_usage();
    let ids = server.search_str("TI='query'").expect("search ok").ids();
    let before = server.usage();
    server.retrieve(ids[0]).expect("retrieve ok");
    let delta = server.usage().since(&before);
    let c_l = delta.time_transmission / delta.docs_long as f64;
    server.reset_usage();

    Calibration { c_i, c_p, c_s, c_l }
}

// ---------------------------------------------------------------------
// Section 6 multi-join comparison
// ---------------------------------------------------------------------

/// One execution-space result for Q5.
#[derive(Debug, Clone)]
pub struct SpaceResult {
    /// Space label.
    pub space: &'static str,
    /// Planner's estimate.
    pub est_cost: f64,
    /// Measured simulated cost.
    pub measured: f64,
    /// Probe nodes in the chosen plan.
    pub probes: usize,
    /// Result rows.
    pub rows: usize,
    /// Rendered plan.
    pub plan: String,
}

/// Plans and executes Q5 in each execution space.
pub fn multijoin(w: &World) -> Vec<SpaceResult> {
    let q = paper::q5(w);
    let params = world_params(w);
    let spaces = [
        ("left-deep", ExecutionSpace::LeftDeep),
        ("PrL", ExecutionSpace::Prl),
        ("PrL+residuals", ExecutionSpace::PrlResiduals),
    ];
    let mut out = Vec::new();
    for (label, space) in spaces {
        w.server.reset_usage();
        let (planned, outcome) =
            textjoin_core::exec::plan_and_execute(&q, &w.catalog, &w.server, params, space)
                .expect("q5 plans and executes");
        out.push(SpaceResult {
            space: label,
            est_cost: planned.est_cost,
            measured: outcome.total_cost,
            probes: planned.plan.probe_count(),
            rows: outcome.table.len(),
            plan: planned.plan.display(&q).to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldSpec {
            background_docs: 300,
            students: 60,
            projects: 20,
            ..WorldSpec::default()
        })
    }

    #[test]
    fn table2_shape_and_agreement() {
        let w = small_world();
        let t = table2(&w);
        assert_eq!(t.methods.len(), 5);
        for row in &t.cells {
            assert_eq!(row.len(), 4, "Q1..Q4 columns");
        }
        // All applicable methods agree on output size per query.
        for q in 0..4 {
            let sizes: Vec<usize> = t
                .cells
                .iter()
                .filter_map(|m| m[q].rows)
                .collect();
            assert!(!sizes.is_empty());
            assert!(
                sizes.windows(2).all(|w| w[0] == w[1]),
                "Q{} row counts disagree: {:?}",
                q + 1,
                sizes
            );
        }
        // TS is never the cheapest on Q1 (the selective selection rules).
        let ts_q1 = t.cells[0][0].secs.expect("TS applicable");
        let rtp_q1 = t.cells[1][0].secs.expect("RTP applicable");
        assert!(rtp_q1 < ts_q1, "RTP {rtp_q1} must beat TS {ts_q1} on Q1");
    }

    #[test]
    fn fig1a_ts_flat_and_pts_rising() {
        let f = fig1a(5_000.0, 10);
        let ts = &f.series[0].1;
        let pts = &f.series[2].1;
        // TS does not depend on s1.
        assert!((ts[0].expect("ts") - ts[10].expect("ts")).abs() < 1e-9);
        // P1+TS rises with s1.
        assert!(pts[10].expect("pts") > pts[0].expect("pts"));
        // At s1 = 1 probing is pure overhead: TS beats P1+TS.
        assert!(ts[10].expect("ts") < pts[10].expect("pts"));
        // At s1 = 0 probing wins.
        assert!(pts[0].expect("pts") < ts[0].expect("ts"));
    }

    #[test]
    fn fig1b_probe_methods_rise_with_n1() {
        let f = fig1b(5_000.0, 10);
        let pts = &f.series[2].1;
        let prtp = &f.series[4].1;
        assert!(pts[10].expect("pts") > pts[0].expect("pts"));
        assert!(prtp[10].expect("prtp") > prtp[0].expect("prtp"));
    }

    #[test]
    fn fig2_boundary_matches_analysis() {
        let f = fig2(5_000.0, 12);
        let agreement = f.boundary_agreement();
        assert!(
            agreement > 0.85,
            "winner regions should approximate s1 < 1 - N1/N; got {agreement}"
        );
        // Both regions are non-trivial (paper: "each method constitutes
        // about half of the space").
        let wins: usize = f
            .p_ts_wins
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum();
        let total = f.s1s.len() * f.fracs.len();
        assert!(wins > total / 5 && wins < 4 * total / 5);
    }

    #[test]
    fn validation_model_predicts_measured_winner() {
        // The paper's claim ("our cost formulas correctly predict the
        // optimal method") holds on its data; on an arbitrary generated
        // world the crude g-correlated joint-fanout model can misrank two
        // close methods (the paper itself flags unreliable fanout
        // estimates, Section 5). The robust translation: the measured
        // winner is among the model's top two, and the model's pick costs
        // at most 3× the measured best.
        let w = small_world();
        for v in validate(&w) {
            let mut by_pred = v.detail.clone();
            by_pred.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let top2: Vec<&str> = by_pred.iter().take(2).map(|d| d.0.as_str()).collect();
            assert!(
                top2.contains(&v.measured.as_str()),
                "{}: measured winner {} not in model top-2 {:?}\n{:?}",
                v.query,
                v.measured,
                top2,
                v.detail
            );
            let best_measured = v
                .detail
                .iter()
                .map(|d| d.2)
                .fold(f64::INFINITY, f64::min);
            let picked_measured = v
                .detail
                .iter()
                .find(|d| d.0 == v.predicted)
                .map(|d| d.2)
                .expect("predicted method was executed");
            assert!(
                picked_measured <= 3.0 * best_measured,
                "{}: picked {} measured {:.1}s vs best {:.1}s\n{:?}",
                v.query,
                v.predicted,
                picked_measured,
                best_measured,
                v.detail
            );
        }
    }

    #[test]
    fn calibration_recovers_constants() {
        let w = small_world();
        let c = calibrate(&w);
        let k = w.server.constants();
        assert!((c.c_i - k.c_i).abs() < 1e-9);
        assert!((c.c_p - k.c_p).abs() < 1e-9);
        assert!((c.c_s - k.c_s).abs() < 1e-9);
        assert!((c.c_l - k.c_l).abs() < 1e-9);
    }

    #[test]
    fn multijoin_spaces_ordered() {
        let w = small_world();
        let rs = multijoin(&w);
        assert_eq!(rs.len(), 3);
        // Estimated cost can only improve as the space grows.
        assert!(rs[1].est_cost <= rs[0].est_cost + 1e-9);
        assert!(rs[2].est_cost <= rs[1].est_cost + 1e-9);
        // Same answer everywhere.
        assert!(rs.windows(2).all(|w| w[0].rows == w[1].rows));
    }
}

// ---------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out
// ---------------------------------------------------------------------

/// One ablation measurement: a labeled variant with its simulated cost and
/// text invocations.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob / variant.
    pub variant: String,
    /// Simulated seconds.
    pub secs: f64,
    /// Text-system invocations.
    pub invocations: u64,
    /// Output rows (must be identical within one ablation group).
    pub rows: usize,
}

/// A group of comparable variants.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What is being ablated.
    pub name: &'static str,
    /// The measured variants.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablation suite on a world:
/// 1. TS: naive vs distinct vs batched (§3.1 + §8);
/// 2. probe schedule: probe-first vs lazy vs ordered (§3.3);
/// 3. probe-column search: Theorem 5.3 bounded vs exhaustive (§5);
/// 4. runtime guard: unguarded RTP vs guarded with a tight budget (§5/[CDY]).
pub fn ablations(w: &World) -> Vec<Ablation> {
    use textjoin_core::methods::ts::{tuple_substitution, tuple_substitution_batched};
    use textjoin_core::methods::probe::probe_tuple_substitution;
    use textjoin_core::runtime::{guarded_rtp, GuardVerdict};

    let schema = w.server.collection().schema();
    let params = world_params(w);
    let mut out = Vec::new();

    // 1. TS variants on Q1 (duplicated join keys come from Q3's member
    //    column; Q1's name column is unique per student, so batching is the
    //    interesting saving there).
    {
        let prepared = prepare(&paper::q1(w), &w.catalog, schema).expect("q1 prepares");
        let fj = prepared.foreign_join();
        let mut rows = Vec::new();
        for (label, runner) in [
            ("TS naive", 0usize),
            ("TS distinct", 1),
            ("TS batched(16)", 2),
        ] {
            let ctx = ExecContext::new(&w.server);
            let r = match runner {
                0 => tuple_substitution(&ctx, &fj, false),
                1 => tuple_substitution(&ctx, &fj, true),
                _ => tuple_substitution_batched(&ctx, &fj, 16),
            }
            .expect("TS variant runs");
            rows.push(AblationRow {
                variant: label.into(),
                secs: r.report.total_cost(),
                invocations: r.report.text.invocations,
                rows: r.report.output_rows,
            });
        }
        out.push(Ablation {
            name: "TS variant (Q1)",
            rows,
        });
    }

    // 2. Probe schedules on Q3 (probe on the project-name predicate).
    {
        let prepared = prepare(&paper::q3(w), &w.catalog, schema).expect("q3 prepares");
        let fj = prepared.foreign_join();
        let mut rows = Vec::new();
        for schedule in [
            ProbeSchedule::ProbeFirst,
            ProbeSchedule::Lazy,
            ProbeSchedule::Ordered,
        ] {
            let ctx = ExecContext::new(&w.server);
            let r = probe_tuple_substitution(&ctx, &fj, &[0], schedule)
                .expect("P+TS schedule runs");
            rows.push(AblationRow {
                variant: format!("{schedule:?}"),
                secs: r.report.total_cost(),
                invocations: r.report.text.invocations,
                rows: r.report.output_rows,
            });
        }
        out.push(Ablation {
            name: "P+TS probe schedule (Q3, probe on name)",
            rows,
        });
    }

    // 3. Probe-column search: bounded vs exhaustive plan quality on Q3/Q4.
    {
        let mut rows = Vec::new();
        for (label, q) in [("Q3", paper::q3(w)), ("Q4", paper::q4(w))] {
            let prepared = prepare(&q, &w.catalog, schema).expect("prepares");
            let export = w.server.export_stats();
            let stats = prepared.statistics_from_export(&export, schema);
            let bounded =
                textjoin_core::optimizer::single::optimal_probe_bounded(&params, &stats, cost_p_ts)
                    .expect("k ≥ 1");
            let exhaustive = textjoin_core::optimizer::single::optimal_probe_exhaustive(
                &params, &stats, cost_p_ts,
            )
            .expect("k ≥ 1");
            rows.push(AblationRow {
                variant: format!("{label} bounded {:?}", bounded.0),
                secs: bounded.1.total(),
                invocations: bounded.1.searches as u64,
                rows: 0,
            });
            rows.push(AblationRow {
                variant: format!("{label} exhaustive {:?}", exhaustive.0),
                secs: exhaustive.1.total(),
                invocations: exhaustive.1.searches as u64,
                rows: 0,
            });
        }
        out.push(Ablation {
            name: "probe-column search (estimated P+TS cost)",
            rows,
        });
    }

    // 4. Runtime guard on Q2's RTP (the unselective 'text' selection is
    //    exactly the case where the fetch must be abandoned).
    {
        let prepared = prepare(&paper::q2(w), &w.catalog, schema).expect("q2 prepares");
        let fj = prepared.foreign_join();
        let mut rows = Vec::new();
        let ctx = ExecContext::new(&w.server);
        let unguarded = textjoin_core::methods::rtp::relational_text_processing(&ctx, &fj)
            .expect("RTP runs");
        rows.push(AblationRow {
            variant: "RTP unguarded".into(),
            secs: unguarded.report.total_cost(),
            invocations: unguarded.report.text.invocations,
            rows: unguarded.report.output_rows,
        });
        let ctx = ExecContext::new(&w.server);
        let guarded = guarded_rtp(&ctx, &fj, 25).expect("guarded RTP runs");
        rows.push(AblationRow {
            variant: format!(
                "RTP guarded(budget 25) → {}",
                if guarded.verdict == GuardVerdict::FellBackToTs {
                    "fell back to TS"
                } else {
                    "completed"
                }
            ),
            secs: guarded.outcome.report.total_cost(),
            invocations: guarded.outcome.report.text.invocations,
            rows: guarded.outcome.report.output_rows,
        });
        out.push(Ablation {
            name: "runtime guard (Q2, unselective selection)",
            rows,
        });
    }

    out
}

// ---------------------------------------------------------------------
// Chaos: cost overhead under injected transient faults
// ---------------------------------------------------------------------

/// Chaos experiment result: per method × fault rate, the total simulated
/// cost over the paper queries the method applies to, and its overhead
/// relative to the fault-free column.
#[derive(Debug, Clone)]
pub struct ChaosTable {
    /// Per-operation fault probabilities, first entry 0.0 (the baseline).
    pub rates: Vec<f64>,
    /// Method labels in row order.
    pub methods: Vec<&'static str>,
    /// `cells[m][r]` = `(total_secs, overhead_pct)`; `None` when the
    /// method applies to no query.
    pub cells: Vec<Vec<Option<(f64, f64)>>>,
    /// `fault_cells[m][r]` = `(faults, retries)` summed over the same
    /// queries — the `Usage::faults` counter surfaced alongside the costs.
    pub fault_cells: Vec<Vec<Option<(u64, u64)>>>,
}

/// Per-query preparation shared by the chaos grids: the prepared query and
/// its probe-column choices, taken from fault-free statistics
/// (`export_stats` is free and never faulted).
struct ChaosPrep {
    prepared: PreparedQuery,
    pts: Vec<usize>,
    prtp: Vec<usize>,
    k: usize,
}

fn chaos_preps(w: &World) -> Vec<ChaosPrep> {
    let queries: Vec<SingleJoinQuery> =
        vec![paper::q1(w), paper::q2(w), paper::q3(w), paper::q4(w)];
    let ts_schema = w.server.collection().schema();
    let params = world_params(w);
    queries
        .iter()
        .map(|q| {
            let prepared = prepare(q, &w.catalog, ts_schema).expect("paper query prepares");
            let export = w.server.export_stats();
            let stats = prepared.statistics_from_export(&export, ts_schema);
            let k = stats.k();
            let (pts, prtp) = if k >= 2 {
                (
                    probe_cols_for(&params, &stats, cost_p_ts),
                    probe_cols_for(&params, &stats, cost_p_rtp),
                )
            } else {
                (Vec::new(), Vec::new())
            };
            ChaosPrep { prepared, pts, prtp, k }
        })
        .collect()
}

/// The method × rate × query grid both chaos tables share; the per-cell
/// server construction is supplied by the caller (fresh single server vs
/// fresh sharded server with an adaptive budget). Every rate column is
/// asserted to return the rate-0 answers, and the surfaced fault/retry
/// counters are read back through the [`Usage::metrics_snapshot`] bridge so
/// the printed tables are fed from the same snapshot keys the
/// observability layer exports.
///
/// [`Usage::metrics_snapshot`]: textjoin_text::server::Usage::metrics_snapshot
#[allow(clippy::type_complexity)]
fn chaos_grid(
    preps: &[ChaosPrep],
    rates: &[f64],
    methods: &[&'static str],
    what: &str,
    mut run: impl FnMut(usize, usize, usize, f64, MethodKind, &[usize]) -> Option<RunMeasure>,
) -> (Vec<Vec<Option<(f64, f64)>>>, Vec<Vec<Option<(u64, u64)>>>) {
    let mut cells: Vec<Vec<Option<(f64, f64)>>> = vec![Vec::new(); methods.len()];
    let mut fault_cells: Vec<Vec<Option<(u64, u64)>>> = vec![Vec::new(); methods.len()];
    for mi in 0..methods.len() {
        let mut baseline: Option<f64> = None;
        let mut baseline_rows: Vec<Option<usize>> = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut total = 0.0;
            let mut faults = 0u64;
            let mut retries = 0u64;
            let mut any = false;
            let mut rows_at_rate: Vec<Option<usize>> = Vec::new();
            for (qi, p) in preps.iter().enumerate() {
                let r = match mi {
                    0 => run(qi, mi, ri, rate, MethodKind::Ts, &[]),
                    1 => run(qi, mi, ri, rate, MethodKind::Rtp, &[]),
                    2 => run(qi, mi, ri, rate, MethodKind::Sj, &[]),
                    3 if p.k >= 2 => run(qi, mi, ri, rate, MethodKind::PTs, &p.pts),
                    4 if p.k >= 2 => run(qi, mi, ri, rate, MethodKind::PRtp, &p.prtp),
                    _ => None,
                };
                rows_at_rate.push(r.map(|m| m.rows));
                if let Some(m) = r {
                    let snap = m.text.metrics_snapshot();
                    total += m.secs;
                    faults += snap.counter("usage.faults");
                    retries += snap.counter("usage.retries");
                    any = true;
                }
            }
            if ri == 0 {
                baseline = any.then_some(total);
                baseline_rows = rows_at_rate.clone();
            }
            assert_eq!(
                rows_at_rate, baseline_rows,
                "{what} changed {} answers at rate {rate}",
                methods[mi]
            );
            let cell = match (any, baseline) {
                (true, Some(base)) if base > 0.0 => {
                    Some((total, (total / base - 1.0) * 100.0))
                }
                (true, _) => Some((total, 0.0)),
                _ => None,
            };
            fault_cells[mi].push(cell.is_some().then_some((faults, retries)));
            cells[mi].push(cell);
        }
    }
    (cells, fault_cells)
}

/// Runs every method over Q1–Q4 under seeded transient fault plans of
/// increasing rate. Each cell gets a fresh server (same collection, same
/// constants) so fault state never leaks between cells. Plans are bounded
/// to 2 consecutive faults — under the standard 4-attempt retry policy
/// every operation eventually succeeds, so the injected faults cost money
/// (retries, backoff, partial processing) but never change an answer;
/// this is asserted per cell against the fault-free run.
pub fn chaos_table(w: &World) -> ChaosTable {
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::server::TextServer;

    let rates = vec![0.0, 0.05, 0.1, 0.2];
    let methods: Vec<&'static str> = vec!["TS", "RTP", "SJ/SJ+RTP", "P+TS", "P+RTP"];
    let preps = chaos_preps(w);
    let (cells, fault_cells) = chaos_grid(
        &preps,
        &rates,
        &methods,
        "fault injection",
        |qi, mi, ri, rate, kind, cols| {
            let seed = 0xC0FFEE ^ ((qi as u64) << 16) ^ ((mi as u64) << 8) ^ ri as u64;
            let mut server = TextServer::new(w.server.collection().clone());
            server.set_fault_plan(FaultPlan::transient(seed, rate, 2));
            run_method_on(&server, &preps[qi].prepared, kind, cols).ok()
        },
    );
    ChaosTable { rates, methods, cells, fault_cells }
}

// ---------------------------------------------------------------------
// Sharded chaos: scatter/gather joins with per-shard fault plans
// ---------------------------------------------------------------------

/// Sharded chaos experiment result: like [`ChaosTable`] but every cell
/// runs over a 4-shard [`ShardedTextServer`] whose shards carry
/// *independent* seeded fault plans, with the adaptive [`RetryBudget`]
/// steering per-shard attempts.
///
/// [`ShardedTextServer`]: textjoin_text::shard::ShardedTextServer
/// [`RetryBudget`]: textjoin_core::retry::RetryBudget
#[derive(Debug, Clone)]
pub struct ShardedChaosTable {
    /// Per-operation fault probabilities, first entry 0.0 (the baseline).
    pub rates: Vec<f64>,
    /// Method labels in row order.
    pub methods: Vec<&'static str>,
    /// `cells[m][r]` = `(total_secs, overhead_pct)`.
    pub cells: Vec<Vec<Option<(f64, f64)>>>,
    /// `fault_cells[m][r]` = `(faults, retries)` summed over the queries.
    pub fault_cells: Vec<Vec<Option<(u64, u64)>>>,
    /// Number of shards in every cell's server.
    pub n_shards: usize,
}

/// Runs every method over Q1–Q4 against a 4-shard server whose shards
/// fault independently (per-shard seeded transient plans, bounded to 2
/// consecutive — below every adaptive attempt budget, so all cells return
/// the fault-free answer; asserted against the rate-0 column). Each cell
/// gets a fresh sharded server and a fresh [`RetryBudget`] so adaptive
/// state never leaks between cells.
///
/// [`RetryBudget`]: textjoin_core::retry::RetryBudget
pub fn sharded_chaos_table(w: &World) -> ShardedChaosTable {
    use textjoin_core::retry::{RetryBudget, RetryPolicy};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const PARTITION_SEED: u64 = 0x5AD;

    let rates = vec![0.0, 0.05, 0.1, 0.2];
    let methods: Vec<&'static str> = vec!["TS", "RTP", "SJ/SJ+RTP", "P+TS", "P+RTP"];
    let preps = chaos_preps(w);
    let (cells, fault_cells) = chaos_grid(
        &preps,
        &rates,
        &methods,
        "sharded fault injection",
        |qi, mi, ri, rate, kind, cols| {
            let cell_seed = 0x5EED ^ ((qi as u64) << 16) ^ ((mi as u64) << 8) ^ ri as u64;
            let mut sharded =
                ShardedTextServer::new(w.server.collection(), N_SHARDS, PARTITION_SEED);
            for i in 0..N_SHARDS {
                // Independent per-shard plans: same rate, distinct seeded
                // streams.
                sharded.shard_mut(i).set_fault_plan(FaultPlan::transient(
                    cell_seed ^ ((i as u64) << 24),
                    rate,
                    2,
                ));
            }
            let budget = RetryBudget::new(RetryPolicy::standard());
            let ctx = ExecContext::with_budget(&sharded, &budget);
            run_method_ctx(&ctx, &preps[qi].prepared, kind, cols).ok()
        },
    );
    ShardedChaosTable { rates, methods, cells, fault_cells, n_shards: N_SHARDS }
}

// ---------------------------------------------------------------------
// Replicated chaos: failover routing with a permanently dead primary
// ---------------------------------------------------------------------

/// Replicated chaos experiment result: like [`ShardedChaosTable`] but
/// every cell runs over an `n_shards × n_replicas` replicated server in
/// which one shard's *primary* replica is permanently dead
/// ([`FaultPlan::dead`]) — every cell exercises failover routing and the
/// per-shard circuit breaker, and still returns the fault-free answer.
///
/// [`FaultPlan::dead`]: textjoin_text::faults::FaultPlan::dead
#[derive(Debug, Clone)]
pub struct ReplicatedChaosTable {
    /// Per-operation fault probabilities on the *surviving* replicas,
    /// first entry 0.0 (the baseline — which still pays for discovering
    /// the dead primary until the breaker opens).
    pub rates: Vec<f64>,
    /// Method labels in row order.
    pub methods: Vec<&'static str>,
    /// `cells[m][r]` = `(total_secs, overhead_pct)`.
    pub cells: Vec<Vec<Option<(f64, f64)>>>,
    /// `fault_cells[m][r]` = `(faults, retries)` summed over the queries.
    pub fault_cells: Vec<Vec<Option<(u64, u64)>>>,
    /// Number of logical shards in every cell's server.
    pub n_shards: usize,
    /// Replicas per shard.
    pub n_replicas: usize,
    /// The shard whose primary replica is permanently dead.
    pub dead_shard: usize,
}

/// Runs every method over Q1–Q4 against a 4-shard × 2-replica server in
/// which shard 2's primary faults on *every* operation and the surviving
/// replicas carry independent bounded transient plans. The grid asserts
/// each rate column returns the rate-0 answers, so every cell proves the
/// failover path (primary exhaustion → circuit breaker → secondary leg)
/// preserves the result multiset under persistent single-replica death.
pub fn replicated_chaos_table(w: &World) -> ReplicatedChaosTable {
    use textjoin_core::retry::{RetryBudget, RetryPolicy};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const N_REPLICAS: usize = 2;
    const PARTITION_SEED: u64 = 0x5AD;
    const DEAD_SHARD: usize = 2;

    let rates = vec![0.0, 0.05, 0.1, 0.2];
    let methods: Vec<&'static str> = vec!["TS", "RTP", "SJ/SJ+RTP", "P+TS", "P+RTP"];
    let preps = chaos_preps(w);
    let (cells, fault_cells) = chaos_grid(
        &preps,
        &rates,
        &methods,
        "replicated fault injection",
        |qi, mi, ri, rate, kind, cols| {
            let cell_seed = 0xD0A ^ ((qi as u64) << 16) ^ ((mi as u64) << 8) ^ ri as u64;
            let mut sharded = ShardedTextServer::replicated(
                w.server.collection(),
                N_SHARDS,
                N_REPLICAS,
                PARTITION_SEED,
            );
            let dead_replica = sharded.primary_of(DEAD_SHARD);
            for i in 0..N_SHARDS {
                for r in 0..N_REPLICAS {
                    let plan = if (i, r) == (DEAD_SHARD, dead_replica) {
                        // Permanent death: the primary transiently faults
                        // on every single operation.
                        FaultPlan::dead(cell_seed)
                    } else {
                        FaultPlan::transient(
                            cell_seed ^ ((i as u64) << 24) ^ ((r as u64) << 32),
                            rate,
                            2,
                        )
                    };
                    sharded.replica_mut(i, r).set_fault_plan(plan);
                }
            }
            let budget = RetryBudget::new(RetryPolicy::standard());
            let ctx = ExecContext::with_budget(&sharded, &budget);
            run_method_ctx(&ctx, &preps[qi].prepared, kind, cols).ok()
        },
    );
    ReplicatedChaosTable {
        rates,
        methods,
        cells,
        fault_cells,
        n_shards: N_SHARDS,
        n_replicas: N_REPLICAS,
        dead_shard: DEAD_SHARD,
    }
}

/// Records one P+RTP run under transient faults: the first paper query
/// with a composite join (k ≥ 2) runs against a fresh faulted server with
/// a ring-sink recorder attached, and the recorded trace comes back for
/// the `explain` binary to replay into a span tree. Fully seeded, so the
/// rendered tree is byte-identical across runs.
pub fn explain_run(w: &World) -> Vec<textjoin_obs::Event> {
    use std::rc::Rc;
    use textjoin_obs::{Recorder, RingSink};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::server::TextServer;

    let preps = chaos_preps(w);
    let (qi, p) = preps
        .iter()
        .enumerate()
        .find(|(_, p)| p.k >= 2)
        .expect("a paper query with a composite join");
    let mut server = TextServer::new(w.server.collection().clone());
    server.set_fault_plan(FaultPlan::transient(0xE1A ^ ((qi as u64) << 16), 0.2, 2));
    let sink = Rc::new(RingSink::unbounded());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    run_method_on(&server, &p.prepared, MethodKind::PRtp, &p.prtp).expect("P+RTP runs");
    sink.events()
}

// ---------------------------------------------------------------------
// Trace-driven re-calibration (ISSUE 5 tentpole)
// ---------------------------------------------------------------------

/// Records the Table-2 workload — every applicable method on Q1–Q4
/// against one healthy server — as a single continuous trace. This is the
/// calibration corpus for the fault-free drift table: the server's true
/// prices are the Mercury constants, so fitting them back is a closed
/// loop.
pub fn table2_trace(w: &World) -> Vec<textjoin_obs::Event> {
    use std::rc::Rc;
    use textjoin_obs::{Recorder, RingSink};
    use textjoin_text::server::TextServer;

    let preps = chaos_preps(w);
    let server = TextServer::new(w.server.collection().clone());
    let sink = Rc::new(RingSink::unbounded());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    for p in &preps {
        let _ = run_method_on(&server, &p.prepared, MethodKind::Ts, &[]);
        let _ = run_method_on(&server, &p.prepared, MethodKind::Rtp, &[]);
        let _ = run_method_on(&server, &p.prepared, MethodKind::Sj, &[]);
        if p.k >= 2 {
            let _ = run_method_on(&server, &p.prepared, MethodKind::PTs, &p.pts);
            let _ = run_method_on(&server, &p.prepared, MethodKind::PRtp, &p.prtp);
        }
    }
    sink.events()
}

/// Records the same workload under the chaos bench's seeded transient
/// plan (rate 0.2, ≤2 consecutive). The per-call charges stay exactly
/// linear — faults change *which* calls happen, not their prices — but
/// the trace now carries backoff events, so the fitted fault model
/// (`effective_c_i`) diverges from the configured fault-free one.
pub fn chaos_trace(w: &World) -> Vec<textjoin_obs::Event> {
    use std::rc::Rc;
    use textjoin_obs::{Recorder, RingSink};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::server::TextServer;

    let preps = chaos_preps(w);
    let mut server = TextServer::new(w.server.collection().clone());
    server.set_fault_plan(FaultPlan::transient(0xCA1, 0.2, 2));
    let sink = Rc::new(RingSink::unbounded());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    for p in &preps {
        let _ = run_method_on(&server, &p.prepared, MethodKind::Ts, &[]);
        let _ = run_method_on(&server, &p.prepared, MethodKind::Rtp, &[]);
        let _ = run_method_on(&server, &p.prepared, MethodKind::Sj, &[]);
        if p.k >= 2 {
            let _ = run_method_on(&server, &p.prepared, MethodKind::PTs, &p.pts);
            let _ = run_method_on(&server, &p.prepared, MethodKind::PRtp, &p.prtp);
        }
    }
    sink.events()
}

/// One row of a configured-vs-fitted drift table.
#[derive(Debug, Clone, Copy)]
pub struct DriftRow {
    /// Component name (`c_i`, `c_p`, `c_s`, `c_l`).
    pub component: &'static str,
    /// The configured (Mercury) value the planner would otherwise use.
    pub configured: f64,
    /// The least-squares fit from the trace.
    pub fitted: f64,
    /// Relative drift `(fitted - configured) / configured`.
    pub drift: f64,
    /// Call/rebate observations that entered the fit.
    pub observations: u64,
    /// Whether the workload determined this component at all.
    pub determined: bool,
}

/// The drift table for one recorded workload, plus the observed fault
/// model that replaces the analytic `rate × mean_backoff` fold.
#[derive(Debug, Clone)]
pub struct DriftTable {
    /// Events in the trace the fit consumed.
    pub events: usize,
    /// Per-constant drift rows.
    pub rows: Vec<DriftRow>,
    /// Root-mean-square residual of the fit, seconds per call.
    pub rms_residual: f64,
    /// The configured effective invocation price (fault-free analytic).
    pub effective_configured: f64,
    /// The adopted effective invocation price (fitted `c_i` + observed
    /// backoff seconds per invocation).
    pub effective_fitted: f64,
    /// Faults the trace recorded.
    pub faults: i64,
    /// Backoff seconds the trace paid.
    pub backoff_seconds: f64,
}

/// Fits `events` and compares against the world's configured params —
/// the adoption path the planner uses via `plan_and_execute_with`.
pub fn drift_table(w: &World, events: &[textjoin_obs::Event]) -> DriftTable {
    let params = world_params(w);
    let cal = textjoin_obs::calibrate_trace(events);
    let adopted = params.with_calibration(&cal);
    let rows = [
        ("c_i", params.constants.c_i, &cal.c_i),
        ("c_p", params.constants.c_p, &cal.c_p),
        ("c_s", params.constants.c_s, &cal.c_s),
        ("c_l", params.constants.c_l, &cal.c_l),
    ]
    .into_iter()
    .map(|(component, configured, fit)| DriftRow {
        component,
        configured,
        fitted: if fit.determined { fit.fitted } else { configured },
        drift: adopted.drift(component).unwrap_or(0.0),
        observations: fit.observations,
        determined: fit.determined,
    })
    .collect();
    DriftTable {
        events: events.len(),
        rows,
        rms_residual: cal.rms_residual(),
        effective_configured: params.effective_c_i(),
        effective_fitted: adopted.fitted.effective_c_i(),
        faults: cal.faults,
        backoff_seconds: cal.backoff_seconds,
    }
}

// ---------------------------------------------------------------------
// Makespan: concurrent transport, hedged replica reads, deadlines
// ---------------------------------------------------------------------

/// One method's aggregate over Q1–Q4 in the makespan grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanCell {
    /// Σ issued leg costs — what a serial transport would have taken
    /// (cancelled hedge legs included).
    pub serial: f64,
    /// Σ per-query critical-path times under the concurrency limit.
    pub makespan: f64,
    /// Hedge legs launched against slow-but-alive primaries.
    pub hedges: u64,
    /// Race losers cancelled (their charges rebated).
    pub cancels: u64,
    /// Queries whose critical path crossed the per-query deadline.
    pub deadline_misses: u64,
    /// Output rows summed over the queries (must match fault-free).
    pub rows: usize,
}

/// The makespan grid: every method over Q1–Q4 against a replicated
/// sharded server with one slow replica per shard and a per-query
/// deadline.
#[derive(Debug, Clone)]
pub struct MakespanTable {
    /// Method labels in row order.
    pub methods: Vec<&'static str>,
    /// `cells[m]`, `None` when the method applies to no query.
    pub cells: Vec<Option<MakespanCell>>,
    /// Shards / replicas per shard in every cell's server.
    pub n_shards: usize,
    /// Replicas per shard.
    pub n_replicas: usize,
    /// Per-query deadline (simulated seconds).
    pub deadline: f64,
    /// Per-operation probability of a latency-only `Slow` fault on each
    /// shard's primary replica.
    pub slow_rate: f64,
}

/// Runs every method over Q1–Q4 against a 4-shard × 2-replica server in
/// which each shard's *primary* replica carries a seeded latency-only
/// [`FaultPlan::slow`] plan (it always answers, sometimes late) and each
/// query runs under a per-query deadline on a fresh virtual-time
/// [`Scheduler`]. Slow primary legs above the budget's hedge threshold
/// race a hedge read on the secondary; the loser's charge is rebated.
/// Every cell asserts the fault-free row counts — deadline misses degrade
/// or simply finish late, they never error — and that the concurrent
/// makespan lands strictly below the serial transport time.
///
/// [`FaultPlan::slow`]: textjoin_text::faults::FaultPlan::slow
/// [`Scheduler`]: textjoin_core::sched::Scheduler
pub fn makespan_table(w: &World) -> MakespanTable {
    use textjoin_core::retry::{RetryBudget, RetryPolicy};
    use textjoin_core::sched::{SchedConfig, Scheduler};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const N_REPLICAS: usize = 2;
    const PARTITION_SEED: u64 = 0x5AD;
    const DEADLINE: f64 = 150.0;
    const SLOW_RATE: f64 = 0.25;

    let methods: Vec<&'static str> = vec!["TS", "RTP", "SJ/SJ+RTP", "P+TS", "P+RTP"];
    let kinds = [
        MethodKind::Ts,
        MethodKind::Rtp,
        MethodKind::Sj,
        MethodKind::PTs,
        MethodKind::PRtp,
    ];
    let preps = chaos_preps(w);

    // Fault-free baseline row counts (the oracle the grid must match).
    let baseline: Vec<Vec<Option<usize>>> = kinds
        .iter()
        .map(|&kind| {
            preps
                .iter()
                .map(|p| {
                    let cols = probe_cols_of(p, kind)?;
                    run_method_on(&w.server, &p.prepared, kind, cols)
                        .ok()
                        .map(|m| m.rows)
                })
                .collect()
        })
        .collect();
    w.server.reset_usage();

    let mut cells = Vec::with_capacity(kinds.len());
    for (mi, &kind) in kinds.iter().enumerate() {
        let mut agg = MakespanCell {
            serial: 0.0,
            makespan: 0.0,
            hedges: 0,
            cancels: 0,
            deadline_misses: 0,
            rows: 0,
        };
        let mut any = false;
        for (qi, p) in preps.iter().enumerate() {
            let Some(cols) = probe_cols_of(p, kind) else { continue };
            let Some(base_rows) = baseline[mi][qi] else { continue };
            let mut sharded = ShardedTextServer::replicated(
                w.server.collection(),
                N_SHARDS,
                N_REPLICAS,
                PARTITION_SEED,
            );
            for i in 0..N_SHARDS {
                let pri = sharded.primary_of(i);
                sharded.replica_mut(i, pri).set_fault_plan(FaultPlan::slow(
                    0x510 ^ ((qi as u64) << 16) ^ ((mi as u64) << 8) ^ i as u64,
                    SLOW_RATE,
                ));
            }
            let budget = RetryBudget::new(RetryPolicy::standard());
            let sched = Scheduler::new(SchedConfig::new(0x7E97).with_deadline(DEADLINE));
            let ctx = ExecContext::with_budget(&sharded, &budget).with_transport(&sched);
            let m = run_method_ctx(&ctx, &p.prepared, kind, cols)
                .expect("latency-only faults and deadline misses never error");
            assert_eq!(
                m.rows, base_rows,
                "{} on Q{} changed its answer under slow replicas",
                methods[mi],
                qi + 1
            );
            assert!(
                sched.makespan() < sched.serial_total(),
                "{} on Q{}: scatter/gather makespan must beat serial",
                methods[mi],
                qi + 1
            );
            agg.serial += sched.serial_total();
            agg.makespan += sched.makespan();
            agg.hedges += sched.hedges();
            agg.cancels += sched.cancels();
            agg.deadline_misses += sched.deadline_misses();
            agg.rows += m.rows;
            any = true;
        }
        cells.push(any.then_some(agg));
    }
    MakespanTable {
        methods,
        cells,
        n_shards: N_SHARDS,
        n_replicas: N_REPLICAS,
        deadline: DEADLINE,
        slow_rate: SLOW_RATE,
    }
}

/// The probe columns `kind` needs on `p`, `None` when inapplicable.
fn probe_cols_of(p: &ChaosPrep, kind: MethodKind) -> Option<&[usize]> {
    match kind {
        MethodKind::PTs => (p.k >= 2).then_some(p.pts.as_slice()),
        MethodKind::PRtp => (p.k >= 2).then_some(p.prtp.as_slice()),
        _ => Some(&[]),
    }
}

/// One Q5 execution in the deadline-degradation demo.
#[derive(Debug, Clone)]
pub struct DeadlineRun {
    /// `"unbounded"` or the deadline label.
    pub label: String,
    /// Total charge of the run.
    pub total: f64,
    /// Critical-path transport time.
    pub makespan: f64,
    /// Serial transport time.
    pub serial: f64,
    /// Method downgrades taken under deadline pressure.
    pub degradations: u64,
    /// Whether the critical path crossed the deadline anyway.
    pub deadline_misses: u64,
    /// Output rows (all runs must agree).
    pub rows: usize,
    /// The executed plan, rendered.
    pub plan: String,
}

/// Executes a Q6 plan that chains two text joins — Sj on the project
/// titles first, then a probe pass and a probing text join on the
/// student authors — on a sharded replicated server, unbounded and then
/// under a deadline derived from the unbounded run's makespan: tight
/// enough that the first text join's transport puts the executor under
/// pressure, so the probe node is skipped and the probing join falls
/// back TS-style instead of erroring. Both runs must return the same
/// rows.
pub fn deadline_demo(w: &World) -> Vec<DeadlineRun> {
    use textjoin_core::exec::MultiExecutor;
    use textjoin_core::optimizer::multi::PlannerInput;
    use textjoin_core::optimizer::plan::PlanNode;
    use textjoin_core::sched::{SchedConfig, Scheduler};
    use textjoin_text::service::TextService;
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const N_REPLICAS: usize = 2;
    const PARTITION_SEED: u64 = 0x5AD;

    let q = paper::q6(w);
    let params = world_params(w);
    // Text-join project titles first (Sj, the bulk of the transport),
    // then relationally join the member students, probe the survivors on
    // the author predicate, and settle it with a probing text join. The
    // probe and the P+TS join dispatch *after* the Sj join has spent its
    // transport — exactly where deadline pressure bites.
    let plan = PlanNode::TextJoin {
        input: Some(Box::new(PlanNode::Probe {
            input: Box::new(PlanNode::RelJoin {
                left: Box::new(PlanNode::TextJoin {
                    input: Some(Box::new(PlanNode::Scan { rel: 0 })),
                    preds: vec![0],
                    method: MethodKind::Sj,
                    probe_cols: vec![],
                }),
                right: Box::new(PlanNode::Scan { rel: 1 }),
                preds: vec![0],
                foreign_residuals: vec![],
            }),
            preds: vec![1],
        })),
        preds: vec![1],
        method: MethodKind::PTs,
        probe_cols: vec![0],
    };
    let run = |label: String, deadline: Option<f64>| -> DeadlineRun {
        let sharded = ShardedTextServer::replicated(
            w.server.collection(),
            N_SHARDS,
            N_REPLICAS,
            PARTITION_SEED,
        );
        let export = sharded.export_stats();
        let input = PlannerInput::gather(
            &q,
            &w.catalog,
            &export,
            w.server.collection().schema(),
            params,
        )
        .expect("q6 gathers");
        let sched = Scheduler::new(match deadline {
            Some(d) => SchedConfig::new(0x7E97).with_deadline(d),
            None => SchedConfig::new(0x7E97),
        });
        let mut exec = MultiExecutor::new(&input, &w.catalog, &sharded).expect("q6 executor");
        exec.set_scheduler(&sched);
        let outcome = exec.execute(&plan).expect("q6 executes");
        DeadlineRun {
            label,
            total: outcome.total_cost,
            makespan: outcome.makespan,
            serial: outcome.serial_transport,
            degradations: outcome.degradations,
            deadline_misses: outcome.deadline_misses,
            rows: outcome.table.len(),
            plan: plan.display(&q).to_string(),
        }
    };
    let unbounded = run("unbounded".into(), None);
    // A deadline at 60% of the observed unbounded makespan: the Sj
    // join's transport spends past half the deadline, so the probe pass
    // is skipped and the P+TS join runs TS-style. Derived
    // deterministically from the first run, so the printed table stays
    // byte-identical.
    let deadline = (unbounded.makespan * 0.6).ceil();
    let bounded = run(format!("deadline {deadline:.0}s"), Some(deadline));
    assert_eq!(unbounded.rows, bounded.rows, "degradation changed the answer");
    assert!(
        bounded.degradations > 0,
        "the deadline run must actually degrade"
    );
    vec![unbounded, bounded]
}

// ---------------------------------------------------------------------
// Rebalance chaos: queries racing an online migration whose source dies
// ---------------------------------------------------------------------

/// Rebalance chaos experiment result: like [`ReplicatedChaosTable`] but
/// every cell runs *during* a paced online migration draining shard
/// `src_shard` into `dst_shard`, and the source's primary replica dies
/// permanently after the first committed batch — every remaining source
/// transfer leg must drain via the surviving replica. After each method
/// run the cell drives the migration to completion and asserts the
/// journal finished with every staged document committed (never aborted).
#[derive(Debug, Clone)]
pub struct RebalanceChaosTable {
    /// Per-operation fault probabilities on the surviving replicas,
    /// first entry 0.0 (the baseline — which still pays the dead-primary
    /// transfer faults and the paced migration itself).
    pub rates: Vec<f64>,
    /// Method labels in row order.
    pub methods: Vec<&'static str>,
    /// `cells[m][r]` = `(total_secs, overhead_pct)`.
    pub cells: Vec<Vec<Option<(f64, f64)>>>,
    /// `fault_cells[m][r]` = `(faults, retries)` summed over the queries.
    pub fault_cells: Vec<Vec<Option<(u64, u64)>>>,
    /// Number of logical shards in every cell's server.
    pub n_shards: usize,
    /// Replicas per shard.
    pub n_replicas: usize,
    /// Shard being drained (its primary dies after batch 1).
    pub src_shard: usize,
    /// Shard taking ownership.
    pub dst_shard: usize,
    /// Documents per migration batch.
    pub batch_docs: usize,
    /// Documents each cell's plan stages (identical across cells — same
    /// collection, same partition seed).
    pub migrated_docs: u64,
}

/// Runs every method over Q1–Q4 against a 4-shard × 2-replica server
/// while a paced online migration drains shard 1 into shard 3. The first
/// batch commits cleanly; then shard 1's primary replica faults on
/// *every* operation (`FaultPlan::dead`) and the surviving replicas carry
/// independent bounded transient plans. Queries interleave with transfer
/// batches (`set_migration_pacing`), so every cell exercises the
/// epoch-staleness re-gather, replica-sourced transfer, and the
/// journal-resume path at once — and still returns the rate-0 answers
/// (asserted by the grid). Each cell then drains the migration to
/// completion, asserting exactly-once delivery finished every move.
pub fn rebalance_chaos_table(w: &World) -> RebalanceChaosTable {
    use std::cell::Cell;
    use textjoin_core::retry::{RetryBudget, RetryPolicy};
    use textjoin_text::doc::DocId;
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::rebalance::{MigrationPlan, Move, MoveStatus};
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const N_REPLICAS: usize = 2;
    const PARTITION_SEED: u64 = 0x5AD;
    const SRC_SHARD: usize = 1;
    const DST_SHARD: usize = 3;
    const BATCH_DOCS: usize = 24;

    let rates = vec![0.0, 0.05, 0.1, 0.2];
    let methods: Vec<&'static str> = vec!["TS", "RTP", "SJ/SJ+RTP", "P+TS", "P+RTP"];
    let preps = chaos_preps(w);
    let migrated = Cell::new(0u64);
    let (cells, fault_cells) = chaos_grid(
        &preps,
        &rates,
        &methods,
        "rebalance fault injection",
        |qi, mi, ri, rate, kind, cols| {
            let cell_seed = 0x4EB ^ ((qi as u64) << 16) ^ ((mi as u64) << 8) ^ ri as u64;
            let mut sharded = ShardedTextServer::replicated(
                w.server.collection(),
                N_SHARDS,
                N_REPLICAS,
                PARTITION_SEED,
            );
            let doc_count = w.server.doc_count() as u32;
            let journal = sharded.begin_migration(MigrationPlan::new(
                vec![Move {
                    range: (DocId(0), DocId(doc_count)),
                    src: SRC_SHARD,
                    dst: DST_SHARD,
                }],
                BATCH_DOCS,
            ));
            migrated.set(journal.entries.iter().map(|e| e.docs).sum());
            // Batch 1 commits against healthy replicas; then the source
            // primary dies and the survivors start faulting transiently.
            sharded.migrate_batch().expect("fault-free first batch");
            let dead_replica = sharded.primary_of(SRC_SHARD);
            for i in 0..N_SHARDS {
                for r in 0..N_REPLICAS {
                    let plan = if (i, r) == (SRC_SHARD, dead_replica) {
                        FaultPlan::dead(cell_seed)
                    } else {
                        FaultPlan::transient(
                            cell_seed ^ ((i as u64) << 24) ^ ((r as u64) << 32),
                            rate,
                            2,
                        )
                    };
                    sharded.replica_mut(i, r).set_fault_plan(plan);
                }
            }
            sharded.set_migration_pacing(3);
            let budget = RetryBudget::new(RetryPolicy::standard());
            let ctx = ExecContext::with_budget(&sharded, &budget);
            let out = run_method_ctx(&ctx, &preps[qi].prepared, kind, cols).ok();
            // Drain what the paced interleave left. A transiently refused
            // batch resumes from the journal on the next attempt, so the
            // loop terminates (bounded consecutive faults, finite plan).
            let mut steps = 0u32;
            while !sharded.journal().expect("journal exists").finished() {
                let _ = sharded.migrate_batch();
                steps += 1;
                assert!(steps < 10_000, "migration failed to drain");
            }
            assert!(
                sharded
                    .journal()
                    .expect("journal exists")
                    .entries
                    .iter()
                    .all(|e| e.status == MoveStatus::Done),
                "a move aborted under recoverable faults"
            );
            out
        },
    );
    RebalanceChaosTable {
        rates,
        methods,
        cells,
        fault_cells,
        n_shards: N_SHARDS,
        n_replicas: N_REPLICAS,
        src_shard: SRC_SHARD,
        dst_shard: DST_SHARD,
        batch_docs: BATCH_DOCS,
        migrated_docs: migrated.get(),
    }
}

// ---------------------------------------------------------------------
// Rebalance tables: stats-routing fan-out and migration amortization
// ---------------------------------------------------------------------

/// One fan-out row: TS over a sharded server with stats-aware routing off
/// vs on.
#[derive(Debug, Clone)]
pub struct FanoutRow {
    /// Query label (`Q1`..`Q4`).
    pub label: &'static str,
    /// Scatter fan-out with routing off (always the shard count).
    pub full: usize,
    /// Fan-out after vocabulary pruning (from the same selection masks
    /// the executor folds into `CostParams::with_scatter_fanout`).
    pub pruned: usize,
    /// Simulated seconds with routing off.
    pub secs_off: f64,
    /// Simulated seconds with routing on.
    pub secs_on: f64,
    /// Output rows (asserted identical off vs on).
    pub rows: usize,
}

/// One amortization row: a full drain of the source shard at a given
/// batch size, every charge read from the dedicated migration bucket.
#[derive(Debug, Clone)]
pub struct AmortizationRow {
    /// Documents per batch.
    pub batch_docs: usize,
    /// Committed batches (`ceil(docs / batch_docs)`).
    pub batches: u64,
    /// Documents migrated.
    pub docs: u64,
    /// Postings ingested on the destination leg.
    pub postings: u64,
    /// Transfer invocations (two legs per batch when fault-free).
    pub invocations: u64,
    /// Total migration cost (simulated seconds).
    pub total_cost: f64,
    /// `total_cost / docs`.
    pub cost_per_doc: f64,
}

/// Rebalance experiment result for the `rebalance` binary: the
/// stats-routing fan-out table and the migration amortization grid.
#[derive(Debug, Clone)]
pub struct RebalanceTable {
    /// Per-query fan-out rows.
    pub fanout: Vec<FanoutRow>,
    /// Per-batch-size amortization rows.
    pub amortization: Vec<AmortizationRow>,
    /// Shards in every server.
    pub n_shards: usize,
    /// Shard drained by the amortization grid.
    pub src_shard: usize,
    /// Shard receiving the amortization drain.
    pub dst_shard: usize,
}

/// Measures (a) what vocabulary-based shard pruning saves each paper
/// query's TS run — fan-out N vs pruned, with the pruned fan-out computed
/// from the *same* selection masks the executor folds into
/// [`CostParams::with_scatter_fanout`], so the printed table and the
/// planner's `effective_c_i` can never drift — and (b) how migration
/// batch size trades invocation overhead against interruption granularity
/// on a full fault-free drain of one shard. Fully seeded; byte-identical
/// across runs.
pub fn rebalance_table(w: &World) -> RebalanceTable {
    use textjoin_text::doc::DocId;
    use textjoin_text::expr::SearchExpr;
    use textjoin_text::rebalance::{MigrationPlan, Move};
    use textjoin_text::service::TextService;
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const PARTITION_SEED: u64 = 0x5AD;
    const SRC_SHARD: usize = 1;
    const DST_SHARD: usize = 3;

    let ts_schema = w.server.collection().schema();
    let labels: [&'static str; 4] = ["Q1", "Q2", "Q3", "Q4"];
    let queries: Vec<SingleJoinQuery> =
        vec![paper::q1(w), paper::q2(w), paper::q3(w), paper::q4(w)];
    let mut fanout = Vec::new();
    for (label, q) in labels.iter().zip(&queries) {
        let prepared = prepare(q, &w.catalog, ts_schema).expect("paper query prepares");
        let run = |routing: bool| {
            let sharded =
                ShardedTextServer::new(w.server.collection(), N_SHARDS, PARTITION_SEED);
            sharded.set_stats_routing(routing);
            run_method_on(&sharded, &prepared, MethodKind::Ts, &[]).expect("TS runs")
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.rows, on.rows, "stats routing changed {label} answers");
        // The same mask fold the executor applies (exec.rs): a shard is
        // relevant if any selection term may match there.
        let sharded = ShardedTextServer::new(w.server.collection(), N_SHARDS, PARTITION_SEED);
        sharded.set_stats_routing(true);
        let schema = TextService::schema(&sharded);
        let sel: Vec<SearchExpr> = q
            .selections
            .iter()
            .filter_map(|(term, field)| {
                schema.resolve(field).map(|f| SearchExpr::term_in(term, f))
            })
            .collect();
        let pruned = if sel.is_empty() {
            N_SHARDS
        } else {
            let masks: Vec<Vec<bool>> = sel.iter().map(|e| sharded.relevant_shards(e)).collect();
            (0..N_SHARDS)
                .filter(|&i| masks.iter().any(|m| m[i]))
                .count()
                .max(1)
        };
        fanout.push(FanoutRow {
            label,
            full: N_SHARDS,
            pruned,
            secs_off: off.secs,
            secs_on: on.secs,
            rows: off.rows,
        });
    }

    let mut amortization = Vec::new();
    for &batch in &[4usize, 16, 64] {
        let mut sharded =
            ShardedTextServer::new(w.server.collection(), N_SHARDS, PARTITION_SEED);
        let doc_count = w.server.doc_count() as u32;
        let journal = sharded.begin_migration(MigrationPlan::new(
            vec![Move {
                range: (DocId(0), DocId(doc_count)),
                src: SRC_SHARD,
                dst: DST_SHARD,
            }],
            batch,
        ));
        let docs: u64 = journal.entries.iter().map(|e| e.docs).sum();
        sharded.run_migration().expect("fault-free migration completes");
        let u = sharded.migration_usage();
        amortization.push(AmortizationRow {
            batch_docs: batch,
            batches: docs.div_ceil(batch as u64),
            docs,
            postings: u.postings_processed,
            invocations: u.invocations,
            total_cost: u.total_cost(),
            cost_per_doc: u.total_cost() / docs as f64,
        });
    }

    RebalanceTable {
        fanout,
        amortization,
        n_shards: N_SHARDS,
        src_shard: SRC_SHARD,
        dst_shard: DST_SHARD,
    }
}

// ---------------------------------------------------------------------
// Continuous telemetry: windowed monitor, advice closed loop, SLO burn
// ---------------------------------------------------------------------

/// One observed phase of the monitor's skew closed loop: the rendered
/// per-window health table plus the ledger-side ground truth the windows
/// summarize (per-shard invoice shares over the whole phase).
#[derive(Debug, Clone)]
pub struct SkewPhase {
    /// `render_windows` output for the phase.
    pub table: String,
    /// Advisory migrations the monitor derived during the phase.
    pub advice: Vec<textjoin_obs::Advice>,
    /// Per-shard share of the total query invoice (`shard_usage`,
    /// fractions summing to 1).
    pub shares: Vec<f64>,
    /// The largest entry of `shares`.
    pub max_share: f64,
}

/// The skew closed loop: observe a degraded shard, execute the monitor's
/// advice through the migration engine, observe again.
#[derive(Debug, Clone)]
pub struct MonitorSkewReport {
    /// Shards / replicas per shard in both phases' servers.
    pub n_shards: usize,
    /// Replicas per shard.
    pub n_replicas: usize,
    /// The shard whose replicas carry the transient fault plan.
    pub hot_shard: usize,
    /// Per-operation fault probability on the hot shard's replicas.
    pub fault_rate: f64,
    /// Monitor window width (simulated seconds).
    pub window_secs: f64,
    /// Documents per migration batch when executing the advice.
    pub batch_docs: usize,
    /// Documents the executed advice actually migrated.
    pub migrated_docs: u64,
    /// Phase A: the skewed workload, monitor attached.
    pub before: SkewPhase,
    /// Phase B: the same workload after executing the first advice.
    pub after: SkewPhase,
}

/// The SLO burn-rate episode: healthy traffic, a degraded episode of slow
/// primaries under a deadline, then recovery — one continuous monitored
/// timeline.
#[derive(Debug, Clone)]
pub struct MonitorSloReport {
    /// Monitor window width (simulated seconds).
    pub window_secs: f64,
    /// Per-query deadline during the degraded episode.
    pub deadline: f64,
    /// Slow-fault probability on each shard's primary during the degraded
    /// episode.
    pub slow_rate: f64,
    /// `render_windows` output for the whole timeline.
    pub table: String,
    /// SLO alert transitions `(window, firing)` in order.
    pub transitions: Vec<(u64, bool)>,
    /// Deadline misses summed over all windows.
    pub misses: u64,
    /// Hedged reads summed over all windows.
    pub hedges: u64,
}

/// The drift watchdog on a recorded workload: silent on the faithful
/// trace, flagging within one re-fit after a mid-trace repricing.
#[derive(Debug, Clone)]
pub struct MonitorDriftReport {
    /// Monitor window width (simulated seconds).
    pub window_secs: f64,
    /// Drift alerts on the unmodified trace (must be 0).
    pub clean_alerts: usize,
    /// The simulated repricing factor applied to `c_i` halfway through
    /// the perturbed replay.
    pub repricing: f64,
    /// Components flagged on the perturbed replay:
    /// `(component, configured, fitted)`.
    pub flagged: Vec<(&'static str, f64, f64)>,
}

/// Builds the skew scenario's server: a replicated sharded server whose
/// `hot_shard` replicas carry independent bounded transient fault plans —
/// retries and backoff inflate that shard's invoice share well above its
/// even split, which is exactly the signal the skew detector watches.
fn skew_scenario_server(
    w: &World,
    n_shards: usize,
    n_replicas: usize,
    partition_seed: u64,
    hot_shard: usize,
    rate: f64,
) -> textjoin_text::shard::ShardedTextServer {
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::shard::ShardedTextServer;

    let mut sharded =
        ShardedTextServer::replicated(w.server.collection(), n_shards, n_replicas, partition_seed);
    for r in 0..n_replicas {
        sharded.replica_mut(hot_shard, r).set_fault_plan(FaultPlan::transient(
            0x5EA7 ^ ((r as u64) << 32),
            rate,
            2,
        ));
    }
    sharded
}

/// Runs the full method × query workload against `sharded` with a live
/// monitor teed next to a JSONL trace sink, then proves the offline path
/// agrees: replaying the parsed JSONL through a fresh monitor must
/// reproduce the live windows and alerts byte-for-byte.
fn run_monitored_phase(
    w: &World,
    sharded: &textjoin_text::shard::ShardedTextServer,
    n_shards: usize,
    cfg: &textjoin_obs::MonitorConfig,
) -> SkewPhase {
    use std::rc::Rc;
    use textjoin_core::retry::{RetryBudget, RetryPolicy};
    use textjoin_obs::{parse_jsonl, FanoutSink, JsonlSink, Monitor, Recorder, Sink};

    let preps = chaos_preps(w);
    let jsonl = Rc::new(JsonlSink::new());
    let mon = Rc::new(Monitor::new(cfg.clone()));
    let tee = Rc::new(FanoutSink::new(vec![
        jsonl.clone() as Rc<dyn Sink>,
        mon.clone(),
    ]));
    sharded.set_recorder(Some(Recorder::new(tee)));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(sharded, &budget);
    for p in &preps {
        for kind in [
            MethodKind::Ts,
            MethodKind::Rtp,
            MethodKind::Sj,
            MethodKind::PTs,
            MethodKind::PRtp,
        ] {
            let Some(cols) = probe_cols_of(p, kind) else { continue };
            // Inapplicable method × query pairs are skipped, like the
            // chaos grids; bounded transient faults never error.
            let _ = run_method_ctx(&ctx, &p.prepared, kind, cols);
        }
    }
    mon.finish();
    sharded.set_recorder(None);

    // Live tee and offline replay must agree exactly — same code path,
    // same windows, same alerts.
    let events = parse_jsonl(&jsonl.contents()).expect("recorded trace parses");
    let replayed = Monitor::replay(cfg.clone(), &events);
    assert_eq!(
        replayed.render_table(),
        mon.render_table(),
        "offline replay diverged from the live monitor"
    );

    let totals: Vec<f64> = (0..n_shards)
        .map(|i| sharded.shard_usage(i).total_cost())
        .collect();
    let sum: f64 = totals.iter().sum();
    let shares: Vec<f64> = totals.iter().map(|t| t / sum).collect();
    let max_share = shares.iter().cloned().fold(0.0, f64::max);
    SkewPhase {
        table: mon.render_table(),
        advice: mon.advice(),
        shares,
        max_share,
    }
}

/// The tentpole closed loop, end to end: (A) run the paper workload
/// against a server whose shard 1 is degraded, with the windowed monitor
/// teed into the flight recorder; the skew detector trips on shard 1's
/// invoice share and derives a migration advisory from the docid traffic
/// it observed. (B) execute exactly that advisory through the online
/// migration engine ([`MigrationPlan::from_advice`]), then run the same
/// workload again — the hot shard's invoice share must drop, which the
/// `monitor` test pins. Fully seeded and byte-identical across runs.
///
/// [`MigrationPlan::from_advice`]: textjoin_text::rebalance::MigrationPlan::from_advice
pub fn monitor_skew_report(w: &World) -> MonitorSkewReport {
    use textjoin_obs::MonitorConfig;
    use textjoin_text::rebalance::MigrationPlan;

    const N_SHARDS: usize = 4;
    const N_REPLICAS: usize = 2;
    const PARTITION_SEED: u64 = 0x5AD;
    const HOT_SHARD: usize = 1;
    const FAULT_RATE: f64 = 0.35;
    const WINDOW_SECS: f64 = 400.0;
    const BATCH_DOCS: usize = 24;

    let cfg = MonitorConfig::new(WINDOW_SECS).with_skew(400_000, 320_000);

    let before_server =
        skew_scenario_server(w, N_SHARDS, N_REPLICAS, PARTITION_SEED, HOT_SHARD, FAULT_RATE);
    let before = run_monitored_phase(w, &before_server, N_SHARDS, &cfg);
    let advice = before
        .advice
        .first()
        .expect("the degraded shard must trip the skew detector")
        .clone();
    assert_eq!(advice.src, HOT_SHARD, "advice must target the degraded shard");

    let mut after_server =
        skew_scenario_server(w, N_SHARDS, N_REPLICAS, PARTITION_SEED, HOT_SHARD, FAULT_RATE);
    let journal = after_server.begin_migration(MigrationPlan::from_advice(&advice, BATCH_DOCS));
    let migrated_docs: u64 = journal.entries.iter().map(|e| e.docs).sum();
    // The hot shard's replicas keep faulting transiently while it drains;
    // a refused batch resumes from the journal on the next attempt, so
    // the loop terminates (bounded consecutive faults, finite plan).
    let mut steps = 0u32;
    while !after_server.journal().expect("journal exists").finished() {
        let _ = after_server.migrate_batch();
        steps += 1;
        assert!(steps < 10_000, "advice migration failed to drain");
    }
    let after = run_monitored_phase(w, &after_server, N_SHARDS, &cfg);

    MonitorSkewReport {
        n_shards: N_SHARDS,
        n_replicas: N_REPLICAS,
        hot_shard: HOT_SHARD,
        fault_rate: FAULT_RATE,
        window_secs: WINDOW_SECS,
        batch_docs: BATCH_DOCS,
        migrated_docs,
        before,
        after,
    }
}

/// The SLO burn-rate monitor over a three-episode timeline sharing one
/// recorder (so the simulated clock runs continuously): a healthy episode,
/// a degraded episode in which every shard's primary replica is slow and
/// each query runs under the makespan deadline (hedges and deadline misses
/// are the SLO-threatening events), then a healthy recovery episode. The
/// dual-window burn rate ignores the first stray bad events, fires during
/// the sustained degradation, and clears during recovery.
pub fn monitor_slo_report(w: &World) -> MonitorSloReport {
    use std::rc::Rc;
    use textjoin_core::retry::{RetryBudget, RetryPolicy};
    use textjoin_core::sched::{SchedConfig, Scheduler};
    use textjoin_obs::{EventKind, Monitor, MonitorConfig, Recorder, Sink};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::shard::ShardedTextServer;

    const N_SHARDS: usize = 4;
    const N_REPLICAS: usize = 2;
    const PARTITION_SEED: u64 = 0x5AD;
    const DEADLINE: f64 = 150.0;
    const SLOW_RATE: f64 = 0.25;
    const WINDOW_SECS: f64 = 600.0;

    let preps = chaos_preps(w);
    let cfg = MonitorConfig::new(WINDOW_SECS).with_slo(2, 6, 2.0);
    let mon = Rc::new(Monitor::new(cfg));
    let rec = Recorder::new(mon.clone() as Rc<dyn Sink>);

    for episode in 0..3u32 {
        let degraded = episode == 1;
        for (qi, p) in preps.iter().enumerate() {
            for (mi, kind) in [
                MethodKind::Ts,
                MethodKind::Rtp,
                MethodKind::Sj,
                MethodKind::PTs,
                MethodKind::PRtp,
            ]
            .into_iter()
            .enumerate()
            {
                let Some(cols) = probe_cols_of(p, kind) else { continue };
                let mut sharded = ShardedTextServer::replicated(
                    w.server.collection(),
                    N_SHARDS,
                    N_REPLICAS,
                    PARTITION_SEED,
                );
                if degraded {
                    for i in 0..N_SHARDS {
                        let pri = sharded.primary_of(i);
                        sharded.replica_mut(i, pri).set_fault_plan(FaultPlan::slow(
                            0x510 ^ ((qi as u64) << 16) ^ ((mi as u64) << 8) ^ i as u64,
                            SLOW_RATE,
                        ));
                    }
                }
                sharded.set_recorder(Some(rec.clone()));
                let budget = RetryBudget::new(RetryPolicy::standard());
                let sched = Scheduler::new(SchedConfig::new(0x7E97).with_deadline(DEADLINE));
                let ctx = ExecContext::with_budget(&sharded, &budget).with_transport(&sched);
                // Inapplicable method × query pairs are skipped;
                // latency-only faults never error.
                let _ = run_method_ctx(&ctx, &p.prepared, kind, cols);
            }
        }
    }
    mon.finish();

    let transitions: Vec<(u64, bool)> = mon
        .alerts()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SloAlert { window, firing, .. } => Some((window, firing)),
            _ => None,
        })
        .collect();
    let (misses, hedges) = mon
        .windows()
        .iter()
        .fold((0, 0), |(m, h), w| (m + w.deadline_misses, h + w.hedges));
    MonitorSloReport {
        window_secs: WINDOW_SECS,
        deadline: DEADLINE,
        slow_rate: SLOW_RATE,
        table: mon.render_table(),
        transitions,
        misses,
        hedges,
    }
}

/// The drift watchdog on the recorded Table-2 workload. The unmodified
/// trace is priced exactly at the configured Mercury constants, so the
/// periodic re-fit stays silent. The perturbed replay simulates the server
/// repricing invocations 1.5× halfway through the trace — the watchdog
/// must flag `c_i` (and only components that actually moved) at its next
/// re-fit over the trailing window.
pub fn monitor_drift_report(w: &World) -> MonitorDriftReport {
    use textjoin_obs::{Event, EventKind, Monitor, MonitorConfig};

    const WINDOW_SECS: f64 = 150.0;
    const REPRICING: f64 = 1.5;

    let params = world_params(w);
    let cfg = MonitorConfig::new(WINDOW_SECS)
        .with_baseline(
            params.constants.c_i,
            params.constants.c_p,
            params.constants.c_s,
            params.constants.c_l,
        )
        .with_drift(2, 4, 0.25);
    let events = table2_trace(w);

    let clean = Monitor::replay(cfg.clone(), &events);
    let clean_alerts = clean
        .alerts()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DriftAlert { .. }))
        .count();

    // Mid-trace repricing: from the halfway clock on, every invocation
    // costs 1.5× — the charges stay linear, just in a moved c_i.
    let half = events.last().map(|e| e.clock / 2.0).unwrap_or(0.0);
    let perturbed: Vec<Event> = events
        .iter()
        .map(|ev| {
            let mut ev = ev.clone();
            if ev.clock >= half {
                if let EventKind::Call { charge, .. } = &mut ev.kind {
                    charge.time_invocation *= REPRICING;
                }
            }
            ev
        })
        .collect();
    let mon = Monitor::replay(cfg, &perturbed);
    let flagged: Vec<(&'static str, f64, f64)> = mon
        .alerts()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DriftAlert { component, configured, fitted, drifted: true, .. } => {
                Some((component, configured, fitted))
            }
            _ => None,
        })
        .collect();
    MonitorDriftReport {
        window_secs: WINDOW_SECS,
        clean_alerts,
        repricing: REPRICING,
        flagged,
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;

    #[test]
    fn chaos_table_is_deterministic_and_monotone_at_zero() {
        let w = default_world();
        let a = chaos_table(&w);
        let b = chaos_table(&w);
        for (ra, rb) in a.cells.iter().zip(&b.cells) {
            for (ca, cb) in ra.iter().zip(rb) {
                match (ca, cb) {
                    (Some((sa, oa)), Some((sb, ob))) => {
                        assert_eq!(sa.to_bits(), sb.to_bits());
                        assert_eq!(oa.to_bits(), ob.to_bits());
                    }
                    (None, None) => {}
                    _ => panic!("applicability differs between runs"),
                }
            }
        }
        // Rate 0 must be exactly the fault-free cost: zero overhead.
        for row in &a.cells {
            if let Some((_, overhead)) = row[0] {
                assert_eq!(overhead, 0.0);
            }
        }
        // Rate 0 must also be fault-free in the surfaced counters.
        for row in &a.fault_cells {
            if let Some((faults, retries)) = row[0] {
                assert_eq!((faults, retries), (0, 0));
            }
        }
    }

    #[test]
    fn sharded_chaos_table_is_deterministic_with_exact_counters() {
        let w = default_world();
        let a = sharded_chaos_table(&w);
        let b = sharded_chaos_table(&w);
        assert_eq!(a.n_shards, 4);
        for (ra, rb) in a.cells.iter().zip(&b.cells) {
            for (ca, cb) in ra.iter().zip(rb) {
                match (ca, cb) {
                    (Some((sa, oa)), Some((sb, ob))) => {
                        assert_eq!(sa.to_bits(), sb.to_bits());
                        assert_eq!(oa.to_bits(), ob.to_bits());
                    }
                    (None, None) => {}
                    _ => panic!("applicability differs between runs"),
                }
            }
        }
        assert_eq!(a.fault_cells, b.fault_cells);
        // Faulted columns actually exercised the retry machinery somewhere.
        let injected: u64 = a
            .fault_cells
            .iter()
            .flat_map(|row| row.iter().skip(1).flatten())
            .map(|&(f, _)| f)
            .sum();
        assert!(injected > 0, "no faults surfaced in the sharded table");
        for row in &a.fault_cells {
            if let Some((faults, retries)) = row[0] {
                assert_eq!((faults, retries), (0, 0), "rate 0 must be fault-free");
            }
        }
    }

    #[test]
    fn replicated_chaos_table_is_deterministic_and_survives_a_dead_primary() {
        let w = default_world();
        let a = replicated_chaos_table(&w);
        let b = replicated_chaos_table(&w);
        assert_eq!((a.n_shards, a.n_replicas), (4, 2));
        for (ra, rb) in a.cells.iter().zip(&b.cells) {
            for (ca, cb) in ra.iter().zip(rb) {
                match (ca, cb) {
                    (Some((sa, oa)), Some((sb, ob))) => {
                        assert_eq!(sa.to_bits(), sb.to_bits());
                        assert_eq!(oa.to_bits(), ob.to_bits());
                    }
                    (None, None) => {}
                    _ => panic!("applicability differs between runs"),
                }
            }
        }
        assert_eq!(a.fault_cells, b.fault_cells);
        // Unlike the other chaos tables, even the rate-0 column faults:
        // the dead primary is attempted (and charged) until the breaker
        // opens, then served by the surviving replica. Every method row
        // must show that cost — it proves failover actually ran.
        for (mi, row) in a.fault_cells.iter().enumerate() {
            if let Some((faults, _)) = row[0] {
                assert!(
                    faults > 0,
                    "{}: dead primary never surfaced a fault at rate 0",
                    a.methods[mi]
                );
            }
        }
        // And the grid's per-rate answer-equality assertion (inside
        // chaos_grid) has already proven every faulted cell returns the
        // rate-0 answers despite the permanently dead replica.
    }

    #[test]
    fn makespan_table_is_deterministic_and_concurrency_pays() {
        let w = default_world();
        let a = makespan_table(&w);
        let b = makespan_table(&w);
        assert_eq!((a.n_shards, a.n_replicas), (4, 2));
        let mut hedges = 0;
        let mut misses = 0;
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            match (ca, cb) {
                (Some(ca), Some(cb)) => {
                    assert_eq!(ca.serial.to_bits(), cb.serial.to_bits());
                    assert_eq!(ca.makespan.to_bits(), cb.makespan.to_bits());
                    assert_eq!(
                        (ca.hedges, ca.cancels, ca.deadline_misses, ca.rows),
                        (cb.hedges, cb.cancels, cb.deadline_misses, cb.rows)
                    );
                    // Every hedge race has exactly one loser, and it was
                    // cancelled (its charge rebated).
                    assert_eq!(ca.hedges, ca.cancels);
                    // makespan_table itself asserts makespan < serial per
                    // query; the aggregate must agree.
                    assert!(ca.makespan < ca.serial);
                    hedges += ca.hedges;
                    misses += ca.deadline_misses;
                }
                (None, None) => {}
                _ => panic!("applicability differs between runs"),
            }
        }
        assert!(hedges > 0, "no hedge ever fired across the grid");
        assert!(misses > 0, "the deadline never bit — tighten it");
    }

    #[test]
    fn deadline_demo_degrades_without_changing_rows() {
        let w = default_world();
        let a = deadline_demo(&w);
        let b = deadline_demo(&w);
        assert_eq!(a.len(), 2);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.label, rb.label);
            assert_eq!(ra.total.to_bits(), rb.total.to_bits());
            assert_eq!(ra.makespan.to_bits(), rb.makespan.to_bits());
            assert_eq!(ra.rows, rb.rows);
        }
        // deadline_demo itself asserts equal rows and degradations > 0;
        // pin the shape the bench prints: the unbounded run is clean, the
        // bounded run crossed the deadline and shed work.
        assert_eq!((a[0].degradations, a[0].deadline_misses), (0, 0));
        assert!(a[1].deadline_misses > 0);
        assert!(a[1].total < a[0].total, "shed probe work must shed charge");
    }

    #[test]
    fn monitor_skew_closed_loop_reduces_the_hot_share() {
        let w = default_world();
        let r = monitor_skew_report(&w);
        // run_monitored_phase itself asserts offline replay == live tee;
        // here pin the loop's semantics. The advice targets the degraded
        // shard (asserted inside) and actually moved documents.
        assert!(r.migrated_docs > 0, "the advice must migrate something");
        let adv = &r.before.advice[0];
        assert_eq!(adv.src, r.hot_shard);
        assert!(adv.hits > 0 && adv.lo < adv.hi);
        // Executing the advice measurably reduces the hot shard's share
        // of the query invoice on the identical re-run.
        assert!(
            r.after.shares[r.hot_shard] < r.before.shares[r.hot_shard],
            "hot shard share must drop: {:?} -> {:?}",
            r.before.shares,
            r.after.shares
        );
        assert!(r.after.max_share < r.before.max_share);
    }

    #[test]
    fn monitor_slo_burn_fires_during_degradation_and_clears() {
        let w = default_world();
        let r = monitor_slo_report(&w);
        assert!(r.misses > 0, "the deadline never bit");
        assert!(r.hedges > 0, "no hedge ever fired");
        assert!(
            r.transitions.first().is_some_and(|&(_, f)| f),
            "the first SLO transition must be a fire: {:?}",
            r.transitions
        );
        assert!(
            r.transitions.iter().any(|&(_, f)| !f),
            "the alert must clear after the episode: {:?}",
            r.transitions
        );
        // Edge-triggered: transitions strictly alternate.
        for pair in r.transitions.windows(2) {
            assert_ne!(pair[0].1, pair[1].1, "duplicate edge: {:?}", r.transitions);
        }
    }

    #[test]
    fn monitor_drift_flags_repricing_and_stays_silent_when_clean() {
        let w = default_world();
        let r = monitor_drift_report(&w);
        assert_eq!(r.clean_alerts, 0, "faithful trace must not flag drift");
        assert!(
            r.flagged.iter().any(|(c, ..)| *c == "c_i"),
            "the repriced component must be flagged: {:?}",
            r.flagged
        );
        for (component, configured, fitted) in &r.flagged {
            assert!(
                (fitted - configured).abs() > 0.25 * configured.abs(),
                "{component} flagged inside tolerance"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Serve: the multi-tenant serving session
// ---------------------------------------------------------------------

/// Per-tenant measurements from the mixed-stream serve session.
#[derive(Debug, Clone)]
pub struct ServeTenantRow {
    pub name: String,
    pub priority: u32,
    pub budget: f64,
    pub admitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub shed: u64,
    pub budget_aborted: u64,
    pub spent: f64,
    pub share_ppm: u64,
    pub p99_cost: f64,
    pub probe_hits: u64,
    pub plan_hits: u64,
}

/// Session-cache savings on a repeated-spec stream: the same four-query
/// stream through the session (caches live across queries) and through
/// the per-execution pipeline (caches die with each query).
#[derive(Debug, Clone)]
pub struct ServeCacheSavings {
    pub queries: usize,
    pub session_total: f64,
    pub per_exec_total: f64,
    pub saved_ppm: u64,
    pub probe_hits: u64,
    pub plan_hits: u64,
}

/// The serve benchmark: a mixed 4-tenant stream (one starved budget, a
/// priority-0 victim, a tight queue forcing degradation and shedding)
/// over a replicated server with a permanently dead primary, plus the
/// repeated-spec cache measurement.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    pub stream_len: usize,
    pub completed: u64,
    pub rejected: u64,
    pub shed: u64,
    pub shed_rate_ppm: u64,
    pub degradations: u64,
    pub p99_cost: f64,
    pub aggregate_cost: f64,
    pub tenants: Vec<ServeTenantRow>,
    pub cache: ServeCacheSavings,
}

/// Runs the serve benchmark. Deterministic: seeded world, seeded
/// partitioning, seeded fault plan, simulated clocks.
pub fn serve_bench_report(w: &World) -> ServeBenchReport {
    use textjoin_core::exec::plan_and_execute;
    use textjoin_core::serve::{percentile, Backend, ServeConfig, ServeSession, TenantSpec};
    use textjoin_text::faults::FaultPlan;
    use textjoin_text::server::TextServer;
    use textjoin_text::shard::ShardedTextServer;

    let params = world_params(w);
    let mut server = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = server.primary_of(2);
    server.replica_mut(2, dead).set_fault_plan(FaultPlan::dead(77));

    let mut cfg = ServeConfig::new(params);
    cfg.queue_cap = 1;
    cfg.quantum = 300.0;
    cfg.degrade_depth = 4;
    let tenants = vec![
        TenantSpec::new("alpha", 1e9, 2),
        TenantSpec::new("beta", 1e9, 1),
        TenantSpec::new("gamma", 300.0, 0),
        TenantSpec::new("delta", 1e9, 3),
    ];
    let q5 = paper::q5(w);
    let q6 = paper::q6(w);
    let stream = vec![
        (0usize, q5.clone()),
        (1, q6.clone()),
        (2, q5.clone()),
        (3, q5.clone()),
        (0, q6.clone()),
        (3, q6.clone()),
        (1, q5.clone()),
        (2, q6.clone()),
        (3, q5.clone()),
    ];
    let report =
        ServeSession::new(Backend::Elastic(&mut server), &w.catalog, tenants, cfg).run(&stream);

    let aggregate_cost = report.aggregate.total_cost();
    let all_costs: Vec<f64> = report
        .tenants
        .iter()
        .flat_map(|t| t.costs.iter().copied())
        .collect();
    let mut completed = 0;
    let mut rejected = 0;
    let mut shed = 0;
    let mut degradations = 0;
    for r in &report.records {
        match &r.outcome {
            Ok(out) => {
                completed += 1;
                degradations += out.degradations;
            }
            Err(textjoin_core::serve::ServeError::Rejected { .. }) => rejected += 1,
            Err(textjoin_core::serve::ServeError::Shed { .. }) => shed += 1,
            Err(_) => {}
        }
    }
    let tenants = report
        .tenants
        .iter()
        .map(|t| ServeTenantRow {
            name: t.name.clone(),
            priority: t.priority,
            budget: t.budget,
            admitted: t.admitted,
            completed: t.completed,
            rejected: t.rejected,
            shed: t.shed,
            budget_aborted: t.budget_aborted,
            spent: t.spent,
            share_ppm: if aggregate_cost > 0.0 {
                (t.invoice.total_cost() / aggregate_cost * 1_000_000.0).round() as u64
            } else {
                0
            },
            p99_cost: percentile(&t.costs, 0.99),
            probe_hits: t.probe_cache.0,
            plan_hits: t.plan_hits,
        })
        .collect();

    // Repeated-spec cache measurement: one tenant, the same spec four
    // times, against the identical fresh single server on both sides.
    // Runs on a compact world where phase-1 probes are *charged* server
    // invocations — on the default world the vocabulary export answers
    // them for free, so there is nothing for a cross-query cache to save.
    let cw = World::generate(WorldSpec {
        background_docs: 150,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    });
    let cparams = world_params(&cw);
    let cq5 = paper::q5(&cw);
    let repeat: Vec<_> = (0..4).map(|_| (0usize, cq5.clone())).collect();
    let cache_server = TextServer::new(cw.server.collection().clone());
    let mut ccfg = ServeConfig::new(cparams);
    ccfg.quantum = 1e9;
    ccfg.degrade_depth = 0;
    let crep = ServeSession::new(
        Backend::Single(&cache_server),
        &cw.catalog,
        vec![TenantSpec::new("solo", 1e9, 1)],
        ccfg,
    )
    .run(&repeat);
    let session_total: f64 = crep.tenants[0].costs.iter().sum();
    let base_server = TextServer::new(cw.server.collection().clone());
    let mut per_exec_total = 0.0;
    for (_, q) in &repeat {
        let (_, out) = plan_and_execute(q, &cw.catalog, &base_server, cparams, ExecutionSpace::Prl)
            .expect("baseline runs");
        per_exec_total += out.total_cost;
    }
    let cache = ServeCacheSavings {
        queries: repeat.len(),
        session_total,
        per_exec_total,
        saved_ppm: ((1.0 - session_total / per_exec_total) * 1_000_000.0).round() as u64,
        probe_hits: crep.tenants[0].probe_cache.0,
        plan_hits: crep.tenants[0].plan_hits,
    };

    ServeBenchReport {
        stream_len: stream.len(),
        completed,
        rejected,
        shed,
        shed_rate_ppm: (shed as f64 / stream.len() as f64 * 1_000_000.0).round() as u64,
        degradations,
        p99_cost: percentile(&all_costs, 0.99),
        aggregate_cost,
        tenants,
        cache,
    }
}

// ---------------------------------------------------------------------
// Plan-quality observability: EXPLAIN ANALYZE, counterfactual regret,
// misestimation detection
// ---------------------------------------------------------------------

/// One query's counterfactual-regret measurement. Every candidate method
/// is replayed on its own charge-free sandbox — a fresh server over a
/// clone of the collection with the world's own pricing, no recorder —
/// so the unchosen methods' charges land on private ledgers the real
/// world never sees. True regret is chosen actual − best actual.
#[derive(Debug, Clone)]
pub struct RegretRow {
    /// Query label.
    pub query: &'static str,
    /// Candidate methods replayed (including the chosen one).
    pub candidates: usize,
    /// The planner's choice (cheapest estimate).
    pub chosen: String,
    /// Actual simulated cost of the chosen method.
    pub chosen_actual: f64,
    /// The method that actually measured cheapest.
    pub best: String,
    /// Actual simulated cost of the measured best.
    pub best_actual: f64,
    /// True regret: `chosen_actual - best_actual`.
    pub regret: f64,
    /// Regret as a share of the chosen cost (0 when the choice was best).
    pub regret_share: f64,
    /// Plan-level cost Q-error of the chosen run (estimate vs actual).
    pub cost_q: f64,
}

impl RegretRow {
    fn from_measured(query: &'static str, measured: &[(String, f64, f64)]) -> Option<Self> {
        // `measured` is (label, estimate, actual), cheapest estimate first
        // — the head is what the planner picks.
        let chosen = measured.first()?;
        let best = measured
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite costs"))?;
        let regret = chosen.2 - best.2;
        Some(RegretRow {
            query,
            candidates: measured.len(),
            chosen: chosen.0.clone(),
            chosen_actual: chosen.2,
            best: best.0.clone(),
            best_actual: best.2,
            regret,
            regret_share: if chosen.2 > 0.0 { regret / chosen.2 } else { 0.0 },
            cost_q: textjoin_obs::q_error(chosen.1, chosen.2),
        })
    }
}

/// A charge-free sandbox: a fresh server over a clone of the world's
/// collection, charging the world's own prices, with no recorder. Its
/// ledger is private, so replaying counterfactual methods on it is
/// passive by construction (`tests/audit.rs` pins this).
fn sandbox(w: &World) -> textjoin_text::server::TextServer {
    textjoin_text::server::TextServer::with_constants(
        w.server.collection().clone(),
        w.server.constants(),
    )
}

/// Counterfactual regret over the single-join paper queries Q1–Q4. Each
/// candidate replays on its own sandbox; with `fault` set, every sandbox
/// gets the same per-query seeded transient plan, so the counterfactuals
/// face exactly the environment the chosen method faced.
pub fn single_join_regret(w: &World, fault: Option<(f64, u32)>) -> Vec<RegretRow> {
    use textjoin_text::faults::FaultPlan;

    let ts_schema = w.server.collection().schema();
    let params = world_params(w);
    let queries: Vec<(&'static str, SingleJoinQuery)> = vec![
        ("Q1", paper::q1(w)),
        ("Q2", paper::q2(w)),
        ("Q3", paper::q3(w)),
        ("Q4", paper::q4(w)),
    ];
    let mut out = Vec::new();
    for (qi, (label, q)) in queries.into_iter().enumerate() {
        let prepared = prepare(&q, &w.catalog, ts_schema).expect("paper query prepares");
        let export = w.server.export_stats();
        let stats = prepared.statistics_from_export(&export, ts_schema);
        let cands = enumerate_methods(&params, &stats, q.projection, false);
        let mut measured: Vec<(String, f64, f64)> = Vec::new();
        for c in &cands {
            let mut server = sandbox(w);
            if let Some((rate, burst)) = fault {
                server.set_fault_plan(FaultPlan::transient(0xA11 ^ ((qi as u64) << 8), rate, burst));
            }
            if let Ok(m) = run_method_on(&server, &prepared, c.kind, &c.probe_cols) {
                measured.push((c.label.clone(), c.cost.total(), m.secs));
            }
        }
        if let Some(row) = RegretRow::from_measured(label, &measured) {
            out.push(row);
        }
    }
    out
}

/// Counterfactual regret over the multi-join queries Q5/Q6: the chosen
/// plan runs once with EXPLAIN ANALYZE on, then every enumerated text-join
/// method is grafted into the same tree shape and replayed on a fresh
/// sandbox. Returns the rows plus the rendered plan-quality tree of Q5.
pub fn multi_join_regret(w: &World) -> (Vec<RegretRow>, String) {
    use textjoin_core::exec::{execute_prepared, prepare_plan, ExecHooks};
    use textjoin_core::optimizer::multi::{text_join_candidates, with_text_method, PlannedQuery};

    let params = world_params(w);
    let queries: Vec<(&'static str, textjoin_core::optimizer::plan::MultiJoinQuery)> =
        vec![("Q5", paper::q5(w)), ("Q6", paper::q6(w))];
    let mut rows = Vec::new();
    let mut explain = String::new();
    for (label, q) in queries {
        let server = sandbox(w);
        let (input, planned) = prepare_plan(
            &q,
            &w.catalog,
            &server,
            params,
            ExecutionSpace::PrlResiduals,
            None,
            None,
        )
        .expect("multi-join query plans");
        let hooks = ExecHooks { analyze: true, ..ExecHooks::default() };
        let outcome =
            execute_prepared(&input, &planned, &w.catalog, &server, &hooks).expect("executes");
        let pq = outcome.plan_quality.as_ref().expect("analyze was on");
        if label == "Q5" {
            explain = pq.render();
        }
        let chosen_shape = format!("{:?}", planned.plan);
        let mut measured: Vec<(String, f64, f64)> = Vec::new();
        let mut chosen_label = "text-scan".to_string();
        for c in text_join_candidates(&input, &planned.plan).unwrap_or_default() {
            let Some(variant) = with_text_method(&planned.plan, c.kind, &c.probe_cols) else {
                continue;
            };
            if format!("{variant:?}") == chosen_shape {
                chosen_label = c.label.clone();
            }
            let vplanned = PlannedQuery {
                plan: variant,
                est_cost: planned.est_cost,
                est_rows: planned.est_rows,
            };
            let vbox = sandbox(w);
            if let Ok(vout) =
                execute_prepared(&input, &vplanned, &w.catalog, &vbox, &ExecHooks::default())
            {
                measured.push((c.label.clone(), c.cost.total(), vout.total_cost));
            }
        }
        // The chosen run itself anchors the row (its estimate is the
        // planner's full-plan estimate); candidate replays only compete
        // for `best`.
        let mut all = vec![(chosen_label, planned.est_cost, outcome.total_cost)];
        all.extend(measured);
        if let Some(row) = RegretRow::from_measured(label, &all) {
            rows.push(row);
        }
    }
    (rows, explain)
}

/// Per-tenant plan quality of a served stream: the serve session with
/// `analyze` on collects one plan-level cost Q-error per completed query;
/// this reports each tenant's p50/p90/max columns.
#[derive(Debug, Clone)]
pub struct ServePlanQualityRow {
    pub tenant: String,
    pub analyzed: usize,
    pub p50_q: f64,
    pub p90_q: f64,
    pub max_q: f64,
}

/// Runs a lean two-tenant serve stream with plan-quality analysis on and
/// reports the per-tenant Q-error columns.
pub fn serve_plan_quality(w: &World) -> Vec<ServePlanQualityRow> {
    use textjoin_core::serve::{percentile, Backend, ServeConfig, ServeSession, TenantSpec};

    let params = world_params(w);
    let server = sandbox(w);
    let mut cfg = ServeConfig::new(params);
    cfg.analyze = true;
    let tenants = vec![TenantSpec::new("alpha", 1e9, 1), TenantSpec::new("beta", 1e9, 1)];
    let q5 = paper::q5(w);
    let q6 = paper::q6(w);
    let stream = vec![
        (0usize, q5.clone()),
        (1, q6.clone()),
        (0, q6.clone()),
        (1, q5.clone()),
        (0, q5),
        (1, q6),
    ];
    let report = ServeSession::new(Backend::Single(&server), &w.catalog, tenants, cfg).run(&stream);
    report
        .tenants
        .iter()
        .map(|t| ServePlanQualityRow {
            tenant: t.name.clone(),
            analyzed: t.cost_qs.len(),
            p50_q: percentile(&t.cost_qs, 0.50),
            p90_q: percentile(&t.cost_qs, 0.90),
            max_q: t.cost_qs.iter().copied().fold(0.0, f64::max),
        })
        .collect()
}

/// Misestimation-detector demo, constants branch: the server's real
/// prices are scaled away from the configured Mercury constants, so the
/// analyzed runs emit samples whose `constants_q` dominates — the monitor
/// names `constants` and advises re-calibration.
pub fn estimate_drift_constants_demo(w: &World) -> String {
    use std::rc::Rc;
    use textjoin_core::exec::{execute_prepared, prepare_plan, ExecHooks};
    use textjoin_obs::{Monitor, MonitorConfig, Recorder, RingSink};
    use textjoin_text::server::TextServer;

    let mut k = w.server.constants();
    k.c_i *= 8.0;
    k.c_p *= 8.0;
    k.c_s *= 8.0;
    k.c_l *= 8.0;
    let server = TextServer::with_constants(w.server.collection().clone(), k);
    let sink = Rc::new(RingSink::unbounded());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    let params = world_params(w);
    let q = paper::q5(w);
    for _ in 0..3 {
        let (input, planned) = prepare_plan(
            &q,
            &w.catalog,
            &server,
            params,
            ExecutionSpace::PrlResiduals,
            None,
            None,
        )
        .expect("plans");
        let hooks = ExecHooks { analyze: true, ..ExecHooks::default() };
        execute_prepared(&input, &planned, &w.catalog, &server, &hooks).expect("executes");
    }
    let cfg = MonitorConfig::new(1_000.0).with_estimates(3.0, 1.5, 0.25, 3, 8);
    Monitor::replay(cfg, &sink.events()).render_table()
}

/// Misestimation-detector demo, selectivity branch: plans are built from
/// the exported statistics of a much smaller corpus but execute against
/// the full one — counts misestimate while prices stay exact, so the
/// monitor names `selectivity` and advises re-exporting statistics.
pub fn estimate_drift_stale_stats_demo(w: &World) -> String {
    use std::rc::Rc;
    use textjoin_core::exec::{execute_prepared, prepare_plan, ExecHooks};
    use textjoin_obs::{Monitor, MonitorConfig, Recorder, RingSink};

    // The stale corpus predates most of the publishing activity: far
    // fewer students and projects had documents when the statistics were
    // exported, so every selectivity and fanout in the export undershoots
    // what the live corpus answers.
    let stale = World::generate(WorldSpec {
        student_publish_frac: 0.05,
        docs_per_student_author: 1,
        project_title_hit_frac: 0.04,
        docs_per_hit_project: 1,
        ..w.spec.clone()
    });
    let live = sandbox(w);
    let sink = Rc::new(RingSink::unbounded());
    live.set_recorder(Some(Recorder::new(sink.clone())));
    let q = paper::q5(w);
    for _ in 0..3 {
        // Plan against the stale corpus's export (and its document count),
        // execute against the live server.
        let (input, planned) = prepare_plan(
            &q,
            &w.catalog,
            &stale.server,
            world_params(&stale),
            ExecutionSpace::PrlResiduals,
            None,
            None,
        )
        .expect("plans on stale stats");
        let hooks = ExecHooks { analyze: true, ..ExecHooks::default() };
        execute_prepared(&input, &planned, &w.catalog, &live, &hooks).expect("executes");
    }
    let cfg = MonitorConfig::new(1_000.0).with_estimates(3.0, 1.5, 0.25, 3, 8);
    Monitor::replay(cfg, &sink.events()).render_table()
}

/// The full plan-quality report the `analyze` binary prints.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Rendered estimated-vs-actual span tree of the chosen Q5 plan.
    pub explain: String,
    /// Fault-free counterfactual regret, Q1–Q4.
    pub fault_free: Vec<RegretRow>,
    /// Multi-join regret over grafted text-join methods, Q5/Q6.
    pub multi: Vec<RegretRow>,
    /// Regret under seeded transient faults, Q1–Q4.
    pub chaos: Vec<RegretRow>,
    /// Per-tenant plan-quality columns from a served stream.
    pub serve: Vec<ServePlanQualityRow>,
    /// Monitor table for the drifted-constants scenario.
    pub monitor_constants: String,
    /// Monitor table for the stale-statistics scenario.
    pub monitor_stale: String,
}

/// Runs every plan-quality workload: EXPLAIN ANALYZE on Q5, regret over
/// the fault-free and chaos single-join workloads and the multi-join
/// workload, the served per-tenant columns, and both misestimation
/// detector scenarios. Deterministic end to end.
pub fn analyze_report(w: &World) -> AnalyzeReport {
    let (multi, explain) = multi_join_regret(w);
    AnalyzeReport {
        explain,
        fault_free: single_join_regret(w, None),
        multi,
        chaos: single_join_regret(w, Some((0.2, 2))),
        serve: serve_plan_quality(w),
        monitor_constants: estimate_drift_constants_demo(w),
        monitor_stale: estimate_drift_stale_stats_demo(w),
    }
}

/// The `explain --analyze` section: runs the chosen Q5 plan on a sandbox
/// with EXPLAIN ANALYZE on and returns the estimated-vs-actual span tree.
pub fn explain_analyze(w: &World) -> String {
    use textjoin_core::exec::{execute_prepared, prepare_plan, ExecHooks};

    let server = sandbox(w);
    let q = paper::q5(w);
    let (input, planned) = prepare_plan(
        &q,
        &w.catalog,
        &server,
        world_params(w),
        ExecutionSpace::PrlResiduals,
        None,
        None,
    )
    .expect("Q5 plans");
    let hooks = ExecHooks { analyze: true, ..ExecHooks::default() };
    let outcome =
        execute_prepared(&input, &planned, &w.catalog, &server, &hooks).expect("Q5 executes");
    outcome.plan_quality.expect("analyze was on").render()
}
