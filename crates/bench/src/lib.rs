//! # textjoin-bench — the experiment harness
//!
//! Deterministic reproductions of every table and figure in the paper's
//! evaluation (Section 7), plus the Section 4.1 calibration and the
//! Section 6 multi-join comparison. Each experiment is a library function
//! ([`experiments`]) with a small printing binary in `src/bin/`:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table2` | Table 2 — execution times of each method on Q1–Q4 |
//! | `fig1a`  | Figure 1(A) — Q3 method costs vs `s_1` |
//! | `fig1b`  | Figure 1(B) — Q4 method costs vs `N_1/N` |
//! | `fig2`   | Figure 2 — TS vs P+TS winner regions |
//! | `calibrate` | Section 4.1 — cost-constant recovery |
//! | `validate`  | Section 7 — model-predicted vs measured winners |
//! | `multijoin` | Section 6 — Q5 across execution spaces |
//! | `monitor`   | windowed telemetry: skew closed loop, SLO burn, drift |
//!
//! Criterion micro/macro benchmarks live in `benches/`.

pub mod experiments;
pub mod format;
