//! Macrobenchmarks of the foreign-join methods (wall-clock execution of
//! each method on the paper's Q3/Q4 over a generated world). Simulated
//! cost is what the paper's tables report; these benches additionally
//! show the library's real execution speed.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};
use textjoin_bench::experiments::run_method;
use textjoin_core::optimizer::single::MethodKind;
use textjoin_core::query::prepare;
use textjoin_workload::paper;
use textjoin_workload::world::{World, WorldSpec};

fn world() -> World {
    World::generate(WorldSpec {
        background_docs: 500,
        students: 100,
        projects: 20,
        ..WorldSpec::default()
    })
}

fn bench_methods(c: &mut Criterion) {
    let w = world();
    let ts_schema = w.server.collection().schema();
    let q3 = prepare(&paper::q3(&w), &w.catalog, ts_schema).unwrap();
    let q4 = prepare(&paper::q4(&w), &w.catalog, ts_schema).unwrap();

    let mut g = c.benchmark_group("q3");
    g.bench_function("ts", |b| {
        b.iter(|| run_method(&w, &q3, MethodKind::Ts, &[]).unwrap())
    });
    g.bench_function("sj_rtp", |b| {
        b.iter(|| run_method(&w, &q3, MethodKind::Sj, &[]).unwrap())
    });
    g.bench_function("p1_ts", |b| {
        b.iter(|| run_method(&w, &q3, MethodKind::PTs, &[0]).unwrap())
    });
    g.bench_function("p1_rtp", |b| {
        b.iter(|| run_method(&w, &q3, MethodKind::PRtp, &[0]).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("q4");
    g.bench_function("ts", |b| {
        b.iter(|| run_method(&w, &q4, MethodKind::Ts, &[]).unwrap())
    });
    g.bench_function("sj_rtp", |b| {
        b.iter(|| run_method(&w, &q4, MethodKind::Sj, &[]).unwrap())
    });
    g.finish();
}

/// A fast Criterion profile: the numbers here are comparative, not
/// publication-grade; keep total bench time in seconds, not minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_methods
}
criterion_main!(benches);

