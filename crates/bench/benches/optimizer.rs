//! Optimizer benchmarks: probe-column search (exhaustive O(2^k) vs the
//! Theorem 5.3 bounded search) and multi-join enumeration scaling in the
//! number of relations (the O(n·2^(n-1)) claim).

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use textjoin_core::cost::formulas::cost_p_ts;
use textjoin_core::cost::params::{CostParams, JoinStatistics, PredStats};
use textjoin_core::methods::Projection;
use textjoin_core::optimizer::multi::{plan_query, ExecutionSpace, PlannerInput};
use textjoin_core::optimizer::plan::{ForeignSpec, MultiJoinQuery, RelJoinPred, RelSpec};
use textjoin_core::optimizer::single::{optimal_probe_bounded, optimal_probe_exhaustive};
use textjoin_rel::catalog::Catalog;
use textjoin_rel::expr::{CmpOp, Pred};
use textjoin_rel::schema::RelSchema;
use textjoin_rel::table::Table;
use textjoin_rel::tuple;
use textjoin_rel::value::ValueType;
use textjoin_text::doc::{Document, TextSchema};
use textjoin_text::index::Collection;
use textjoin_text::server::TextServer;

fn stats_with_k(k: usize) -> JoinStatistics {
    JoinStatistics {
        n: 10_000.0,
        n_k: 10_000.0,
        preds: (0..k)
            .map(|i| PredStats::simple(0.05 + 0.1 * i as f64, 1.0 + i as f64, 10.0 * (i + 1) as f64))
            .collect(),
        sel_fanout: 100_000.0,
        sel_postings: 0.0,
        sel_terms: 0,
        needs_long: false,
        short_form_sufficient: true,
    }
}

fn bench_probe_search(c: &mut Criterion) {
    let params = CostParams::mercury(100_000.0);
    let mut g = c.benchmark_group("probe_column_search");
    for k in [4usize, 8, 12] {
        let stats = stats_with_k(k);
        g.bench_with_input(BenchmarkId::new("exhaustive", k), &k, |b, _| {
            b.iter(|| optimal_probe_exhaustive(&params, &stats, cost_p_ts))
        });
        g.bench_with_input(BenchmarkId::new("bounded_thm53", k), &k, |b, _| {
            b.iter(|| optimal_probe_bounded(&params, &stats, cost_p_ts))
        });
    }
    g.finish();
}

/// Builds an n-relation chain query plus the text source.
fn chain_query(n: usize) -> (Catalog, TextServer, MultiJoinQuery) {
    let mut catalog = Catalog::new();
    let schema = TextSchema::bibliographic();
    let au = schema.field_by_name("author").unwrap();
    let mut coll = Collection::new(schema);
    for i in 0..50 {
        coll.add_document(Document::new().with(au, format!("Author{i}")));
    }
    let server = TextServer::new(coll);

    let mut relations = Vec::new();
    let mut rel_joins = Vec::new();
    for r in 0..n {
        let rs = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("key", ValueType::Str),
        ]);
        let mut t = Table::new(format!("r{r}"), rs);
        for i in 0..40 {
            t.push(tuple![format!("Author{}", i % 50), format!("k{}", i % 8)]);
        }
        catalog.register(t);
        relations.push(RelSpec {
            name: format!("r{r}"),
            local_pred: Pred::True,
        });
        if r > 0 {
            rel_joins.push(RelJoinPred {
                left_rel: r - 1,
                left_col: "key".into(),
                op: CmpOp::Eq,
                right_rel: r,
                right_col: "key".into(),
            });
        }
    }
    let q = MultiJoinQuery {
        relations,
        rel_joins,
        selections: vec![],
        foreign: vec![ForeignSpec {
            rel: 0,
            column: "name".into(),
            field: "author".into(),
        }],
        projection: Projection::Full,
    };
    (catalog, server, q)
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("multijoin_enumeration");
    for n in [2usize, 3, 4, 5] {
        let (catalog, server, q) = chain_query(n);
        let export = server.export_stats();
        let params = CostParams::mercury(server.doc_count() as f64);
        let input =
            PlannerInput::gather(&q, &catalog, &export, server.collection().schema(), params)
                .unwrap();
        g.bench_with_input(BenchmarkId::new("prl", n), &n, |b, _| {
            b.iter(|| plan_query(&input, ExecutionSpace::Prl).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("left_deep", n), &n, |b, _| {
            b.iter(|| plan_query(&input, ExecutionSpace::LeftDeep).unwrap())
        });
    }
    g.finish();
}

/// A fast Criterion profile: the numbers here are comparative, not
/// publication-grade; keep total bench time in seconds, not minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_probe_search, bench_enumeration
}
criterion_main!(benches);

