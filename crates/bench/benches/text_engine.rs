//! Microbenchmarks of the Boolean text retrieval substrate: index
//! construction and search evaluation (wall-clock, via Criterion).

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use textjoin_workload::world::{World, WorldSpec};

fn spec() -> WorldSpec {
    WorldSpec {
        background_docs: 1_000,
        students: 100,
        projects: 20,
        ..WorldSpec::default()
    }
}

fn bench_index_build(c: &mut Criterion) {
    c.bench_function("index_build_1k_docs", |b| {
        b.iter_batched(
            spec,
            World::generate,
            BatchSize::SmallInput,
        )
    });
}

fn bench_search(c: &mut Criterion) {
    let w = World::generate(spec());
    let mut g = c.benchmark_group("search");
    g.bench_function("word", |b| {
        b.iter(|| w.server.search_str("TI='query'").unwrap())
    });
    g.bench_function("phrase", |b| {
        b.iter(|| w.server.search_str("TI='query optimization'").unwrap())
    });
    g.bench_function("boolean_and_or", |b| {
        b.iter(|| {
            w.server
                .search_str("TI='query' and (AB='join' or AB='index')")
                .unwrap()
        })
    });
    g.bench_function("truncated", |b| {
        b.iter(|| w.server.search_str("TI='quer?'").unwrap())
    });
    g.finish();
}

fn bench_retrieve(c: &mut Criterion) {
    let w = World::generate(spec());
    let ids = w.server.search_str("TI='query'").unwrap().ids();
    c.bench_function("retrieve_long_form", |b| {
        b.iter(|| w.server.retrieve(ids[0]).unwrap())
    });
}

fn bench_signature_vs_inverted(c: &mut Criterion) {
    // The Section 2.1 premise: inversion beats signature files at scale.
    use textjoin_text::signature::SignatureIndex;
    let w = World::generate(spec());
    let coll = w.server.collection();
    let schema = coll.schema().clone();
    let ti = schema.field_by_name("title").unwrap();
    let mut sig = SignatureIndex::new(schema.clone(), 512);
    for d in 0..coll.doc_count() {
        sig.add_document(
            coll.document(textjoin_text::doc::DocId(d as u32))
                .unwrap()
                .clone(),
        );
    }
    let mut g = c.benchmark_group("access_method");
    g.bench_function("inverted_conjunction", |b| {
        b.iter(|| w.server.search_str("TI='query' and TI='optimization'").unwrap())
    });
    g.bench_function("signature_conjunction", |b| {
        b.iter(|| {
            sig.search_conjunctive(&[
                ("query".to_owned(), ti),
                ("optimization".to_owned(), ti),
            ])
        })
    });
    g.finish();
}

/// A fast Criterion profile: comparative numbers, seconds-not-minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_index_build, bench_search, bench_retrieve, bench_signature_vs_inverted
}
criterion_main!(benches);

