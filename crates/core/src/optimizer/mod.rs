//! Query optimization — paper, Sections 5 and 6.
//!
//! [`single`] chooses the join method and probe columns for queries with
//! one stored relation; [`plan`] defines the PrL-tree plan language for
//! multi-join queries; [`multi`] is the System-R style dynamic-programming
//! enumerator over that extended execution space; [`relcost`] supplies the
//! relational-side cost estimates the enumerator needs.

pub mod multi;
pub mod plan;
pub mod relcost;
pub mod single;

pub use single::{choose_method, enumerate_methods, MethodCandidate, MethodKind};
