//! Relational-side cost and cardinality estimates for multi-join planning.
//!
//! The paper charges text-system operations precisely and treats relational
//! work as comparatively cheap (its single-join formulas omit the relation
//! scan entirely). Multi-join planning, however, needs *relative* relational
//! costs — Example 6.1 turns on the fact that reducing `student` with a
//! probe lowers the cost of `student ⋈ faculty`. We use the classic
//! System-R style estimates: nested-loop pair costs and
//! distinct-value-based join selectivities.

use textjoin_rel::expr::CmpOp;

/// Relational engine cost constants (simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelCostModel {
    /// Cost per tuple pair compared in a nested-loop join.
    pub c_pair: f64,
    /// Cost per output row materialized.
    pub c_out: f64,
}

impl Default for RelCostModel {
    fn default() -> Self {
        Self {
            c_pair: 1e-6,
            c_out: 1e-6,
        }
    }
}

impl RelCostModel {
    /// Cost of a nested-loop join producing `rows_out` rows.
    pub fn nested_loop(&self, rows_l: f64, rows_r: f64, rows_out: f64) -> f64 {
        self.c_pair * rows_l * rows_r + self.c_out * rows_out
    }

    /// The matching cost the executor actually books for a relational
    /// join: `c_pair` per tuple pair plus `c_a` per residual containment
    /// comparison (one per pair per residual) — exactly
    /// `exec.rs::eval_rel_join`'s accounting, so exact input
    /// cardinalities price the join exactly (the EXPLAIN ANALYZE
    /// Q-error contract).
    pub fn join_matching(&self, rows_l: f64, rows_r: f64, residuals: usize, c_a: f64) -> f64 {
        rows_l * rows_r * (self.c_pair + c_a * residuals as f64)
    }
}

/// Selectivity of `a <op> b` between columns with `dl` and `dr` distinct
/// values (System-R conventions).
pub fn join_selectivity(op: CmpOp, dl: f64, dr: f64) -> f64 {
    let dmax = dl.max(dr).max(1.0);
    match op {
        CmpOp::Eq => 1.0 / dmax,
        CmpOp::Ne => 1.0 - 1.0 / dmax,
        // Range comparisons: the traditional 1/3 default.
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => 1.0 / 3.0,
    }
}

/// Selectivity of a *containment residual*: a foreign predicate
/// `rel.col in doc.field` evaluated relationally after the text source was
/// joined. Per tuple pair, the probability the document contains the term
/// is `fanout / D`.
pub fn containment_selectivity(fanout: f64, d: f64) -> f64 {
    if d <= 0.0 {
        0.0
    } else {
        (fanout / d).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_vs_ne() {
        let eq = join_selectivity(CmpOp::Eq, 10.0, 40.0);
        let ne = join_selectivity(CmpOp::Ne, 10.0, 40.0);
        assert!((eq - 0.025).abs() < 1e-12);
        assert!((ne - 0.975).abs() < 1e-12);
        assert!((eq + ne - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_distincts() {
        assert_eq!(join_selectivity(CmpOp::Eq, 0.0, 0.0), 1.0);
        assert_eq!(join_selectivity(CmpOp::Lt, 5.0, 5.0), 1.0 / 3.0);
    }

    #[test]
    fn containment_clamps() {
        assert_eq!(containment_selectivity(5.0, 100.0), 0.05);
        assert_eq!(containment_selectivity(500.0, 100.0), 1.0);
        assert_eq!(containment_selectivity(5.0, 0.0), 0.0);
    }

    #[test]
    fn nested_loop_scales() {
        let m = RelCostModel::default();
        let small = m.nested_loop(10.0, 10.0, 5.0);
        let big = m.nested_loop(1000.0, 1000.0, 5.0);
        assert!(big > small * 100.0);
    }
}
