//! PrL trees — the extended execution space (paper, Section 6).
//!
//! A **PrL tree** is a left-deep join tree augmented with *probe nodes*
//! between relational joins (or between a scan and a join). A probe node
//! semi-joins its input with the text source on a chosen subset of the
//! foreign predicates, shrinking the relation before later joins; all probe
//! nodes precede the (single) text-join node, after which probes would be
//! redundant.
//!
//! The multi-join query model lives here too: a set of relations with
//! local predicates, relational join predicates between them, constant
//! text selections, and foreign predicates tying relation columns to text
//! fields.

use std::fmt;

use textjoin_rel::expr::{CmpOp, Pred};

use crate::methods::Projection;
use crate::optimizer::single::MethodKind;

/// One relation in a multi-join query.
#[derive(Debug, Clone)]
pub struct RelSpec {
    /// Catalog name.
    pub name: String,
    /// Local selection applied at scan time.
    pub local_pred: Pred,
}

/// A relational join predicate `left.col <op> right.col` between two
/// relations of the query.
#[derive(Debug, Clone)]
pub struct RelJoinPred {
    /// Index of the left relation in [`MultiJoinQuery::relations`].
    pub left_rel: usize,
    /// Column name in the left relation.
    pub left_col: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Index of the right relation.
    pub right_rel: usize,
    /// Column name in the right relation.
    pub right_col: String,
}

/// A foreign predicate `rel.col in text.field`.
#[derive(Debug, Clone)]
pub struct ForeignSpec {
    /// Index of the relation in [`MultiJoinQuery::relations`].
    pub rel: usize,
    /// Column name.
    pub column: String,
    /// Text field name or alias.
    pub field: String,
}

/// A conjunctive query over several relations and the text source.
#[derive(Debug, Clone)]
pub struct MultiJoinQuery {
    /// The stored relations.
    pub relations: Vec<RelSpec>,
    /// Join predicates among the relations.
    pub rel_joins: Vec<RelJoinPred>,
    /// Constant text selections `(term, field)`.
    pub selections: Vec<(String, String)>,
    /// Foreign join predicates.
    pub foreign: Vec<ForeignSpec>,
    /// Projection at the text join (multi-join queries that keep document
    /// attributes use `Full`).
    pub projection: Projection,
}

/// A node of a PrL execution tree. Cardinality and cost annotations are
/// estimates; the executor reports actuals.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan of a base relation (local predicate applied).
    Scan {
        /// Index into [`MultiJoinQuery::relations`].
        rel: usize,
    },
    /// Probe node: semi-join reduction of `input` by the text source on
    /// the foreign predicates `preds` (indices into
    /// [`MultiJoinQuery::foreign`]). Always precedes the text join.
    Probe {
        /// The reduced input.
        input: Box<PlanNode>,
        /// Foreign predicate indices probed on.
        preds: Vec<usize>,
    },
    /// Relational join of the running (left) intermediate with a base-side
    /// (right) node, on `preds` (indices into rel_joins) plus any foreign
    /// predicates that became relational residuals because the text source
    /// was joined earlier (`foreign_residuals`).
    RelJoin {
        /// Left (accumulated) input.
        left: Box<PlanNode>,
        /// Right input (scan or probed scan — left-deep shape).
        right: Box<PlanNode>,
        /// Relational join predicate indices.
        preds: Vec<usize>,
        /// Foreign predicate indices evaluated relationally here.
        foreign_residuals: Vec<usize>,
    },
    /// The foreign join with the text source, evaluating the foreign
    /// predicates `preds` with the chosen method. `input` is `None` when
    /// the text source is accessed first (a pure text-selection scan,
    /// which requires text selections).
    TextJoin {
        /// The relational input, if any.
        input: Option<Box<PlanNode>>,
        /// Foreign predicate indices evaluated here.
        preds: Vec<usize>,
        /// The join method chosen by the single-join optimizer.
        method: MethodKind,
        /// Probe predicate indices (within `preds`) for probing methods.
        probe_cols: Vec<usize>,
    },
}

impl PlanNode {
    /// Indices of the relations contained in this subtree (text excluded).
    pub fn relations(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out.sort_unstable();
        out
    }

    fn collect_relations(&self, out: &mut Vec<usize>) {
        match self {
            PlanNode::Scan { rel } => out.push(*rel),
            PlanNode::Probe { input, .. } => input.collect_relations(out),
            PlanNode::RelJoin { left, right, .. } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
            PlanNode::TextJoin { input, .. } => {
                if let Some(i) = input {
                    i.collect_relations(out);
                }
            }
        }
    }

    /// Whether the subtree contains the text-join node.
    pub fn has_text_join(&self) -> bool {
        match self {
            PlanNode::Scan { .. } => false,
            PlanNode::Probe { input, .. } => input.has_text_join(),
            PlanNode::RelJoin { left, right, .. } => {
                left.has_text_join() || right.has_text_join()
            }
            PlanNode::TextJoin { .. } => true,
        }
    }

    /// Number of probe nodes in the subtree.
    pub fn probe_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Probe { input, .. } => 1 + input.probe_count(),
            PlanNode::RelJoin { left, right, .. } => left.probe_count() + right.probe_count(),
            PlanNode::TextJoin { input, .. } => {
                input.as_ref().map_or(0, |i| i.probe_count())
            }
        }
    }

    /// Checks the PrL invariant: probe nodes precede the text join — no
    /// probe node may sit above (consume the output of) the text join.
    pub fn is_valid_prl(&self) -> bool {
        match self {
            PlanNode::Scan { .. } => true,
            PlanNode::Probe { input, .. } => !input.has_text_join() && input.is_valid_prl(),
            PlanNode::RelJoin { left, right, .. } => left.is_valid_prl() && right.is_valid_prl(),
            PlanNode::TextJoin { input, .. } => {
                input.as_ref().is_none_or(|i| i.is_valid_prl())
            }
        }
    }

    /// Pretty-prints the plan with the query's names.
    pub fn display<'a>(&'a self, q: &'a MultiJoinQuery) -> DisplayPlan<'a> {
        DisplayPlan { node: self, q }
    }
}

/// [`fmt::Display`] helper for plans.
pub struct DisplayPlan<'a> {
    node: &'a PlanNode,
    q: &'a MultiJoinQuery,
}

impl fmt::Display for DisplayPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_node(self.node, self.q, f, 0)
    }
}

fn fmt_node(
    n: &PlanNode,
    q: &MultiJoinQuery,
    f: &mut fmt::Formatter<'_>,
    depth: usize,
) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match n {
        PlanNode::Scan { rel } => writeln!(f, "{pad}Scan({})", q.relations[*rel].name),
        PlanNode::Probe { input, preds } => {
            let ps: Vec<String> = preds
                .iter()
                .map(|&i| format!("{}.{}", q.relations[q.foreign[i].rel].name, q.foreign[i].column))
                .collect();
            writeln!(f, "{pad}Probe[{}]", ps.join(", "))?;
            fmt_node(input, q, f, depth + 1)
        }
        PlanNode::RelJoin {
            left,
            right,
            preds,
            foreign_residuals,
        } => {
            let mut conds: Vec<String> = preds
                .iter()
                .map(|&i| {
                    let p = &q.rel_joins[i];
                    format!(
                        "{}.{} {} {}.{}",
                        q.relations[p.left_rel].name,
                        p.left_col,
                        p.op,
                        q.relations[p.right_rel].name,
                        p.right_col
                    )
                })
                .collect();
            conds.extend(foreign_residuals.iter().map(|&i| {
                format!(
                    "{}.{} in {}",
                    q.relations[q.foreign[i].rel].name, q.foreign[i].column, q.foreign[i].field
                )
            }));
            writeln!(f, "{pad}RelJoin[{}]", conds.join(" and "))?;
            fmt_node(left, q, f, depth + 1)?;
            fmt_node(right, q, f, depth + 1)
        }
        PlanNode::TextJoin {
            input,
            preds,
            method,
            probe_cols,
        } => {
            let ps: Vec<String> = preds
                .iter()
                .map(|&i| {
                    format!(
                        "{}.{} in {}",
                        q.relations[q.foreign[i].rel].name,
                        q.foreign[i].column,
                        q.foreign[i].field
                    )
                })
                .collect();
            writeln!(
                f,
                "{pad}TextJoin[{}] method={method:?} probe={probe_cols:?}",
                ps.join(" and ")
            )?;
            match input {
                Some(i) => fmt_node(i, q, f, depth + 1),
                None => writeln!(f, "{pad}  TextScan(selections only)"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q5_like() -> MultiJoinQuery {
        MultiJoinQuery {
            relations: vec![
                RelSpec {
                    name: "student".into(),
                    local_pred: Pred::True,
                },
                RelSpec {
                    name: "faculty".into(),
                    local_pred: Pred::True,
                },
            ],
            rel_joins: vec![RelJoinPred {
                left_rel: 0,
                left_col: "dept".into(),
                op: CmpOp::Ne,
                right_rel: 1,
                right_col: "dept".into(),
            }],
            selections: vec![("1993".into(), "year".into())],
            foreign: vec![
                ForeignSpec {
                    rel: 0,
                    column: "name".into(),
                    field: "author".into(),
                },
                ForeignSpec {
                    rel: 1,
                    column: "name".into(),
                    field: "author".into(),
                },
            ],
            projection: Projection::Full,
        }
    }

    fn prl_plan() -> PlanNode {
        // Probe student, join faculty, then text join — Example 6.1's shape.
        PlanNode::TextJoin {
            input: Some(Box::new(PlanNode::RelJoin {
                left: Box::new(PlanNode::Probe {
                    input: Box::new(PlanNode::Scan { rel: 0 }),
                    preds: vec![0],
                }),
                right: Box::new(PlanNode::Scan { rel: 1 }),
                preds: vec![0],
                foreign_residuals: vec![],
            })),
            preds: vec![0, 1],
            method: MethodKind::Ts,
            probe_cols: vec![],
        }
    }

    #[test]
    fn relations_and_flags() {
        let p = prl_plan();
        assert_eq!(p.relations(), vec![0, 1]);
        assert!(p.has_text_join());
        assert_eq!(p.probe_count(), 1);
        assert!(p.is_valid_prl());
    }

    #[test]
    fn probe_after_text_join_invalid() {
        let bad = PlanNode::Probe {
            input: Box::new(PlanNode::TextJoin {
                input: Some(Box::new(PlanNode::Scan { rel: 0 })),
                preds: vec![0],
                method: MethodKind::Ts,
                probe_cols: vec![],
            }),
            preds: vec![1],
        };
        assert!(!bad.is_valid_prl());
    }

    #[test]
    fn display_renders_tree() {
        let q = q5_like();
        let s = prl_plan().display(&q).to_string();
        assert!(s.contains("Probe[student.name]"));
        assert!(s.contains("RelJoin[student.dept != faculty.dept]"));
        assert!(s.contains("TextJoin[student.name in author and faculty.name in author]"));
        assert!(s.contains("Scan(faculty)"));
    }

    #[test]
    fn text_scan_display() {
        let q = q5_like();
        let p = PlanNode::TextJoin {
            input: None,
            preds: vec![],
            method: MethodKind::Rtp,
            probe_cols: vec![],
        };
        let s = p.display(&q).to_string();
        assert!(s.contains("TextScan"));
        assert!(p.is_valid_prl());
        assert_eq!(p.relations(), Vec::<usize>::new());
    }
}
