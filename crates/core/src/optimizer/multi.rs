//! Multi-join enumeration — paper, Section 6.
//!
//! A System-R style dynamic program over subsets of {relations} ∪ {TEXT},
//! extended to the PrL execution space: when a plan for subset `S` is
//! extended with relation `R_i`, the four alternatives of the modified
//! `Enumerate` are considered —
//!
//! (a) `joinPlan(optPlan(S), R_i)`
//! (b) `joinPlan(probe(optPlan(S)), R_i)`
//! (c) `joinPlan(optPlan(S), probe(R_i))`
//! (d) `joinPlan(probe(optPlan(S)), probe(R_i))`
//!
//! — with probe columns chosen by the bounded Section 5 search. Probe nodes
//! are only generated while the text source is not yet joined (they are
//! redundant afterwards). Because a probed plan and an unprobed plan over
//! the same subset are incomparable by cost alone (the probe buys a smaller
//! relation at a price), each subset keeps a small **Pareto set** of
//! (cost, cardinality) candidates rather than a single optimum; this
//! implements the paper's observation that "there will not be a single
//! optimal plan for {R_1, R_2}" while still guaranteeing the final plan is
//! never worse than the best traditional left-deep plan (all left-deep
//! trees remain in the space).

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use textjoin_obs::{CostVector, EventKind, NodeEstimate, PlannerChoice, Recorder};
use textjoin_rel::catalog::Catalog;
use textjoin_rel::ops::{distinct_count, filter};
use textjoin_text::doc::{FieldId, TextSchema};
use textjoin_text::stats::VocabularyStats;

use crate::cost::formulas::{
    cost_probe_phase, expected_result_fanout, probe_success_probability,
};
use crate::cost::formulas::CostBreakdown;
use crate::cost::params::{CostParams, JoinStatistics, PredStats};
use crate::methods::{Projection, TextSelection};
use crate::optimizer::plan::{MultiJoinQuery, PlanNode};
use crate::optimizer::relcost::{containment_selectivity, join_selectivity, RelCostModel};
use crate::optimizer::single::{enumerate_methods, MethodCandidate, MethodKind};
use crate::query::QueryError;
use crate::stats::{export_predicate, export_selections};

/// Per-foreign-predicate information gathered before planning.
#[derive(Debug, Clone)]
pub struct ForeignInfo {
    /// Selectivity/fanout/distinct statistics of the predicate.
    pub stats: PredStats,
    /// The resolved text field.
    pub field: FieldId,
    /// Whether the field is available in short-form results.
    pub short_form: bool,
}

/// Per-relation information gathered before planning.
#[derive(Debug, Clone)]
pub struct BaseRelInfo {
    /// Rows after the local predicate.
    pub rows: f64,
    /// Distinct counts of the columns the query references.
    pub distinct: HashMap<String, f64>,
}

/// Everything the planner needs, gathered once.
#[derive(Debug, Clone)]
pub struct PlannerInput {
    /// The query being planned.
    pub query: MultiJoinQuery,
    /// Cost-model parameters.
    pub params: CostParams,
    /// Relational cost constants.
    pub rel_model: RelCostModel,
    /// Per-relation statistics.
    pub base: Vec<BaseRelInfo>,
    /// Per-foreign-predicate statistics.
    pub foreign: Vec<ForeignInfo>,
    /// Joint fanout of the text selections (`D` if none).
    pub sel_fanout: f64,
    /// Summed inverted-list length of the selection terms.
    pub sel_postings: f64,
    /// Number of selection terms.
    pub sel_terms: usize,
    /// Flight recorder for planner decision events, if attached. Emits one
    /// zero-charge [`EventKind::Planner`] event per costed method candidate
    /// at each final-position text-join decision, so a trace shows *why*
    /// the executed method was picked (estimated cost vector, probe-column
    /// set, and the fault-adjusted `effective_c_i` the estimates priced
    /// invocations with).
    pub obs: Option<Rc<Recorder>>,
}

impl PlannerInput {
    /// Gathers statistics for `query` from the catalog and the text
    /// server's statistics export.
    pub fn gather(
        query: &MultiJoinQuery,
        catalog: &Catalog,
        export: &VocabularyStats,
        text_schema: &TextSchema,
        params: CostParams,
    ) -> Result<Self, QueryError> {
        let mut base = Vec::with_capacity(query.relations.len());
        let mut filtered_tables = Vec::with_capacity(query.relations.len());
        for spec in &query.relations {
            let t = catalog
                .table(&spec.name)
                .ok_or_else(|| QueryError::UnknownRelation(spec.name.clone()))?;
            let filtered = filter(t, &spec.local_pred);
            let mut distinct = HashMap::new();
            let mut note_col = |name: &str, table: &textjoin_rel::table::Table| {
                if let Some(c) = table.schema().column_by_name(name) {
                    distinct.insert(name.to_owned(), distinct_count(table, c) as f64);
                }
            };
            for j in &query.rel_joins {
                if query.relations[j.left_rel].name == spec.name {
                    note_col(&j.left_col, &filtered);
                }
                if query.relations[j.right_rel].name == spec.name {
                    note_col(&j.right_col, &filtered);
                }
            }
            for fp in &query.foreign {
                if query.relations[fp.rel].name == spec.name {
                    note_col(&fp.column, &filtered);
                }
            }
            base.push(BaseRelInfo {
                rows: filtered.len() as f64,
                distinct,
            });
            filtered_tables.push(filtered);
        }
        let mut foreign = Vec::with_capacity(query.foreign.len());
        for fp in &query.foreign {
            let table = &filtered_tables[fp.rel];
            let col = table
                .schema()
                .column_by_name(&fp.column)
                .ok_or_else(|| QueryError::UnknownColumn(fp.column.clone()))?;
            let field = text_schema
                .resolve(&fp.field)
                .ok_or_else(|| QueryError::UnknownField(fp.field.clone()))?;
            foreign.push(ForeignInfo {
                stats: export_predicate(export, table, col, field),
                field,
                short_form: text_schema.def(field).in_short_form,
            });
        }
        let selections: Vec<TextSelection> = query
            .selections
            .iter()
            .map(|(term, field)| {
                Ok(TextSelection {
                    term: term.clone(),
                    field: text_schema
                        .resolve(field)
                        .ok_or_else(|| QueryError::UnknownField(field.clone()))?,
                })
            })
            .collect::<Result<_, QueryError>>()?;
        let (sel_fanout, sel_postings, sel_terms) = export_selections(export, &selections);
        Ok(Self {
            query: query.clone(),
            params,
            rel_model: RelCostModel::default(),
            base,
            foreign,
            sel_fanout,
            sel_postings,
            sel_terms,
            obs: None,
        })
    }

    /// Builds [`JoinStatistics`] for the foreign predicates `preds`
    /// evaluated against an intermediate relation with `rows` tuples.
    ///
    /// The statistics are consumed by the formulas with `self.params` as
    /// environment — including its fault model (`fault_rate`,
    /// `mean_backoff`), which every invocation-count term is multiplied
    /// against via `CostParams::effective_c_i`. Keep that in sync with the
    /// executor: `plan_and_execute` folds the session's observed fault
    /// rate into `params` before gathering, so the planner prices retries
    /// with the same schedule `ExecContext` actually charges. The same
    /// lockstep rule covers the scatter fan-out: when the sharded
    /// service's stats-aware routing is on, `plan_and_execute` folds the
    /// *pruned* fan-out (`CostParams::with_scatter_fanout`, computed from
    /// the same per-shard vocabulary masks the scatter paths consult) so
    /// `effective_c_i` prices exactly the shards a search will invoice.
    fn stats_for(&self, rows: f64, preds: &[usize], projection: Projection) -> JoinStatistics {
        let pred_stats: Vec<PredStats> = preds
            .iter()
            .map(|&i| {
                let mut ps = self.foreign[i].stats;
                // A column cannot have more distinct values than the
                // intermediate has rows.
                ps.distinct = ps.distinct.min(rows.max(1.0));
                ps
            })
            .collect();
        let n_k = pred_stats
            .iter()
            .map(|p| p.distinct)
            .product::<f64>()
            .min(rows);
        JoinStatistics {
            n: rows,
            n_k,
            preds: pred_stats,
            sel_fanout: self.sel_fanout,
            sel_postings: self.sel_postings,
            sel_terms: self.sel_terms,
            needs_long: projection == Projection::Full,
            short_form_sufficient: preds.iter().all(|&i| self.foreign[i].short_form),
        }
    }
}

/// The execution space the planner searches.
///
/// * `LeftDeep` — the paper's *traditional* space: the text source is
///   treated like a relation, so all foreign predicates (and text
///   selections) are evaluated together, forcing the text join after every
///   relation that carries a foreign predicate. No probe nodes.
/// * `Prl` — the paper's contribution (Section 6): `LeftDeep` plus probe
///   nodes acting as semi-join reducers before the text join.
/// * `PrlResiduals` — an extension beyond the paper: the text source may
///   join at any position, with foreign predicates on later relations
///   evaluated relationally (RTP-style residuals) against the retrieved
///   document fields. Subsumes both other spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionSpace {
    /// Traditional left-deep trees, text joined last.
    LeftDeep,
    /// Left-deep + probe nodes (the paper's PrL trees).
    Prl,
    /// PrL + early text join with relational residuals (extension).
    PrlResiduals,
}

/// A finished plan with its estimates.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The chosen PrL tree.
    pub plan: PlanNode,
    /// Estimated total cost (simulated seconds).
    pub est_cost: f64,
    /// Estimated output rows.
    pub est_rows: f64,
}

#[derive(Debug, Clone)]
struct Candidate {
    node: PlanNode,
    rows: f64,
    cost: f64,
    /// Bitmask of foreign predicates already used in a probe node.
    probed: u64,
}

/// Pareto set cap per subset: keeps enumeration polynomial in practice.
const MAX_CANDIDATES: usize = 8;

fn pareto_insert(set: &mut Vec<Candidate>, cand: Candidate) {
    // Dominated by an existing candidate?
    if set
        .iter()
        .any(|c| c.cost <= cand.cost + 1e-12 && c.rows <= cand.rows + 1e-12)
    {
        return;
    }
    // Remove candidates the new one dominates.
    set.retain(|c| !(cand.cost <= c.cost + 1e-12 && cand.rows <= c.rows + 1e-12));
    set.push(cand);
    if set.len() > MAX_CANDIDATES {
        set.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
        set.truncate(MAX_CANDIDATES);
    }
}

/// Plans `query` over the chosen [`ExecutionSpace`].
pub fn plan_query(input: &PlannerInput, space: ExecutionSpace) -> Option<PlannedQuery> {
    let enable_probes = space != ExecutionSpace::LeftDeep;
    let n = input.query.relations.len();
    assert!(n <= 10, "enumeration is exponential; {n} relations is too many");
    assert!(
        input.foreign.len() < 63,
        "the probed-predicate bitmask supports at most 62 foreign predicates"
    );
    let text_bit: u64 = 1 << n;
    let full: u64 = (1 << (n + 1)) - 1;

    // BTreeMap, not HashMap: subset visit order feeds candidate-vector
    // order (and with a recorder attached, planner event order), so it must
    // not depend on hasher seeding.
    let mut best: BTreeMap<u64, Vec<Candidate>> = BTreeMap::new();

    // Seed: single-relation scans.
    for r in 0..n {
        pareto_insert(
            best.entry(1 << r).or_default(),
            Candidate {
                node: PlanNode::Scan { rel: r },
                rows: input.base[r].rows,
                cost: 0.0,
                probed: 0,
            },
        );
    }
    // Seed: text-first scan (needs selections, and residual evaluation of
    // every foreign predicate — only legal in the extended space unless the
    // query has no foreign predicates at all).
    if input.sel_terms > 0
        && (space == ExecutionSpace::PrlResiduals || input.foreign.is_empty())
    {
        let c = &input.params.constants;
        let mut cost = c.c_i + c.c_p * input.sel_postings + c.c_s * input.sel_fanout;
        if input.query.projection == Projection::Full {
            cost += c.c_l * input.sel_fanout;
        }
        pareto_insert(
            best.entry(text_bit).or_default(),
            Candidate {
                node: PlanNode::TextJoin {
                    input: None,
                    preds: vec![],
                    method: crate::optimizer::single::MethodKind::Rtp,
                    probe_cols: vec![],
                },
                rows: input.sel_fanout,
                cost,
                probed: 0,
            },
        );
    }

    // Stage-wise extension.
    for size in 1..=n {
        let subsets: Vec<u64> = best
            .keys()
            .copied()
            .filter(|&s| (s & !text_bit).count_ones() as usize + usize::from(s & text_bit != 0) == size)
            .collect();
        for s in subsets {
            let cands = best.get(&s).cloned().unwrap_or_default();
            for cand in cands {
                // Extend with each absent relation.
                for r in 0..n {
                    let bit = 1u64 << r;
                    if s & bit != 0 {
                        continue;
                    }
                    for next in extend_with_relation(input, &cand, s, r, text_bit, enable_probes)
                    {
                        pareto_insert(best.entry(s | bit).or_default(), next);
                    }
                }
                // Extend with the text source. Outside the extended space,
                // the text join must wait until every relation carrying a
                // foreign predicate is present (all text predicates are
                // evaluated together — the paper's traditional semantics).
                if s & text_bit == 0 && s != 0 {
                    let all_foreign_present = (0..input.foreign.len())
                        .all(|i| s & (1 << input.query.foreign[i].rel) != 0);
                    if space == ExecutionSpace::PrlResiduals || all_foreign_present {
                        if let Some(next) = extend_with_text(input, &cand, s) {
                            pareto_insert(best.entry(s | text_bit).or_default(), next);
                        }
                    }
                }
            }
        }
    }

    let finals = best.remove(&full)?;
    let winner = finals
        .into_iter()
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))?;
    Some(PlannedQuery {
        plan: winner.node,
        est_cost: winner.cost,
        est_rows: winner.rows,
    })
}

/// Estimated postings behind a processing-cost component: the formulas
/// price every processed posting at `c_p`, so the count is recoverable
/// exactly by dividing the constant back out.
fn est_postings(params: &CostParams, processing: f64) -> f64 {
    if params.constants.c_p > 0.0 {
        processing / params.constants.c_p
    } else {
        0.0
    }
}

/// Re-derives the per-node estimates the dynamic program priced `plan`
/// with, in **pre-order** (parent before children, inputs left to right).
/// The executor attributes actual charges under the identical walk, so
/// index `i` of the returned vector is plan-node id `i` on both sides —
/// the EXPLAIN ANALYZE contract. The per-node costs are *exclusive*
/// (children excluded) and sum to the planner's `est_cost`.
pub fn estimate_nodes(input: &PlannerInput, plan: &PlanNode) -> Vec<NodeEstimate> {
    let mut out = Vec::new();
    walk_estimates(input, plan, 0, &mut out);
    out
}

fn breakdown_vector(cb: &CostBreakdown) -> CostVector {
    CostVector {
        invocation: cb.invocation,
        processing: cb.processing,
        transmission: cb.transmission,
        rtp: cb.rtp,
    }
}

/// The text-join projection rule, shared by the planner's extension step,
/// the estimate walk, and the executor (`exec.rs::text_join_projection`).
fn text_projection(input: &PlannerInput, preds_here: usize) -> Projection {
    if preds_here < input.foreign.len() {
        Projection::Full
    } else {
        input.query.projection
    }
}

/// Estimated output rows of a text join. Projections that emit one row
/// per matching document (`Full`, `DocIds`) produce (tuple, doc) pairs —
/// input rows times the expected result fanout. `RelOnly` has semijoin
/// semantics (the methods' `emit` pushes each surviving tuple exactly
/// once), so the estimate is survivors: input rows times the joint probe
/// success probability, the same rule probe nodes price with. Shared by
/// the planner's extension step and the EXPLAIN ANALYZE estimate walk so
/// both sides report the same cardinality.
fn text_join_rows(
    params: &CostParams,
    stats: &JoinStatistics,
    projection: Projection,
    in_rows: f64,
) -> f64 {
    match projection {
        Projection::RelOnly => {
            let local: Vec<usize> = (0..stats.k()).collect();
            in_rows * probe_success_probability(params, stats, &local)
        }
        _ => in_rows * expected_result_fanout(params, stats),
    }
}

/// Recursive half of [`estimate_nodes`]; returns the node's estimated
/// output rows so parents can price themselves.
fn walk_estimates(
    input: &PlannerInput,
    plan: &PlanNode,
    depth: usize,
    out: &mut Vec<NodeEstimate>,
) -> f64 {
    let id = out.len();
    out.push(NodeEstimate {
        id,
        depth,
        label: String::new(),
        rows: 0.0,
        postings: 0.0,
        cost: CostVector::default(),
    });
    match plan {
        PlanNode::Scan { rel } => {
            let rows = input.base[*rel].rows;
            out[id].label = format!("scan {}", input.query.relations[*rel].name);
            out[id].rows = rows;
            rows
        }
        PlanNode::Probe { input: child, preds } => {
            let in_rows = walk_estimates(input, child, depth + 1, out);
            let stats = input.stats_for(in_rows, preds, Projection::RelOnly);
            let local: Vec<usize> = (0..preds.len()).collect();
            let cb = cost_probe_phase(&input.params, &stats, &local);
            let survive = probe_success_probability(&input.params, &stats, &local);
            let rows = in_rows * survive;
            let cols: Vec<String> = preds
                .iter()
                .map(|&i| {
                    let fp = &input.query.foreign[i];
                    format!("{}.{}", input.query.relations[fp.rel].name, fp.column)
                })
                .collect();
            out[id].label = format!("probe {{{}}}", cols.join(","));
            out[id].rows = rows;
            out[id].postings = est_postings(&input.params, cb.processing);
            out[id].cost = breakdown_vector(&cb);
            rows
        }
        PlanNode::RelJoin {
            left,
            right,
            preds,
            foreign_residuals,
        } => {
            let lr = walk_estimates(input, left, depth + 1, out);
            let rr = walk_estimates(input, right, depth + 1, out);
            let mut sel = 1.0;
            for &i in preds {
                let p = &input.query.rel_joins[i];
                let dl = *input.base[p.left_rel]
                    .distinct
                    .get(&p.left_col)
                    .unwrap_or(&1.0);
                let dr = *input.base[p.right_rel]
                    .distinct
                    .get(&p.right_col)
                    .unwrap_or(&1.0);
                sel *= join_selectivity(p.op, dl, dr);
            }
            for &i in foreign_residuals {
                sel *= containment_selectivity(input.foreign[i].stats.fanout, input.params.d);
            }
            let rows = lr * rr * sel;
            out[id].label = format!(
                "join preds={} residuals={}",
                preds.len(),
                foreign_residuals.len()
            );
            out[id].rows = rows;
            // Relational matching work lands in the rtp slot, priced
            // exactly as the executor books it: `c_pair`·pairs +
            // `c_a`·residual comparisons.
            out[id].cost.rtp =
                input
                    .rel_model
                    .join_matching(lr, rr, foreign_residuals.len(), input.params.c_a);
            rows
        }
        PlanNode::TextJoin {
            input: child,
            preds,
            method,
            probe_cols,
        } => match child {
            Some(c) => {
                let in_rows = walk_estimates(input, c, depth + 1, out);
                let projection = text_projection(input, preds.len());
                let stats = input.stats_for(in_rows, preds, projection);
                let choices = enumerate_methods(&input.params, &stats, projection, false);
                let cand = choices
                    .iter()
                    .find(|c| c.kind == *method && c.probe_cols == *probe_cols)
                    .or(choices.first());
                let (label, cb) = match cand {
                    Some(c) => (c.label.clone(), c.cost),
                    None => ("?".to_owned(), CostBreakdown::default()),
                };
                let rows = text_join_rows(&input.params, &stats, projection, in_rows);
                out[id].label = format!("text-join {label}");
                out[id].rows = rows;
                out[id].postings = est_postings(&input.params, cb.processing);
                out[id].cost = breakdown_vector(&cb);
                rows
            }
            None => {
                // The text-first seed formula, verbatim from `plan_query`.
                let c = &input.params.constants;
                let mut transmission = c.c_s * input.sel_fanout;
                if input.query.projection == Projection::Full {
                    transmission += c.c_l * input.sel_fanout;
                }
                out[id].label = "text-scan".to_owned();
                out[id].rows = input.sel_fanout;
                out[id].postings = input.sel_postings;
                out[id].cost = CostVector {
                    invocation: c.c_i,
                    processing: c.c_p * input.sel_postings,
                    transmission,
                    rtp: 0.0,
                };
                input.sel_fanout
            }
        },
    }
}

/// Locates the plan's (unique) method-bearing text join, returning its
/// input subtree and predicate set. `None` for text-first plans.
fn find_text_join(plan: &PlanNode) -> Option<(&PlanNode, &[usize])> {
    match plan {
        PlanNode::TextJoin {
            input: Some(c),
            preds,
            ..
        } => Some((c, preds)),
        PlanNode::TextJoin { input: None, .. } | PlanNode::Scan { .. } => None,
        PlanNode::Probe { input, .. } => find_text_join(input),
        PlanNode::RelJoin { left, right, .. } => {
            find_text_join(left).or_else(|| find_text_join(right))
        }
    }
}

/// Re-derives the method menu the planner considered for `plan`'s text
/// join — the candidates sorted cheapest first, exactly as the extension
/// step enumerated them. The counterfactual-regret replay executes every
/// entry; the plan's stored method is the one the planner chose. `None`
/// for text-first plans (a text scan has no method alternatives).
pub fn text_join_candidates(input: &PlannerInput, plan: &PlanNode) -> Option<Vec<MethodCandidate>> {
    let (child, preds) = find_text_join(plan)?;
    let mut scratch = Vec::new();
    let in_rows = walk_estimates(input, child, 0, &mut scratch);
    let projection = text_projection(input, preds.len());
    let stats = input.stats_for(in_rows, preds, projection);
    Some(enumerate_methods(&input.params, &stats, projection, false))
}

/// Clones `plan` with its text join's method swapped — the counterfactual
/// replay tool. `None` when the plan has no method-bearing text join.
pub fn with_text_method(plan: &PlanNode, kind: MethodKind, cols: &[usize]) -> Option<PlanNode> {
    match plan {
        PlanNode::TextJoin {
            input: Some(c),
            preds,
            ..
        } => Some(PlanNode::TextJoin {
            input: Some(c.clone()),
            preds: preds.clone(),
            method: kind,
            probe_cols: cols.to_vec(),
        }),
        PlanNode::TextJoin { input: None, .. } | PlanNode::Scan { .. } => None,
        PlanNode::Probe { input, preds } => with_text_method(input, kind, cols).map(|n| {
            PlanNode::Probe {
                input: Box::new(n),
                preds: preds.clone(),
            }
        }),
        PlanNode::RelJoin {
            left,
            right,
            preds,
            foreign_residuals,
        } => {
            if let Some(l) = with_text_method(left, kind, cols) {
                Some(PlanNode::RelJoin {
                    left: Box::new(l),
                    right: right.clone(),
                    preds: preds.clone(),
                    foreign_residuals: foreign_residuals.clone(),
                })
            } else {
                with_text_method(right, kind, cols).map(|r| PlanNode::RelJoin {
                    left: left.clone(),
                    right: Box::new(r),
                    preds: preds.clone(),
                    foreign_residuals: foreign_residuals.clone(),
                })
            }
        }
    }
}

/// Foreign predicate indices whose relation is inside the mask.
fn preds_in(input: &PlannerInput, mask: u64) -> Vec<usize> {
    (0..input.foreign.len())
        .filter(|&i| mask & (1 << input.query.foreign[i].rel) != 0)
        .collect()
}

/// Probe-set candidates over `avail`, bounded per Theorem 5.3.
fn probe_subsets(input: &PlannerInput, avail: &[usize]) -> Vec<Vec<usize>> {
    let bound = avail.len().min(2 * input.params.g);
    let mut out = Vec::new();
    let k = avail.len();
    assert!(k < 31, "probe enumeration supports at most 30 foreign predicates");
    for mask in 1u32..(1u32 << k) {
        if (mask.count_ones() as usize) <= bound {
            out.push(
                (0..k)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| avail[i])
                    .collect(),
            );
        }
    }
    out
}

/// Wraps `cand` in a probe node on `preds` (global indices), returning the
/// reduced candidate.
fn apply_probe(input: &PlannerInput, cand: &Candidate, preds: &[usize]) -> Candidate {
    let stats = input.stats_for(cand.rows, preds, Projection::RelOnly);
    let local: Vec<usize> = (0..preds.len()).collect();
    let probe_cost = cost_probe_phase(&input.params, &stats, &local).total();
    let survive = probe_success_probability(&input.params, &stats, &local);
    let mut probed = cand.probed;
    for &i in preds {
        probed |= 1 << i;
    }
    Candidate {
        node: PlanNode::Probe {
            input: Box::new(cand.node.clone()),
            preds: preds.to_vec(),
        },
        rows: cand.rows * survive,
        cost: cand.cost + probe_cost,
        probed,
    }
}

/// All candidates for joining relation `r` onto `cand` (alternatives a–d).
fn extend_with_relation(
    input: &PlannerInput,
    cand: &Candidate,
    s: u64,
    r: usize,
    text_bit: u64,
    enable_probes: bool,
) -> Vec<Candidate> {
    let text_joined = s & text_bit != 0;

    // Left-side variants: the plan as-is, plus probed versions (b).
    let mut lefts = vec![cand.clone()];
    if enable_probes && !text_joined {
        let avail: Vec<usize> = preds_in(input, s)
            .into_iter()
            .filter(|&i| cand.probed & (1 << i) == 0)
            .collect();
        for subset in probe_subsets(input, &avail) {
            lefts.push(apply_probe(input, cand, &subset));
        }
    }

    // Right-side variants: scan, plus probed scans (c).
    let scan = Candidate {
        node: PlanNode::Scan { rel: r },
        rows: input.base[r].rows,
        cost: 0.0,
        probed: 0,
    };
    let mut rights = vec![scan.clone()];
    if enable_probes && !text_joined {
        let avail: Vec<usize> = (0..input.foreign.len())
            .filter(|&i| input.query.foreign[i].rel == r)
            .collect();
        for subset in probe_subsets(input, &avail) {
            rights.push(apply_probe(input, &scan, &subset));
        }
    }

    // Join predicates between S and R.
    let join_preds: Vec<usize> = (0..input.query.rel_joins.len())
        .filter(|&i| {
            let p = &input.query.rel_joins[i];
            let lbit = 1u64 << p.left_rel;
            let rbit = 1u64 << p.right_rel;
            (s & lbit != 0 && p.right_rel == r) || (s & rbit != 0 && p.left_rel == r)
        })
        .collect();
    // Foreign residuals: predicates on R evaluable relationally because the
    // text source is already joined.
    let residuals: Vec<usize> = if text_joined {
        (0..input.foreign.len())
            .filter(|&i| input.query.foreign[i].rel == r)
            .collect()
    } else {
        vec![]
    };

    let mut out = Vec::new();
    for l in &lefts {
        for rt in &rights {
            let mut sel = 1.0;
            for &i in &join_preds {
                let p = &input.query.rel_joins[i];
                let dl = *input.base[p.left_rel]
                    .distinct
                    .get(&p.left_col)
                    .unwrap_or(&1.0);
                let dr = *input.base[p.right_rel]
                    .distinct
                    .get(&p.right_col)
                    .unwrap_or(&1.0);
                sel *= join_selectivity(p.op, dl, dr);
            }
            for &i in &residuals {
                sel *= containment_selectivity(input.foreign[i].stats.fanout, input.params.d);
            }
            let rows = l.rows * rt.rows * sel;
            // Price the join as the executor will book it (see
            // `walk_estimates`' RelJoin arm) so the DP's `est_cost` is
            // exact under exact statistics.
            let cost = l.cost
                + rt.cost
                + input
                    .rel_model
                    .join_matching(l.rows, rt.rows, residuals.len(), input.params.c_a);
            out.push(Candidate {
                node: PlanNode::RelJoin {
                    left: Box::new(l.node.clone()),
                    right: Box::new(rt.node.clone()),
                    preds: join_preds.clone(),
                    foreign_residuals: residuals.clone(),
                },
                rows,
                cost,
                probed: l.probed | rt.probed,
            });
        }
    }
    out
}

/// The candidate for joining the text source onto `cand`.
fn extend_with_text(input: &PlannerInput, cand: &Candidate, s: u64) -> Option<Candidate> {
    let preds = preds_in(input, s);
    if preds.is_empty() && input.sel_terms == 0 {
        // A text join with neither predicates nor selections is a cross
        // product with the whole collection — never considered.
        return None;
    }
    // Mirror the executor's projection rule: when foreign predicates on
    // later relations remain, the text join must ship full documents so the
    // residuals can be evaluated relationally (exec.rs::text_join_projection
    // applies the same rule — estimates and execution must agree).
    let projection = if preds.len() < input.foreign.len() {
        Projection::Full
    } else {
        input.query.projection
    };
    let stats = input.stats_for(cand.rows, &preds, projection);
    let choices = enumerate_methods(&input.params, &stats, projection, false);
    let rows = text_join_rows(&input.params, &stats, projection, cand.rows);
    // Record the method menu for final-position text joins (every relation
    // already in the plan): one event per candidate, cheapest flagged
    // chosen. Earlier-position decisions are skipped to keep traces small.
    let n = input.query.relations.len();
    if let Some(rec) = input.obs.as_ref() {
        if (0..n).all(|r| s & (1 << r) != 0) {
            for (idx, c) in choices.iter().enumerate() {
                rec.emit(EventKind::Planner(PlannerChoice {
                    label: c.label.clone(),
                    chosen: idx == 0,
                    probe_cols: c.probe_cols.clone(),
                    invocation: c.cost.invocation,
                    processing: c.cost.processing,
                    transmission: c.cost.transmission,
                    rtp: c.cost.rtp,
                    searches: c.cost.searches,
                    est_rows: rows,
                    est_postings: est_postings(&input.params, c.cost.processing),
                    effective_c_i: input.params.effective_c_i(),
                }));
            }
        }
    }
    let best = choices.first()?;
    Some(Candidate {
        node: PlanNode::TextJoin {
            input: Some(Box::new(cand.node.clone())),
            preds: preds.clone(),
            method: best.kind,
            probe_cols: best.probe_cols.clone(),
        },
        rows,
        cost: cand.cost + best.cost.total(),
        probed: cand.probed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::plan::{ForeignSpec, RelJoinPred, RelSpec};
    use textjoin_rel::expr::{CmpOp, Pred};
    use textjoin_rel::schema::RelSchema;
    use textjoin_rel::table::Table;
    use textjoin_rel::tuple;
    use textjoin_rel::value::ValueType;
    use textjoin_text::doc::{Document, TextSchema};
    use textjoin_text::index::Collection;
    use textjoin_text::server::TextServer;

    /// Q5 fixture: students and faculty, papers in a given year.
    fn fixture() -> (Catalog, TextServer) {
        let mut catalog = Catalog::new();
        let sschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut student = Table::new("student", sschema);
        // Many students, few of whom write papers.
        for i in 0..30 {
            student.push(tuple![format!("Student{i}"), "CS"]);
        }
        student.push(tuple!["Gravano", "CS"]);
        student.push(tuple!["Kao", "EE"]);
        catalog.register(student);

        let fschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut faculty = Table::new("faculty", fschema);
        faculty.push(tuple!["Garcia", "EE"]);
        faculty.push(tuple!["Dayal", "CS"]);
        catalog.register(faculty);

        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let yr = schema.field_by_name("year").unwrap();
        let mut coll = Collection::new(schema);
        coll.add_document(
            Document::new()
                .with(ti, "joint work")
                .with(au, "Gravano")
                .with(au, "Garcia")
                .with(yr, "May 1993"),
        );
        coll.add_document(
            Document::new()
                .with(ti, "solo work")
                .with(au, "Kao")
                .with(yr, "May 1993"),
        );
        coll.add_document(
            Document::new()
                .with(ti, "older work")
                .with(au, "Dayal")
                .with(yr, "May 1990"),
        );
        (catalog, TextServer::new(coll))
    }

    fn q5() -> MultiJoinQuery {
        MultiJoinQuery {
            relations: vec![
                RelSpec {
                    name: "student".into(),
                    local_pred: Pred::True,
                },
                RelSpec {
                    name: "faculty".into(),
                    local_pred: Pred::True,
                },
            ],
            rel_joins: vec![RelJoinPred {
                left_rel: 0,
                left_col: "dept".into(),
                op: CmpOp::Ne,
                right_rel: 1,
                right_col: "dept".into(),
            }],
            selections: vec![("1993".into(), "year".into())],
            foreign: vec![
                ForeignSpec {
                    rel: 0,
                    column: "name".into(),
                    field: "author".into(),
                },
                ForeignSpec {
                    rel: 1,
                    column: "name".into(),
                    field: "author".into(),
                },
            ],
            projection: Projection::Full,
        }
    }

    fn gather(q: &MultiJoinQuery) -> PlannerInput {
        let (catalog, server) = fixture();
        let export = server.export_stats();
        let params = CostParams::mercury(server.doc_count() as f64);
        PlannerInput::gather(q, &catalog, &export, server.collection().schema(), params)
            .unwrap()
    }

    #[test]
    fn gather_collects_stats() {
        let input = gather(&q5());
        assert_eq!(input.base.len(), 2);
        assert_eq!(input.base[0].rows, 32.0);
        assert_eq!(input.foreign.len(), 2);
        // 2 of 32 student names appear as authors.
        assert!((input.foreign[0].stats.selectivity - 2.0 / 32.0).abs() < 1e-9);
        assert_eq!(input.sel_terms, 1);
        assert_eq!(input.sel_fanout, 2.0); // two 1993 docs
    }

    #[test]
    fn plans_are_valid_prl() {
        let input = gather(&q5());
        let planned = plan_query(&input, ExecutionSpace::Prl).unwrap();
        assert!(planned.plan.is_valid_prl());
        assert!(planned.plan.has_text_join());
        assert_eq!(planned.plan.relations(), vec![0, 1]);
    }

    #[test]
    fn prl_space_never_worse_than_left_deep() {
        let input = gather(&q5());
        let prl = plan_query(&input, ExecutionSpace::Prl).unwrap();
        let ld = plan_query(&input, ExecutionSpace::LeftDeep).unwrap();
        assert!(
            prl.est_cost <= ld.est_cost + 1e-9,
            "PrL {:.2} must not exceed left-deep {:.2}",
            prl.est_cost,
            ld.est_cost
        );
        assert_eq!(ld.plan.probe_count(), 0, "baseline has no probes");
    }

    #[test]
    fn example_6_1_probe_reduces_student_before_faculty_join() {
        // Example 6.1's setting: large student and faculty relations, a
        // low-selectivity relational predicate (dept !=), and few students
        // who write papers. Without a text selection, the traditional
        // left-deep plan must join student × faculty first (a huge
        // intermediate) and then run the foreign join over it; the PrL
        // plan probes student down to the few publishing students first.
        let (mut catalog, server) = fixture();
        let sschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut student = Table::new("student", sschema.clone());
        for i in 0..500 {
            student.push(tuple![format!("Student{i}"), format!("D{}", i % 5)]);
        }
        student.push(tuple!["Gravano", "CS"]);
        catalog.register(student);
        let mut faculty = Table::new("faculty", sschema);
        for i in 0..500 {
            faculty.push(tuple![format!("Prof{i}"), format!("D{}", i % 5)]);
        }
        faculty.push(tuple!["Garcia", "EE"]);
        catalog.register(faculty);

        let mut q = q5();
        q.selections.clear(); // no cheap RTP shortcut
        let export = server.export_stats();
        let params = CostParams::mercury(server.doc_count() as f64);
        let mut input = PlannerInput::gather(
            &q,
            &catalog,
            &export,
            server.collection().schema(),
            params,
        )
        .unwrap();
        // A per-pair cost representative of the OpenODB-era nested loop:
        // joining 501 × 501 tuples is NOT free, which is what makes
        // reducing student before the join worthwhile.
        input.rel_model.c_pair = 1e-3;

        let prl = plan_query(&input, ExecutionSpace::Prl).unwrap();
        let ld = plan_query(&input, ExecutionSpace::LeftDeep).unwrap();
        assert!(
            prl.plan.probe_count() >= 1,
            "plan should probe:\n{}",
            prl.plan.display(&input.query)
        );
        assert!(
            prl.est_cost < ld.est_cost,
            "probing must pay off: PrL {:.1} vs LD {:.1}",
            prl.est_cost,
            ld.est_cost
        );
    }

    #[test]
    fn text_first_plan_available_with_selections() {
        // If the selection is extremely selective and relations are huge,
        // scanning the text first can win.
        let input = gather(&q5());
        // The planner must at least *have* the text-first seed.
        let n = input.query.relations.len();
        let text_bit = 1u64 << n;
        let mut best: HashMap<u64, Vec<Candidate>> = HashMap::new();
        let _ = (&mut best, text_bit);
        let planned = plan_query(&input, ExecutionSpace::Prl).unwrap();
        // Sanity: whatever wins, cost is positive and finite.
        assert!(planned.est_cost.is_finite() && planned.est_cost > 0.0);
    }

    #[test]
    fn single_relation_multijoin_reduces_to_single_join() {
        let mut q = q5();
        q.relations.truncate(1);
        q.rel_joins.clear();
        q.foreign.truncate(1);
        let input = gather(&q);
        let planned = plan_query(&input, ExecutionSpace::Prl).unwrap();
        assert!(matches!(planned.plan, PlanNode::TextJoin { .. }));
    }

    #[test]
    fn pareto_insert_dominance() {
        let mk = |cost: f64, rows: f64| Candidate {
            node: PlanNode::Scan { rel: 0 },
            rows,
            cost,
            probed: 0,
        };
        let mut set = Vec::new();
        pareto_insert(&mut set, mk(10.0, 100.0));
        pareto_insert(&mut set, mk(20.0, 50.0)); // incomparable: kept
        assert_eq!(set.len(), 2);
        pareto_insert(&mut set, mk(15.0, 200.0)); // dominated by first
        assert_eq!(set.len(), 2);
        pareto_insert(&mut set, mk(5.0, 40.0)); // dominates both
        assert_eq!(set.len(), 1);
    }
}
