//! Single-join optimization — paper, Section 5.
//!
//! Choosing a plan for one relation ⋈ text reduces to (1) costing every
//! applicable method with the Section 4 formulas and (2), for the probing
//! family, choosing the probe column set. The probe-column search comes in
//! two flavors:
//!
//! * [`optimal_probe_exhaustive`] — all `2^k − 1` non-empty subsets;
//! * [`optimal_probe_bounded`] — only subsets of size ≤ `min(k, 2g)`,
//!   justified by Theorem 5.3 (for 1-correlated cost models the optimal
//!   probe has at most 2 columns; generalized, at most `min(k, 2g)`).
//!
//! The formulas price every invocation at `CostParams::effective_c_i`,
//! which folds both the session's fault model and the scatter fan-out.
//! Against a sharded service with stats-aware routing on, the caller must
//! set the *pruned* fan-out (`with_scatter_fanout`) so the candidates here
//! are ranked by the same invoice the executor's scatter paths will
//! actually charge — see `plan_and_execute_with` for the lockstep fold.

use crate::cost::formulas::{
    cost_p_rtp, cost_p_ts, cost_rtp, cost_sj, cost_ts, CostBreakdown,
};
use crate::cost::params::{CostParams, JoinStatistics};
use crate::methods::Projection;

/// Which executable method a candidate names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Tuple substitution (distinct variant).
    Ts,
    /// Relational text processing.
    Rtp,
    /// Semi-join (pure, docids projection) or SJ+RTP otherwise.
    Sj,
    /// Probing + tuple substitution.
    PTs,
    /// Probing + relational text processing.
    PRtp,
}

/// A costed candidate plan for the single join.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCandidate {
    /// Which method.
    pub kind: MethodKind,
    /// Display label (`"TS"`, `"P1+TS"`, `"SJ+RTP"`, …).
    pub label: String,
    /// Probe predicate indices (empty for non-probing methods).
    pub probe_cols: Vec<usize>,
    /// The cost estimate.
    pub cost: CostBreakdown,
}

/// Enumerates all non-empty subsets of `0..k` with at most `max_size`
/// elements.
fn subsets_up_to(k: usize, max_size: usize) -> Vec<Vec<usize>> {
    assert!(k < 31, "probe-column enumeration supports at most 30 predicates");
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << k) {
        if (mask.count_ones() as usize) <= max_size {
            let subset: Vec<usize> = (0..k).filter(|&i| mask & (1 << i) != 0).collect();
            out.push(subset);
        }
    }
    out
}

/// Finds the cheapest probe set by exhaustive `O(2^k)` search, under the
/// cost function `f` (e.g. [`cost_p_ts`] or [`cost_p_rtp`]).
pub fn optimal_probe_exhaustive(
    p: &CostParams,
    s: &JoinStatistics,
    f: impl Fn(&CostParams, &JoinStatistics, &[usize]) -> CostBreakdown,
) -> Option<(Vec<usize>, CostBreakdown)> {
    best_subset(subsets_up_to(s.k(), s.k()), p, s, f)
}

/// Finds the cheapest probe set searching only subsets of size
/// ≤ `min(k, 2g)` — the Theorem 5.3 bound, `O(k^(2g))` instead of `O(2^k)`.
pub fn optimal_probe_bounded(
    p: &CostParams,
    s: &JoinStatistics,
    f: impl Fn(&CostParams, &JoinStatistics, &[usize]) -> CostBreakdown,
) -> Option<(Vec<usize>, CostBreakdown)> {
    let bound = s.k().min(2 * p.g);
    best_subset(subsets_up_to(s.k(), bound), p, s, f)
}

fn best_subset(
    candidates: Vec<Vec<usize>>,
    p: &CostParams,
    s: &JoinStatistics,
    f: impl Fn(&CostParams, &JoinStatistics, &[usize]) -> CostBreakdown,
) -> Option<(Vec<usize>, CostBreakdown)> {
    let rank = |c: &CostBreakdown| p.rank(c.invocation, c.processing, c.transmission, c.rtp);
    candidates
        .into_iter()
        .map(|subset| {
            let c = f(p, s, &subset);
            (subset, c)
        })
        .min_by(|a, b| {
            rank(&a.1)
                .partial_cmp(&rank(&b.1))
                .expect("costs are finite")
                // Tie-break on fewer probe columns (cheaper bookkeeping).
                .then(a.0.len().cmp(&b.0.len()))
        })
}

fn probe_label(prefix: &str, cols: &[usize], suffix: &str) -> String {
    let s: Vec<String> = cols.iter().map(|i| (i + 1).to_string()).collect();
    format!("{prefix}{}+{suffix}", s.join(""))
}

/// Costs every applicable method for the join, using the bounded
/// probe-column search (pass `exhaustive_probe = true` for the `O(2^k)`
/// ablation). Candidates are returned sorted cheapest-first.
pub fn enumerate_methods(
    p: &CostParams,
    s: &JoinStatistics,
    projection: Projection,
    exhaustive_probe: bool,
) -> Vec<MethodCandidate> {
    let mut out = Vec::new();
    let has_joins = s.k() > 0;

    if has_joins {
        out.push(MethodCandidate {
            kind: MethodKind::Ts,
            label: "TS".into(),
            probe_cols: vec![],
            cost: cost_ts(p, s),
        });
    }
    if let Some(c) = cost_rtp(p, s) {
        out.push(MethodCandidate {
            kind: MethodKind::Rtp,
            label: "RTP".into(),
            probe_cols: vec![],
            cost: c,
        });
    }
    if has_joins {
        let rtp_completion = projection != Projection::DocIds;
        if let Some(c) = cost_sj(p, s, rtp_completion) {
            out.push(MethodCandidate {
                kind: MethodKind::Sj,
                label: if rtp_completion { "SJ+RTP" } else { "SJ" }.into(),
                probe_cols: vec![],
                cost: c,
            });
        }
        let search = |f: fn(&CostParams, &JoinStatistics, &[usize]) -> CostBreakdown| {
            if exhaustive_probe {
                optimal_probe_exhaustive(p, s, f)
            } else {
                optimal_probe_bounded(p, s, f)
            }
        };
        if let Some((cols, c)) = search(cost_p_ts) {
            out.push(MethodCandidate {
                kind: MethodKind::PTs,
                label: probe_label("P", &cols, "TS"),
                probe_cols: cols,
                cost: c,
            });
        }
        if let Some((cols, c)) = search(cost_p_rtp) {
            out.push(MethodCandidate {
                kind: MethodKind::PRtp,
                label: probe_label("P", &cols, "RTP"),
                probe_cols: cols,
                cost: c,
            });
        }
    }
    // Without a deadline `rank` is exactly `total()` — the pre-deadline
    // ordering, byte for byte. Under a deadline, methods whose heavy work
    // parallelizes across shards rank ahead at equal total charge.
    let rank =
        |c: &CostBreakdown| p.rank(c.invocation, c.processing, c.transmission, c.rtp);
    out.sort_by(|a, b| {
        rank(&a.cost)
            .partial_cmp(&rank(&b.cost))
            .expect("costs are finite")
    });
    out
}

/// Picks the cheapest applicable method.
pub fn choose_method(
    p: &CostParams,
    s: &JoinStatistics,
    projection: Projection,
) -> Option<MethodCandidate> {
    enumerate_methods(p, s, projection, false).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::params::PredStats;
    use textjoin_text::server::CostConstants;

    fn base() -> (CostParams, JoinStatistics) {
        let p = CostParams::mercury(10_000.0);
        let s = JoinStatistics {
            n: 100.0,
            n_k: 100.0,
            preds: vec![
                PredStats::simple(0.16, 2.0, 20.0),
                PredStats::simple(0.80, 5.0, 80.0),
            ],
            sel_fanout: 10_000.0,
            sel_postings: 0.0,
            sel_terms: 0,
            needs_long: true,
            short_form_sufficient: true,
        };
        (p, s)
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_up_to(3, 3).len(), 7);
        assert_eq!(subsets_up_to(3, 1).len(), 3);
        assert_eq!(subsets_up_to(3, 2).len(), 6);
        assert_eq!(subsets_up_to(0, 2).len(), 0);
    }

    #[test]
    fn theorem_5_3_bound_matches_exhaustive_for_g1() {
        // For 1-correlated cost models the exhaustive optimum is always a
        // subset of ≤ 2 columns — sweep a grid of parameters and check.
        let d = 10_000.0;
        for n1 in [5.0, 50.0, 500.0] {
            for s1 in [0.01, 0.2, 0.9] {
                for f1 in [1.0, 10.0] {
                    let p = CostParams::mercury(d); // g = 1
                    let s = JoinStatistics {
                        n: 1000.0,
                        n_k: 1000.0,
                        preds: vec![
                            PredStats::simple(s1, f1, n1),
                            PredStats::simple(0.5, 3.0, 40.0),
                            PredStats::simple(0.05, 8.0, 300.0),
                            PredStats::simple(0.7, 1.5, 10.0),
                        ],
                        sel_fanout: d,
                        sel_postings: 0.0,
                        sel_terms: 0,
                        needs_long: false,
                        short_form_sufficient: true,
                    };
                    let (ec, e) =
                        optimal_probe_exhaustive(&p, &s, crate::cost::formulas::cost_p_ts)
                            .unwrap();
                    let (bc, b) = optimal_probe_bounded(&p, &s, crate::cost::formulas::cost_p_ts)
                        .unwrap();
                    assert!(
                        (e.total() - b.total()).abs() < 1e-9,
                        "bounded search missed optimum: {ec:?} ({}) vs {bc:?} ({})",
                        e.total(),
                        b.total()
                    );
                    assert!(ec.len() <= 2, "g=1 optimum uses ≤2 columns, got {ec:?}");
                }
            }
        }
    }

    #[test]
    fn example_5_2_multi_column_probe_dominates() {
        // Paper Example 5.2: product (fully independent) selectivity model,
        // invocation cost only; a 2-column probe beats every 1-column probe.
        let mut p = CostParams::mercury(1e6).with_g(3);
        p.constants = CostConstants {
            c_i: 1.0,
            c_p: 0.0,
            c_s: 0.0,
            c_l: 0.0,
        };
        let s = JoinStatistics {
            n: 1e5,
            n_k: 1e5,
            preds: vec![
                PredStats::simple(0.005, 1.0, 1e3),
                PredStats::simple(0.01, 1.0, 10.0),
                PredStats::simple(0.01, 1.0, 10.0),
            ],
            sel_fanout: 1e6,
            sel_postings: 0.0,
            sel_terms: 0,
            needs_long: false,
            short_form_sufficient: true,
        };
        let best1 = subsets_up_to(3, 1)
            .into_iter()
            .map(|j| crate::cost::formulas::cost_p_ts(&p, &s, &j).total())
            .fold(f64::INFINITY, f64::min);
        let (cols, best) =
            optimal_probe_exhaustive(&p, &s, crate::cost::formulas::cost_p_ts).unwrap();
        assert!(cols.len() == 2, "optimal probe is 2-column: {cols:?}");
        assert!(best.total() < best1);
        // And the bounded search (min(k, 2g) = 3) finds it too.
        let (_, b) = optimal_probe_bounded(&p, &s, crate::cost::formulas::cost_p_ts).unwrap();
        assert!((b.total() - best.total()).abs() < 1e-9);
    }

    #[test]
    fn example_5_1_optimal_column_not_most_selective() {
        // Invocation-only model: probe column choice trades N_i against
        // s_i·N — the most selective column is not automatically best.
        let mut p = CostParams::mercury(1e6);
        p.constants = CostConstants {
            c_i: 1.0,
            c_p: 0.0,
            c_s: 0.0,
            c_l: 0.0,
        };
        let s = JoinStatistics {
            n: 1000.0,
            n_k: 1000.0,
            preds: vec![
                // More selective but many distinct values: 900 + 0.1·1000 = 1000.
                PredStats::simple(0.10, 1.0, 900.0),
                // Less selective but few distinct values: 10 + 0.2·1000 = 210.
                PredStats::simple(0.20, 1.0, 10.0),
            ],
            sel_fanout: 1e6,
            sel_postings: 0.0,
            sel_terms: 0,
            needs_long: false,
            short_form_sufficient: true,
        };
        let c0 = crate::cost::formulas::cost_p_ts(&p, &s, &[0]).total();
        let c1 = crate::cost::formulas::cost_p_ts(&p, &s, &[1]).total();
        assert!(
            c1 < c0,
            "column 2 (s=0.2, N_2=10) must beat column 1 (s=0.1, N_1=900): {c1} vs {c0}"
        );
    }

    #[test]
    fn enumerate_sorted_and_labeled() {
        let (p, mut s) = base();
        s.sel_terms = 1;
        s.sel_fanout = 8.0;
        s.sel_postings = 8.0;
        let cands = enumerate_methods(&p, &s, Projection::Full, false);
        assert!(cands.len() >= 4);
        for w in cands.windows(2) {
            assert!(w[0].cost.total() <= w[1].cost.total());
        }
        let labels: Vec<&str> = cands.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"TS"));
        assert!(labels.contains(&"RTP"));
        assert!(labels.contains(&"SJ+RTP"));
        assert!(labels.iter().any(|l| l.starts_with('P') && l.ends_with("TS")));
    }

    #[test]
    fn rtp_absent_without_selections() {
        let (p, s) = base();
        let cands = enumerate_methods(&p, &s, Projection::Full, false);
        assert!(cands.iter().all(|c| c.kind != MethodKind::Rtp));
    }

    #[test]
    fn docids_projection_gets_pure_sj() {
        let (p, mut s) = base();
        s.needs_long = false;
        let cands = enumerate_methods(&p, &s, Projection::DocIds, false);
        let sj = cands.iter().find(|c| c.kind == MethodKind::Sj).unwrap();
        assert_eq!(sj.label, "SJ");
    }

    #[test]
    fn choose_picks_cheapest() {
        let (p, mut s) = base();
        s.sel_terms = 1;
        s.sel_fanout = 8.0; // very selective text selection → RTP should win
        s.sel_postings = 8.0;
        let best = choose_method(&p, &s, Projection::Full).unwrap();
        let all = enumerate_methods(&p, &s, Projection::Full, false);
        assert_eq!(best, all[0]);
        // With a selective selection, a relational-processing method (RTP
        // or SJ+RTP, which also exploits it) must beat plain TS.
        assert_ne!(best.kind, MethodKind::Ts);
        let rtp = all.iter().find(|c| c.kind == MethodKind::Rtp).unwrap();
        let ts = all.iter().find(|c| c.kind == MethodKind::Ts).unwrap();
        assert!(rtp.cost.total() < ts.cost.total(), "RTP beats TS at Q1-like params");
    }

    #[test]
    fn exhaustive_flag_never_worse() {
        let (p, s) = base();
        let bounded = enumerate_methods(&p, &s, Projection::Full, false);
        let exhaustive = enumerate_methods(&p, &s, Projection::Full, true);
        let b = bounded.first().unwrap().cost.total();
        let e = exhaustive.first().unwrap().cost.total();
        assert!(e <= b + 1e-9);
    }
}
