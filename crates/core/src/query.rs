//! The single-join query model (paper, Section 2.2 / 2.3).
//!
//! A conjunctive query over one stored relation and the text source:
//! local selection conditions on the relation, constant text selections,
//! and foreign join predicates `rel.col in text.field`. (Multi-relation
//! queries live in [`crate::optimizer::multi`].)
//!
//! The paper's Q1, by way of example, is expressed as:
//!
//! ```text
//! SingleJoinQuery {
//!     relation: "student",
//!     local_pred: area = 'AI' and year > 3,
//!     selections: [("belief update", "title")],
//!     join: [("name", "author")],
//!     projection: Full,
//! }
//! ```

use std::fmt;

use textjoin_rel::catalog::Catalog;
use textjoin_rel::expr::Pred;
use textjoin_rel::ops::{distinct_count_multi, filter};
use textjoin_rel::schema::ColId;
use textjoin_rel::table::Table;
use textjoin_text::doc::{FieldId, TextSchema};
use textjoin_text::service::TextService;
use textjoin_text::stats::VocabularyStats;

use crate::cost::params::JoinStatistics;
use crate::methods::{ForeignJoin, Projection, TextSelection};
use crate::stats::{export_predicate, export_selections, sample_predicate};

/// A declarative single-join query, with names resolved at
/// [`prepare`] time.
#[derive(Debug, Clone)]
pub struct SingleJoinQuery {
    /// The joining relation's catalog name.
    pub relation: String,
    /// Local selection on the relation.
    pub local_pred: Pred,
    /// Constant text selections `(term, field name)`.
    pub selections: Vec<(String, String)>,
    /// Foreign join predicates `(relation column, text field)`.
    pub join: Vec<(String, String)>,
    /// What the query projects.
    pub projection: Projection,
}

/// Name-resolution / preparation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Relation not in the catalog.
    UnknownRelation(String),
    /// Column not in the relation's schema.
    UnknownColumn(String),
    /// Field not in the text schema.
    UnknownField(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            QueryError::UnknownField(x) => write!(f, "unknown text field {x:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A prepared query: the relation filtered by its local predicate, with
/// every name resolved. Owns the filtered table so the borrowed
/// [`ForeignJoin`] spec can be derived repeatedly (once per candidate
/// method).
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The locally filtered relation.
    pub filtered: Table,
    /// Resolved join columns (into `filtered`'s schema).
    pub join_cols: Vec<ColId>,
    /// Resolved joined fields.
    pub join_fields: Vec<FieldId>,
    /// Resolved text selections.
    pub selections: Vec<TextSelection>,
    /// The projection.
    pub projection: Projection,
}

/// Resolves names and applies the local selection.
pub fn prepare(
    q: &SingleJoinQuery,
    catalog: &Catalog,
    text_schema: &TextSchema,
) -> Result<PreparedQuery, QueryError> {
    let table = catalog
        .table(&q.relation)
        .ok_or_else(|| QueryError::UnknownRelation(q.relation.clone()))?;
    let mut join_cols = Vec::with_capacity(q.join.len());
    let mut join_fields = Vec::with_capacity(q.join.len());
    for (col, field) in &q.join {
        join_cols.push(
            table
                .schema()
                .column_by_name(col)
                .ok_or_else(|| QueryError::UnknownColumn(col.clone()))?,
        );
        join_fields.push(
            text_schema
                .resolve(field)
                .ok_or_else(|| QueryError::UnknownField(field.clone()))?,
        );
    }
    let selections = q
        .selections
        .iter()
        .map(|(term, field)| {
            Ok(TextSelection {
                term: term.clone(),
                field: text_schema
                    .resolve(field)
                    .ok_or_else(|| QueryError::UnknownField(field.clone()))?,
            })
        })
        .collect::<Result<Vec<_>, QueryError>>()?;
    let mut filtered = filter(table, &q.local_pred);
    filtered.set_name(q.relation.clone());
    Ok(PreparedQuery {
        filtered,
        join_cols,
        join_fields,
        selections,
        projection: q.projection,
    })
}

impl PreparedQuery {
    /// The [`ForeignJoin`] spec over the filtered relation.
    pub fn foreign_join(&self) -> ForeignJoin<'_> {
        ForeignJoin {
            rel: &self.filtered,
            join_cols: self.join_cols.clone(),
            join_fields: self.join_fields.clone(),
            selections: self.selections.clone(),
            projection: self.projection,
        }
    }

    /// Gathers [`JoinStatistics`] from the server's free statistics export
    /// (Section 8 path).
    pub fn statistics_from_export(
        &self,
        export: &VocabularyStats,
        text_schema: &TextSchema,
    ) -> JoinStatistics {
        let preds = self
            .join_cols
            .iter()
            .zip(&self.join_fields)
            .map(|(&c, &f)| export_predicate(export, &self.filtered, c, f))
            .collect();
        let (sel_fanout, sel_postings, sel_terms) = export_selections(export, &self.selections);
        self.assemble(preds, sel_fanout, sel_postings, sel_terms, text_schema)
    }

    /// Gathers [`JoinStatistics`] by sampling against the live server
    /// (Section 4.2 path). The sampling searches are charged to the server
    /// — measure them separately from query execution.
    pub fn statistics_by_sampling(
        &self,
        server: &dyn TextService,
        sample_size: usize,
    ) -> Result<JoinStatistics, textjoin_text::server::TextError> {
        let text_schema = server.schema();
        let mut preds = Vec::with_capacity(self.join_cols.len());
        for (&c, &f) in self.join_cols.iter().zip(&self.join_fields) {
            preds.push(sample_predicate(server, &self.filtered, c, f, sample_size)?);
        }
        // Selections are constant: one search answers them exactly.
        let (sel_fanout, sel_postings) = if self.selections.is_empty() {
            (server.doc_count() as f64, 0.0)
        } else {
            let expr = self
                .foreign_join()
                .selections_expr()
                .expect("selections non-empty");
            let before = server.usage();
            let result = server.search(&expr)?;
            let delta = server.usage().since(&before);
            (result.len() as f64, delta.postings_processed as f64)
        };
        Ok(self.assemble(
            preds,
            sel_fanout,
            sel_postings,
            self.selections.len(),
            text_schema,
        ))
    }

    fn assemble(
        &self,
        preds: Vec<crate::cost::params::PredStats>,
        sel_fanout: f64,
        sel_postings: f64,
        sel_terms: usize,
        text_schema: &TextSchema,
    ) -> JoinStatistics {
        let fj = self.foreign_join();
        JoinStatistics {
            n: self.filtered.len() as f64,
            n_k: distinct_count_multi(&self.filtered, &self.join_cols) as f64,
            preds,
            sel_fanout,
            sel_postings,
            sel_terms,
            needs_long: self.projection == Projection::Full,
            short_form_sufficient: fj.short_form_sufficient(text_schema),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testkit::{corpus, student};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(student());
        c
    }

    fn q1_like() -> SingleJoinQuery {
        SingleJoinQuery {
            relation: "student".into(),
            local_pred: Pred::eq(ColId(2), "db"), // area = 'db'
            selections: vec![("text".into(), "title".into())],
            join: vec![("name".into(), "author".into())],
            projection: Projection::Full,
        }
    }

    #[test]
    fn prepare_resolves_and_filters() {
        let server = corpus();
        let p = prepare(&q1_like(), &catalog(), server.collection().schema()).unwrap();
        assert_eq!(p.filtered.len(), 2, "two db students");
        assert_eq!(p.join_cols.len(), 1);
        let fj = p.foreign_join();
        assert_eq!(fj.k(), 1);
    }

    #[test]
    fn prepare_rejects_unknown_names() {
        let server = corpus();
        let ts = server.collection().schema();
        let mut q = q1_like();
        q.relation = "nope".into();
        assert!(matches!(
            prepare(&q, &catalog(), ts),
            Err(QueryError::UnknownRelation(_))
        ));
        let mut q = q1_like();
        q.join[0].0 = "nope".into();
        assert!(matches!(
            prepare(&q, &catalog(), ts),
            Err(QueryError::UnknownColumn(_))
        ));
        let mut q = q1_like();
        q.selections[0].1 = "nope".into();
        assert!(matches!(
            prepare(&q, &catalog(), ts),
            Err(QueryError::UnknownField(_))
        ));
    }

    #[test]
    fn field_aliases_resolve() {
        let server = corpus();
        let ts = server.collection().schema();
        let mut q = q1_like();
        q.join[0].1 = "AU".into();
        q.selections[0].1 = "TI".into();
        assert!(prepare(&q, &catalog(), ts).is_ok());
    }

    #[test]
    fn statistics_paths_agree() {
        let server = corpus();
        let ts = server.collection().schema();
        let p = prepare(&q1_like(), &catalog(), ts).unwrap();
        let export = server.export_stats();
        let a = p.statistics_from_export(&export, ts);
        let b = p.statistics_by_sampling(&server, 100).unwrap();
        assert_eq!(a.n, 2.0);
        assert_eq!(a.n_k, 2.0);
        assert!((a.preds[0].selectivity - b.preds[0].selectivity).abs() < 1e-9);
        assert!((a.sel_fanout - b.sel_fanout).abs() < 1e-9);
        assert!(a.needs_long);
        assert!(a.short_form_sufficient);
    }
}
