//! The probe cache — paper, Section 3.3.
//!
//! Probing remembers, per query execution, which probe keys (join-column
//! value combinations) are known to fail or succeed, "so that no duplicate
//! probes are sent". The same structure serves the plain fail-query cache
//! the paper mentions for tuple substitution.
//!
//! Entries are keyed by the **topology epoch** the outcome was observed at
//! as well as the probe-key values: an online migration batch committing
//! mid-execution re-routes docids, so an outcome proved against the old
//! routing must not prune under the new one. A bumped epoch therefore
//! *misses* (the probe is re-sent and re-recorded at the new epoch) rather
//! than clearing the cache — single servers never change topology, so
//! their epoch is constantly 0 and behavior is unchanged.

use std::collections::HashMap;

/// Outcome recorded for a probe key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The probe (or a query implying it) matched at least one document.
    Success,
    /// The probe returned no matching documents — every query agreeing on
    /// the probe columns is a fail-query.
    Fail,
}

/// A per-execution cache from (topology epoch, probe-key values) to
/// outcomes.
#[derive(Debug, Default)]
pub struct ProbeCache {
    entries: HashMap<u64, HashMap<Vec<String>, ProbeOutcome>>,
    hits: u64,
    misses: u64,
}

impl ProbeCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a key at `epoch`, recording a hit or miss. An outcome
    /// recorded at a different epoch is invisible: routing may have moved
    /// the documents it was proved against.
    pub fn lookup(&mut self, epoch: u64, key: &[String]) -> Option<ProbeOutcome> {
        match self.entries.get(&epoch).and_then(|e| e.get(key)) {
            Some(&o) => {
                self.hits += 1;
                Some(o)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records an outcome for a key at `epoch`. Later records overwrite
    /// earlier ones (a success learned from a full query upgrades a
    /// pending state).
    pub fn record(&mut self, epoch: u64, key: Vec<String>, outcome: ProbeOutcome) {
        self.entries.entry(epoch).or_default().insert(key, outcome);
    }

    /// Number of cached keys, over all epochs.
    pub fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_record() {
        let mut c = ProbeCache::new();
        let key = vec!["garcia".to_owned()];
        assert_eq!(c.lookup(0, &key), None);
        c.record(0, key.clone(), ProbeOutcome::Fail);
        assert_eq!(c.lookup(0, &key), Some(ProbeOutcome::Fail));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn overwrite_upgrades() {
        let mut c = ProbeCache::new();
        let key = vec!["x".to_owned(), "y".to_owned()];
        c.record(0, key.clone(), ProbeOutcome::Fail);
        c.record(0, key.clone(), ProbeOutcome::Success);
        assert_eq!(c.lookup(0, &key), Some(ProbeOutcome::Success));
    }

    #[test]
    fn multi_column_keys_distinct() {
        let mut c = ProbeCache::new();
        c.record(0, vec!["a".into(), "b".into()], ProbeOutcome::Fail);
        assert_eq!(c.lookup(0, &["a".to_owned()]), None);
        assert_eq!(
            c.lookup(0, &["a".to_owned(), "b".to_owned()]),
            Some(ProbeOutcome::Fail)
        );
    }

    #[test]
    fn epoch_bump_misses_without_clearing() {
        let mut c = ProbeCache::new();
        let key = vec!["garcia".to_owned()];
        c.record(3, key.clone(), ProbeOutcome::Fail);
        // A migration commit bumped the epoch: the stale fail-entry must
        // not prune against the new routing.
        assert_eq!(c.lookup(4, &key), None);
        // The old entry survives (a still-in-flight gather pinned at the
        // old epoch keeps its pruning power).
        assert_eq!(c.lookup(3, &key), Some(ProbeOutcome::Fail));
        c.record(4, key.clone(), ProbeOutcome::Success);
        assert_eq!(c.lookup(4, &key), Some(ProbeOutcome::Success));
        assert_eq!(c.len(), 2);
    }
}
