//! The probe cache — paper, Section 3.3.
//!
//! Probing remembers, per query execution, which probe keys (join-column
//! value combinations) are known to fail or succeed, "so that no duplicate
//! probes are sent". The same structure serves the plain fail-query cache
//! the paper mentions for tuple substitution.

use std::collections::HashMap;

/// Outcome recorded for a probe key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The probe (or a query implying it) matched at least one document.
    Success,
    /// The probe returned no matching documents — every query agreeing on
    /// the probe columns is a fail-query.
    Fail,
}

/// A per-execution cache from probe-key values to outcomes.
#[derive(Debug, Default)]
pub struct ProbeCache {
    entries: HashMap<Vec<String>, ProbeOutcome>,
    hits: u64,
    misses: u64,
}

impl ProbeCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a key, recording a hit or miss.
    pub fn lookup(&mut self, key: &[String]) -> Option<ProbeOutcome> {
        match self.entries.get(key) {
            Some(&o) => {
                self.hits += 1;
                Some(o)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records an outcome for a key. Later records overwrite earlier ones
    /// (a success learned from a full query upgrades a pending state).
    pub fn record(&mut self, key: Vec<String>, outcome: ProbeOutcome) {
        self.entries.insert(key, outcome);
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_record() {
        let mut c = ProbeCache::new();
        let key = vec!["garcia".to_owned()];
        assert_eq!(c.lookup(&key), None);
        c.record(key.clone(), ProbeOutcome::Fail);
        assert_eq!(c.lookup(&key), Some(ProbeOutcome::Fail));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn overwrite_upgrades() {
        let mut c = ProbeCache::new();
        let key = vec!["x".to_owned(), "y".to_owned()];
        c.record(key.clone(), ProbeOutcome::Fail);
        c.record(key.clone(), ProbeOutcome::Success);
        assert_eq!(c.lookup(&key), Some(ProbeOutcome::Success));
    }

    #[test]
    fn multi_column_keys_distinct() {
        let mut c = ProbeCache::new();
        c.record(vec!["a".into(), "b".into()], ProbeOutcome::Fail);
        assert_eq!(c.lookup(&["a".to_owned()]), None);
        assert_eq!(
            c.lookup(&["a".to_owned(), "b".to_owned()]),
            Some(ProbeOutcome::Fail)
        );
    }
}
