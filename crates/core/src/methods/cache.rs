//! The probe cache — paper, Section 3.3.
//!
//! Probing remembers, per query execution, which probe keys (join-column
//! value combinations) are known to fail or succeed, "so that no duplicate
//! probes are sent". The same structure serves the plain fail-query cache
//! the paper mentions for tuple substitution.
//!
//! Entries are keyed by the **topology epoch** the outcome was observed at
//! as well as the probe-key values: an online migration batch committing
//! mid-execution re-routes docids, so an outcome proved against the old
//! routing must not prune under the new one. A bumped epoch therefore
//! *misses* (the probe is re-sent and re-recorded at the new epoch) rather
//! than clearing the cache — single servers never change topology, so
//! their epoch is constantly 0 and behavior is unchanged.

use std::collections::HashMap;

/// Outcome recorded for a probe key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The probe (or a query implying it) matched at least one document.
    Success,
    /// The probe returned no matching documents — every query agreeing on
    /// the probe columns is a fail-query.
    Fail,
}

/// A cache from (topology epoch, probe-key values) to outcomes.
/// Per-execution by default; a serving session promotes one instance to
/// session scope and threads it through every execution.
#[derive(Debug, Default)]
pub struct ProbeCache {
    entries: HashMap<u64, HashMap<Vec<String>, ProbeOutcome>>,
    hits: u64,
    misses: u64,
    evicted: u64,
    latest_epoch: u64,
}

impl ProbeCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Epoch garbage collection: once an operation arrives at `epoch`,
    /// every entry older than the *previous* epoch is unreachable —
    /// lookups pin at most the current and the immediately preceding
    /// routing (an in-flight gather that began just before the commit).
    /// Anything older is dropped and counted as evicted.
    fn advance(&mut self, epoch: u64) {
        if epoch <= self.latest_epoch {
            return;
        }
        self.latest_epoch = epoch;
        let floor = epoch.saturating_sub(1);
        let before: usize = self.entries.values().map(HashMap::len).sum();
        self.entries.retain(|&e, _| e >= floor);
        let after: usize = self.entries.values().map(HashMap::len).sum();
        self.evicted += (before - after) as u64;
    }

    /// Looks up a key at `epoch`, recording a hit or miss. An outcome
    /// recorded at a different epoch is invisible: routing may have moved
    /// the documents it was proved against.
    pub fn lookup(&mut self, epoch: u64, key: &[String]) -> Option<ProbeOutcome> {
        self.advance(epoch);
        match self.entries.get(&epoch).and_then(|e| e.get(key)) {
            Some(&o) => {
                self.hits += 1;
                Some(o)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`lookup`](Self::lookup) without touching the hit/miss counters —
    /// for phases that can only *act* on one of the two outcomes and must
    /// not claim a hit for the other.
    pub fn peek(&mut self, epoch: u64, key: &[String]) -> Option<ProbeOutcome> {
        self.advance(epoch);
        self.entries.get(&epoch).and_then(|e| e.get(key)).copied()
    }

    /// Counts a hit that [`peek`](Self::peek) proved usable.
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Counts a miss for a [`peek`](Self::peek) that found nothing usable.
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Records an outcome for a key at `epoch`. Later records overwrite
    /// earlier ones (a success learned from a full query upgrades a
    /// pending state).
    pub fn record(&mut self, epoch: u64, key: Vec<String>, outcome: ProbeOutcome) {
        self.advance(epoch);
        self.entries.entry(epoch).or_default().insert(key, outcome);
    }

    /// Number of cached keys, over all epochs.
    pub fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// `(hits, misses, evicted)` counters — the shape
    /// `Usage::metrics_snapshot` exposes.
    pub fn full_stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_record() {
        let mut c = ProbeCache::new();
        let key = vec!["garcia".to_owned()];
        assert_eq!(c.lookup(0, &key), None);
        c.record(0, key.clone(), ProbeOutcome::Fail);
        assert_eq!(c.lookup(0, &key), Some(ProbeOutcome::Fail));
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn overwrite_upgrades() {
        let mut c = ProbeCache::new();
        let key = vec!["x".to_owned(), "y".to_owned()];
        c.record(0, key.clone(), ProbeOutcome::Fail);
        c.record(0, key.clone(), ProbeOutcome::Success);
        assert_eq!(c.lookup(0, &key), Some(ProbeOutcome::Success));
    }

    #[test]
    fn multi_column_keys_distinct() {
        let mut c = ProbeCache::new();
        c.record(0, vec!["a".into(), "b".into()], ProbeOutcome::Fail);
        assert_eq!(c.lookup(0, &["a".to_owned()]), None);
        assert_eq!(
            c.lookup(0, &["a".to_owned(), "b".to_owned()]),
            Some(ProbeOutcome::Fail)
        );
    }

    #[test]
    fn epoch_gc_drops_everything_older_than_the_previous_epoch() {
        let mut c = ProbeCache::new();
        c.record(0, vec!["a".into()], ProbeOutcome::Fail);
        c.record(1, vec!["b".into()], ProbeOutcome::Success);
        c.record(2, vec!["c".into()], ProbeOutcome::Fail);
        // Advancing to epoch 3 makes epochs ≤ 1 unreachable: epoch 0 and 1
        // entries are dropped, epoch 2 (the previous epoch) survives.
        assert_eq!(c.lookup(3, &["c".to_owned()]), None);
        assert_eq!(c.full_stats().2, 2, "epochs 0 and 1 evicted");
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(2, &["c".to_owned()]), Some(ProbeOutcome::Fail));
        // peek never counts.
        let (h, m, _) = c.full_stats();
        assert_eq!(c.peek(3, &["zzz".to_owned()]), None);
        assert_eq!((h, m), {
            let (h2, m2, _) = c.full_stats();
            (h2, m2)
        });
    }

    #[test]
    fn epoch_bump_misses_without_clearing() {
        let mut c = ProbeCache::new();
        let key = vec!["garcia".to_owned()];
        c.record(3, key.clone(), ProbeOutcome::Fail);
        // A migration commit bumped the epoch: the stale fail-entry must
        // not prune against the new routing.
        assert_eq!(c.lookup(4, &key), None);
        // The old entry survives (a still-in-flight gather pinned at the
        // old epoch keeps its pruning power).
        assert_eq!(c.lookup(3, &key), Some(ProbeOutcome::Fail));
        c.record(4, key.clone(), ProbeOutcome::Success);
        assert_eq!(c.lookup(4, &key), Some(ProbeOutcome::Success));
        assert_eq!(c.len(), 2);
    }
}
