//! Probing-based join methods (P+TS and P+RTP) — paper, Section 3.3.
//!
//! A *probe* on a column set `J` keeps only the join predicates on `J`
//! (plus the text selections) and asks the text system whether anything
//! matches. A failed probe proves that **every** tuple agreeing on `J` is a
//! fail-query, so its (possibly many) substituted searches can be skipped.
//!
//! Two schedules are implemented:
//!
//! * **probe-first** — send one probe per distinct `J`-key up front, then
//!   run the completion method on the survivors. This is the schedule the
//!   paper's cost formulas `C_P` / `C_{P+TS}` model.
//! * **lazy** — the paper's pseudocode: substitute first; only when a full
//!   query fails is a probe sent (and cached) to protect the remaining
//!   tuples with the same key. Cheaper when most probes would succeed.
//!
//! Completion is either tuple substitution (P+TS) or relational text
//! processing of the documents the successful probes matched (P+RTP,
//! Example 3.6).

use std::collections::{BTreeSet, HashMap};

use textjoin_rel::ops::group_by;
use textjoin_text::doc::{DocId, Document, ShortDoc};

use super::cache::{ProbeCache, ProbeOutcome};
use super::{report, ExecContext, ForeignJoin, MethodError, MethodOutcome, Projection};

/// Probe scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeSchedule {
    /// All probes up front (matches the cost formulas).
    #[default]
    ProbeFirst,
    /// The paper's pseudocode: probe only after a query fails.
    Lazy,
    /// The ordered-relation variant (Section 3.3): tuples grouped by the
    /// probing columns, **no cache needed**, and a probe is sent only when
    /// a failed query's probe key is shared by at least one more
    /// unsubstituted tuple — otherwise the probe could not save anything.
    Ordered,
}

fn validate_probe_cols(fj: &ForeignJoin<'_>, probe_cols: &[usize]) -> Result<(), MethodError> {
    if probe_cols.is_empty() {
        return Err(MethodError::BadProbeColumns(
            "probe column set must be non-empty".into(),
        ));
    }
    let mut seen = BTreeSet::new();
    for &i in probe_cols {
        if i >= fj.k() {
            return Err(MethodError::BadProbeColumns(format!(
                "predicate index {i} out of range (k = {})",
                fj.k()
            )));
        }
        if !seen.insert(i) {
            return Err(MethodError::BadProbeColumns(format!(
                "duplicate predicate index {i}"
            )));
        }
    }
    Ok(())
}

fn method_label(prefix: &str, probe_cols: &[usize], suffix: &str) -> String {
    let cols: Vec<String> = probe_cols.iter().map(|i| (i + 1).to_string()).collect();
    format!("{prefix}{}+{suffix}", cols.join(""))
}

/// The probe cache one method execution works against: the session's
/// shared cache when the context carries one, a fresh per-execution cache
/// otherwise (the paper's default).
///
/// Shared entries are namespaced by the full probe identity — the text
/// selections and the probed fields — so an outcome proved by one query
/// can only ever answer a *byte-identical* probe from another. Cache
/// traffic is counted either way; the counters ride the method's usage
/// delta so `Usage::metrics_snapshot` can report them. Hits served from a
/// session cache additionally emit a charge-free `CacheHit` event (the
/// per-execution path emits nothing, keeping legacy traces byte-stable).
struct Probes<'a> {
    shared: Option<&'a std::cell::RefCell<ProbeCache>>,
    local: std::cell::RefCell<ProbeCache>,
    ns: Vec<String>,
    start: (u64, u64, u64),
}

impl<'a> Probes<'a> {
    fn new(ctx: &ExecContext<'a>, fj: &ForeignJoin<'_>, probe_cols: &[usize]) -> Self {
        let mut ns = Vec::with_capacity(fj.selections.len() + probe_cols.len());
        for s in &fj.selections {
            ns.push(format!("s:{}@{}", s.term, s.field.0));
        }
        for &i in probe_cols {
            ns.push(format!("f:{}", fj.join_fields[i].0));
        }
        let start = match ctx.probe_cache {
            Some(c) => c.borrow().full_stats(),
            None => (0, 0, 0),
        };
        Self {
            shared: ctx.probe_cache,
            local: std::cell::RefCell::new(ProbeCache::new()),
            ns,
            start,
        }
    }

    fn key(&self, values: &[String]) -> Vec<String> {
        let mut k = self.ns.clone();
        k.extend(values.iter().cloned());
        k
    }

    fn cache(&self) -> std::cell::RefMut<'_, ProbeCache> {
        match self.shared {
            Some(c) => c.borrow_mut(),
            None => self.local.borrow_mut(),
        }
    }

    /// Counting lookup; emits a `CacheHit` event on session-cache hits.
    fn lookup(&self, ctx: &ExecContext<'_>, epoch: u64, values: &[String]) -> Option<ProbeOutcome> {
        let out = self.cache().lookup(epoch, &self.key(values));
        if out.is_some() {
            self.emit_hit(ctx, epoch);
        }
        out
    }

    /// Non-counting peek, for phases that can only use one outcome.
    fn peek(&self, epoch: u64, values: &[String]) -> Option<ProbeOutcome> {
        self.cache().peek(epoch, &self.key(values))
    }

    /// Books a usable peek as a hit (and emits the session `CacheHit`).
    fn note_hit(&self, ctx: &ExecContext<'_>, epoch: u64) {
        self.cache().note_hit();
        self.emit_hit(ctx, epoch);
    }

    fn note_miss(&self) {
        self.cache().note_miss();
    }

    fn record(&self, epoch: u64, values: &[String], outcome: ProbeOutcome) {
        self.cache().record(epoch, self.key(values), outcome);
    }

    fn emit_hit(&self, ctx: &ExecContext<'_>, epoch: u64) {
        if self.shared.is_some() {
            if let Some(rec) = ctx.recorder() {
                rec.emit(textjoin_obs::EventKind::CacheHit {
                    scope: "probe",
                    epoch,
                });
            }
        }
    }

    /// `(hits, misses, evicted)` accrued during this execution.
    fn delta(&self) -> (u64, u64, u64) {
        let end = match self.shared {
            Some(c) => c.borrow().full_stats(),
            None => self.local.borrow().full_stats(),
        };
        (
            end.0 - self.start.0,
            end.1 - self.start.1,
            end.2 - self.start.2,
        )
    }

    /// Folds the execution's cache traffic into the report's usage delta
    /// (free counters — no simulated seconds move).
    fn fold_into(&self, report: &mut super::MethodReport) {
        let (h, m, e) = self.delta();
        report.text.cache_hits += h;
        report.text.cache_misses += m;
        report.text.cache_evicted += e;
    }
}

/// Probing with tuple substitution (P+TS).
pub fn probe_tuple_substitution(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    probe_cols: &[usize],
    schedule: ProbeSchedule,
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    validate_probe_cols(fj, probe_cols)?;
    match schedule {
        ProbeSchedule::ProbeFirst => probe_first_ts(ctx, fj, probe_cols),
        ProbeSchedule::Lazy => lazy_ts(ctx, fj, probe_cols),
        ProbeSchedule::Ordered => ordered_ts(ctx, fj, probe_cols),
    }
}

fn probe_first_ts(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    probe_cols: &[usize],
) -> Result<MethodOutcome, MethodError> {
    let before = ctx.server.usage();
    let text_schema = ctx.server.schema();
    let label = method_label("P", probe_cols, "TS");
    let _method_span = ctx.span(&label);
    let mut out = fj.output_table(text_schema, &label);
    let all = fj.all_preds();

    // Phase 1: one probe per distinct key over the probe columns.
    let probe_span = ctx.span("probe-phase");
    let probe_groups = group_by(fj.rel, &cols_of(fj, probe_cols));
    let cache = Probes::new(ctx, fj, probe_cols);
    for (_, rows) in &probe_groups {
        let t = &fj.rel.rows()[rows[0]];
        let Some(key) = fj.key_values(t, probe_cols) else {
            continue; // NULL key: no probe; tuples can never match anyway
        };
        // A key an earlier execution already settled (either way) needs no
        // probe: phase 2 only consumes the recorded outcome. Fresh
        // per-execution caches never hit here — phase-1 keys are distinct.
        let epoch = ctx.server.topology_epoch();
        if cache.peek(epoch, &key).is_some() {
            cache.note_hit(ctx, epoch);
            continue;
        }
        cache.note_miss();
        let expr = fj
            .instantiated_search(t, probe_cols)
            .expect("key_values succeeded");
        // A probe is an optimization, not a correctness requirement: if the
        // server stays down past the retry budget, leave the key
        // unrecorded — outcome unknown, so phase 2 will not prune on it.
        if let Some(ids) = ctx.try_probe(&expr) {
            cache.record(
                ctx.server.topology_epoch(),
                &key,
                if ids.is_empty() {
                    ProbeOutcome::Fail
                } else {
                    ProbeOutcome::Success
                },
            );
        }
    }

    drop(probe_span);

    // Phase 2: tuple substitution for tuples whose probe succeeded. If the
    // probe covered every join predicate, the probe already *was* the full
    // query; re-sending it would be pure waste, so only retrieval remains.
    let _subst_span = ctx.span("substitution");
    let full_query_needed = probe_cols.len() < fj.k();
    let groups = group_by(fj.rel, &fj.join_cols);
    for (_, rows) in groups {
        let t = &fj.rel.rows()[rows[0]];
        let Some(probe_key) = fj.key_values(t, probe_cols) else {
            continue;
        };
        // Only a *proven* fail prunes; an unknown outcome substitutes.
        if cache.lookup(ctx, ctx.server.topology_epoch(), &probe_key) == Some(ProbeOutcome::Fail) {
            continue;
        }
        let Some(expr) = fj.instantiated_search(t, &all) else {
            continue;
        };
        // When the probe was total, its success already implies a match,
        // but we still need the result set; one search either way.
        let _ = full_query_needed;
        let result = ctx.search(&expr)?;
        if result.is_empty() {
            continue;
        }
        let docs = fetch_for_projection(ctx, fj, &result.docs)?;
        for &ri in &rows {
            fj.emit(&mut out, text_schema, &fj.rel.rows()[ri], &docs);
        }
    }

    let rows = out.len();
    let mut rep = report(label, ctx, &before, 0, rows);
    cache.fold_into(&mut rep);
    Ok(MethodOutcome {
        table: out,
        report: rep,
    })
}

fn lazy_ts(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    probe_cols: &[usize],
) -> Result<MethodOutcome, MethodError> {
    let before = ctx.server.usage();
    let text_schema = ctx.server.schema();
    let label = format!("{}-lazy", method_label("P", probe_cols, "TS"));
    let _method_span = ctx.span(&label);
    let mut out = fj.output_table(text_schema, &label);
    let all = fj.all_preds();

    let cache = Probes::new(ctx, fj, probe_cols);
    // Group by the *full* key so the distinct-tuple optimization still
    // applies; the probe cache prunes across full-key groups.
    let groups = group_by(fj.rel, &fj.join_cols);
    for (_, rows) in groups {
        let t = &fj.rel.rows()[rows[0]];
        let Some(probe_key) = fj.key_values(t, probe_cols) else {
            continue;
        };
        // Paper's pseudocode: if cache has fail entry for probe of t, exit.
        if cache.lookup(ctx, ctx.server.topology_epoch(), &probe_key) == Some(ProbeOutcome::Fail) {
            continue;
        }
        // Instantiate the query with t (as in tuple substitution).
        let Some(expr) = fj.instantiated_search(t, &all) else {
            continue;
        };
        let result = ctx.search(&expr)?;
        if !result.is_empty() {
            // Query success implies probe success: record without sending.
            cache.record(ctx.server.topology_epoch(), &probe_key, ProbeOutcome::Success);
            let docs = fetch_for_projection(ctx, fj, &result.docs)?;
            for &ri in &rows {
                fj.emit(&mut out, text_schema, &fj.rel.rows()[ri], &docs);
            }
            continue;
        }
        // Query failed. If the probe for t is already cached (success —
        // fail was handled above), exit; else send the probe and cache it.
        if cache
            .lookup(ctx, ctx.server.topology_epoch(), &probe_key)
            .is_some()
        {
            continue;
        }
        let probe_expr = fj
            .instantiated_search(t, probe_cols)
            .expect("key_values succeeded");
        // Unknown probe outcome stays uncached: the next tuple with this
        // key substitutes (and may retry the probe) instead of pruning.
        if let Some(ids) = ctx.try_probe(&probe_expr) {
            cache.record(
                ctx.server.topology_epoch(),
                &probe_key,
                if ids.is_empty() {
                    ProbeOutcome::Fail
                } else {
                    ProbeOutcome::Success
                },
            );
        }
    }

    let rows = out.len();
    let mut rep = report(label, ctx, &before, 0, rows);
    cache.fold_into(&mut rep);
    Ok(MethodOutcome {
        table: out,
        report: rep,
    })
}

/// The ordered-relation schedule: the relation is grouped by the probe
/// columns (the paper notes an existing order/grouping makes the cache
/// unnecessary). Within one probe group, full-key subgroups are
/// substituted in turn; when a substitution fails and *further* full-key
/// subgroups remain in the probe group, one probe decides whether to skip
/// them all.
fn ordered_ts(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    probe_cols: &[usize],
) -> Result<MethodOutcome, MethodError> {
    let before = ctx.server.usage();
    let text_schema = ctx.server.schema();
    let label = format!("{}-ord", method_label("P", probe_cols, "TS"));
    let _method_span = ctx.span(&label);
    let mut out = fj.output_table(text_schema, &label);
    let all = fj.all_preds();

    // Group rows by probe key (grouping is equivalent to the paper's
    // "ordered by the probing columns" — only adjacency matters).
    for (_, probe_rows) in group_by(fj.rel, &cols_of(fj, probe_cols)) {
        // Sub-group by the full join key for the distinct-tuple variant.
        let sub: Vec<Vec<usize>> = {
            let mut groups: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
            for &ri in &probe_rows {
                let t = &fj.rel.rows()[ri];
                let Some(key) = fj.key_values(t, &all) else {
                    continue;
                };
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, rows)) => rows.push(ri),
                    None => groups.push((key, vec![ri])),
                }
            }
            groups.into_iter().map(|(_, rows)| rows).collect()
        };
        let mut probe_known_ok = false;
        let mut i = 0;
        while i < sub.len() {
            let rows = &sub[i];
            let t = &fj.rel.rows()[rows[0]];
            let Some(expr) = fj.instantiated_search(t, &all) else {
                i += 1;
                continue;
            };
            let result = ctx.search(&expr)?;
            if !result.is_empty() {
                probe_known_ok = true;
                let docs = fetch_for_projection(ctx, fj, &result.docs)?;
                for &ri in rows {
                    fj.emit(&mut out, text_schema, &fj.rel.rows()[ri], &docs);
                }
            } else if !probe_known_ok && i + 1 < sub.len() {
                // A fail-query, with more full-key subgroups sharing this
                // probe key still ahead: one probe decides their fate.
                let probe_expr = fj
                    .instantiated_search(t, probe_cols)
                    .expect("key_values succeeded");
                match ctx.try_probe(&probe_expr) {
                    Some(ids) if ids.is_empty() => {
                        break; // the whole probe group is fail-queries
                    }
                    // Success — or unknown: without a proven fail the rest
                    // of the group must substitute, and re-probing could
                    // save nothing, so stop probing this group either way.
                    _ => probe_known_ok = true,
                }
            }
            i += 1;
        }
    }

    let rows = out.len();
    Ok(MethodOutcome {
        table: out,
        report: report(label, ctx, &before, 0, rows),
    })
}

/// Probing with relational text processing (P+RTP, Example 3.6): the
/// successful probes' result sets *are* the candidate documents; they are
/// fetched (short or long form as needed) and matched to the surviving
/// tuples relationally.
pub fn probe_rtp(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    probe_cols: &[usize],
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    validate_probe_cols(fj, probe_cols)?;
    let before = ctx.server.usage();
    let text_schema = ctx.server.schema();
    let label = method_label("P", probe_cols, "RTP");
    let _method_span = ctx.span(&label);
    let mut out = fj.output_table(text_schema, &label);

    // Phase 1: probes; collect matched docids and per-key outcomes.
    let probe_span = ctx.span("probe-phase");
    let probe_groups = group_by(fj.rel, &cols_of(fj, probe_cols));
    let cache = Probes::new(ctx, fj, probe_cols);
    let mut matched: BTreeSet<DocId> = BTreeSet::new();
    for (_, rows) in &probe_groups {
        let t = &fj.rel.rows()[rows[0]];
        let Some(key) = fj.key_values(t, probe_cols) else {
            continue;
        };
        // A session-cached *fail* skips the probe outright: a fail key
        // contributes no candidate docids, so phase 3 loses nothing. A
        // cached success is unusable here — the probe's result set feeds
        // the candidate pool — so the probe is re-sent for its ids.
        let epoch = ctx.server.topology_epoch();
        if cache.peek(epoch, &key) == Some(ProbeOutcome::Fail) {
            cache.note_hit(ctx, epoch);
            continue;
        }
        if cache.peek(epoch, &key).is_none() {
            cache.note_miss();
        }
        let expr = fj
            .instantiated_search(t, probe_cols)
            .expect("key_values succeeded");
        // A key whose probe stays unknown is left unrecorded; phase 3
        // degrades it to per-key tuple substitution instead of pruning.
        if let Some(ids) = ctx.try_probe(&expr) {
            cache.record(
                ctx.server.topology_epoch(),
                &key,
                if ids.is_empty() {
                    ProbeOutcome::Fail
                } else {
                    ProbeOutcome::Success
                },
            );
            matched.extend(ids);
        }
    }
    drop(probe_span);

    // Phase 2: fetch candidate documents. The probes shipped only docids
    // (via `probe`), so the matching data comes from retrievals: short form
    // suffices when all join fields are short-form and the projection
    // doesn't need full docs. We model short-form re-retrieval as new
    // search-free short transmissions via long retrieval only when needed.
    let need_long =
        fj.projection == Projection::Full || !fj.short_form_sufficient(text_schema);
    let mut short_docs: HashMap<DocId, ShortDoc> = HashMap::new();
    let mut long_docs: HashMap<DocId, Document> = HashMap::new();
    if need_long {
        let _fetch_span = ctx.span("fetch");
        for &id in &matched {
            long_docs.insert(id, ctx.retrieve(id)?);
        }
    } else {
        // The short forms were already transmitted as probe result sets;
        // reconstruct them locally at no extra charge.
        for &id in &matched {
            let sf = ctx.server.reconstruct_short(id).ok_or(MethodError::Text(
                textjoin_text::server::TextError::UnknownDoc(id),
            ))?;
            short_docs.insert(id, sf);
        }
    }

    // Phase 3: relational matching of candidates against surviving tuples.
    // A key whose probe outcome stayed unknown degrades to tuple
    // substitution for just that key: the full query is sent (once per
    // distinct join key) and its results emitted directly.
    let all = fj.all_preds();
    let _match_span = ctx.span("relational-match");
    let mut ts_fallback: HashMap<Vec<String>, Vec<(DocId, Document)>> = HashMap::new();
    let mut comparisons = 0u64;
    for t in fj.rel.iter() {
        let Some(probe_key) = fj.key_values(t, probe_cols) else {
            continue;
        };
        match cache.lookup(ctx, ctx.server.topology_epoch(), &probe_key) {
            Some(ProbeOutcome::Fail) => continue,
            Some(ProbeOutcome::Success) => {
                let mut hits: Vec<(DocId, Document)> = Vec::new();
                for &id in &matched {
                    let is_match = if need_long {
                        fj.rel_match_long(t, &long_docs[&id], &mut comparisons)
                    } else {
                        fj.rel_match_short(t, &short_docs[&id], &mut comparisons)
                    };
                    if is_match {
                        hits.push((id, long_docs.get(&id).cloned().unwrap_or_default()));
                    }
                }
                fj.emit(&mut out, text_schema, t, &hits);
            }
            None => {
                let Some(full_key) = fj.key_values(t, &all) else {
                    continue;
                };
                let docs = match ts_fallback.get(&full_key) {
                    Some(docs) => docs.clone(),
                    None => {
                        let expr = fj
                            .instantiated_search(t, &all)
                            .expect("key_values succeeded");
                        let result = ctx.search(&expr)?;
                        let docs = fetch_for_projection(ctx, fj, &result.docs)?;
                        ts_fallback.insert(full_key, docs.clone());
                        docs
                    }
                };
                fj.emit(&mut out, text_schema, t, &docs);
            }
        }
    }

    let rows = out.len();
    let mut rep = report(label, ctx, &before, comparisons, rows);
    cache.fold_into(&mut rep);
    Ok(MethodOutcome {
        table: out,
        report: rep,
    })
}

/// The relational `ColId`s of the probe predicate indices.
fn cols_of(fj: &ForeignJoin<'_>, probe_cols: &[usize]) -> Vec<textjoin_rel::schema::ColId> {
    probe_cols.iter().map(|&i| fj.join_cols[i]).collect()
}

/// Fetches the documents a result set refers to, in the form the
/// projection needs.
fn fetch_for_projection(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    docs: &[ShortDoc],
) -> Result<Vec<(DocId, Document)>, MethodError> {
    match fj.projection {
        Projection::Full => docs
            .iter()
            .map(|d| Ok((d.id, ctx.retrieve(d.id)?)))
            .collect(),
        _ => Ok(docs.iter().map(|d| (d.id, Document::new())).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{corpus, student};
    use super::super::ts::tuple_substitution;
    use super::super::{ForeignJoin, Projection, TextSelection};
    use super::*;
    use textjoin_rel::table::Table;
    use textjoin_rel::tuple;
    use textjoin_rel::value::ValueType;
    use textjoin_text::server::TextServer;

    /// Q4-like join: advisor in author AND name in author.
    fn two_pred_join<'a>(rel: &'a Table, server: &TextServer, projection: Projection) -> ForeignJoin<'a> {
        let ts = server.collection().schema();
        ForeignJoin {
            rel,
            join_cols: vec![rel.col("advisor"), rel.col("name")],
            join_fields: vec![
                ts.field_by_name("author").unwrap(),
                ts.field_by_name("author").unwrap(),
            ],
            selections: vec![],
            projection,
        }
    }

    #[test]
    fn probe_first_prunes_fail_queries() {
        let rel = student(); // advisors: Garcia ×2, Wiederhold ×2
        let server = corpus(); // Wiederhold authored nothing
        let ctx = ExecContext::new(&server);
        let fj = two_pred_join(&rel, &server, Projection::RelOnly);
        // Probe on predicate 0 = advisor.
        let out = probe_tuple_substitution(&ctx, &fj, &[0], ProbeSchedule::ProbeFirst).unwrap();
        // 2 probes (Garcia, Wiederhold) + 2 substitutions (Garcia students).
        assert_eq!(out.report.text.invocations, 4);
        // Only Gravano co-authored with Garcia.
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.report.method, "P1+TS");
    }

    #[test]
    fn lazy_schedule_same_answer_fewer_calls_when_probes_succeed() {
        let rel = student();
        let s1 = corpus();
        let ctx1 = ExecContext::new(&s1);
        let fj1 = two_pred_join(&rel, &s1, Projection::RelOnly);
        let eager = probe_tuple_substitution(&ctx1, &fj1, &[0], ProbeSchedule::ProbeFirst).unwrap();

        let s2 = corpus();
        let ctx2 = ExecContext::new(&s2);
        let fj2 = two_pred_join(&rel, &s2, Projection::RelOnly);
        let lazy = probe_tuple_substitution(&ctx2, &fj2, &[0], ProbeSchedule::Lazy).unwrap();

        let mut a: Vec<String> = eager.table.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = lazy.table.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "schedules agree on the answer");
        // Lazy: Gravano query (hit, probe implied), Kao query (miss →
        // probe Garcia... already cached success? No: Kao's full query
        // failed, probe key Garcia cached success from Gravano's hit → no
        // probe), Pham query (miss → probe Wiederhold fails), DeSmedt
        // skipped. Total 3 + 1 probe = 4 = same as eager here, but never
        // more.
        assert!(lazy.report.text.invocations <= eager.report.text.invocations + 1);
    }

    #[test]
    fn lazy_skips_after_cached_fail() {
        let rel = student();
        let server = corpus();
        server.set_trace(true);
        let ctx = ExecContext::new(&server);
        let fj = two_pred_join(&rel, &server, Projection::RelOnly);
        probe_tuple_substitution(&ctx, &fj, &[0], ProbeSchedule::Lazy).unwrap();
        let log = server.take_log();
        // DeSmedt's full query must not appear: Wiederhold's probe failed
        // during Pham's turn.
        assert!(
            !log.iter().any(|q| q.contains("desmedt")),
            "fail-cache must prune DeSmedt, log: {log:?}"
        );
    }

    #[test]
    fn ordered_schedule_matches_other_schedules() {
        let rel = student();
        let mut shapes = Vec::new();
        for schedule in [
            ProbeSchedule::ProbeFirst,
            ProbeSchedule::Lazy,
            ProbeSchedule::Ordered,
        ] {
            let server = corpus();
            let ctx = ExecContext::new(&server);
            let fj = two_pred_join(&rel, &server, Projection::RelOnly);
            let out = probe_tuple_substitution(&ctx, &fj, &[0], schedule).unwrap();
            let mut rows: Vec<String> = out.table.iter().map(|t| t.to_string()).collect();
            rows.sort();
            shapes.push((schedule, rows, out.report.text.invocations));
        }
        assert_eq!(shapes[0].1, shapes[1].1);
        assert_eq!(shapes[1].1, shapes[2].1);
    }

    #[test]
    fn ordered_skips_probe_for_singleton_groups() {
        // Every student has a unique (advisor, name) pair, and we probe on
        // name: each probe group has exactly one full-key subgroup, so the
        // ordered schedule must send NO probes at all (a probe could not
        // save any future query).
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let ts_field = server.collection().schema().field_by_name("author").unwrap();
        let fj = ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("name"), rel.col("advisor")],
            join_fields: vec![ts_field, ts_field],
            selections: vec![],
            projection: Projection::RelOnly,
        };
        let out = probe_tuple_substitution(&ctx, &fj, &[0], ProbeSchedule::Ordered).unwrap();
        // 4 distinct names → 4 full queries, 0 probes.
        assert_eq!(out.report.text.invocations, 4);
    }

    #[test]
    fn ordered_probe_prunes_shared_key_groups() {
        // Probe on advisor: Wiederhold's group has two students (Pham,
        // DeSmedt). Pham's query fails, the probe on Wiederhold fails, and
        // DeSmedt's query is skipped.
        let rel = student();
        let server = corpus();
        server.set_trace(true);
        let ctx = ExecContext::new(&server);
        let fj = two_pred_join(&rel, &server, Projection::RelOnly);
        probe_tuple_substitution(&ctx, &fj, &[0], ProbeSchedule::Ordered).unwrap();
        let log = server.take_log();
        assert!(
            !log.iter().any(|q| q.contains("desmedt")),
            "ordered schedule must prune DeSmedt: {log:?}"
        );
    }

    #[test]
    fn probe_on_all_columns() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = two_pred_join(&rel, &server, Projection::RelOnly);
        let out = probe_tuple_substitution(&ctx, &fj, &[0, 1], ProbeSchedule::ProbeFirst).unwrap();
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.report.method, "P12+TS");
    }

    #[test]
    fn p_rtp_matches_ts() {
        let rel = student();
        let s1 = corpus();
        let ctx1 = ExecContext::new(&s1);
        let fj1 = two_pred_join(&rel, &s1, Projection::Full);
        let prtp = probe_rtp(&ctx1, &fj1, &[0]).unwrap();
        assert_eq!(prtp.report.method, "P1+RTP");

        let s2 = corpus();
        let ctx2 = ExecContext::new(&s2);
        let fj2 = two_pred_join(&rel, &s2, Projection::Full);
        let ts = tuple_substitution(&ctx2, &fj2, true).unwrap();

        let mut a: Vec<String> = prtp.table.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = ts.table.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn p_rtp_short_form_path_no_long_retrieval() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = two_pred_join(&rel, &server, Projection::RelOnly);
        let out = probe_rtp(&ctx, &fj, &[0]).unwrap();
        assert_eq!(out.report.text.docs_long, 0);
        assert_eq!(out.table.len(), 1);
        assert!(out.report.rtp_comparisons > 0);
    }

    #[test]
    fn bad_probe_columns_rejected() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = two_pred_join(&rel, &server, Projection::RelOnly);
        assert!(matches!(
            probe_tuple_substitution(&ctx, &fj, &[], ProbeSchedule::ProbeFirst),
            Err(MethodError::BadProbeColumns(_))
        ));
        assert!(matches!(
            probe_tuple_substitution(&ctx, &fj, &[5], ProbeSchedule::ProbeFirst),
            Err(MethodError::BadProbeColumns(_))
        ));
        assert!(matches!(
            probe_rtp(&ctx, &fj, &[0, 0]),
            Err(MethodError::BadProbeColumns(_))
        ));
    }

    #[test]
    fn probe_with_selection_keeps_selection_in_probe() {
        // Q3-like: project.name in title, project.member in author,
        // selection on sponsor is relational (pre-filtered); text selection
        // added here to verify the probe carries it.
        let schema = textjoin_rel::schema::RelSchema::from_columns(vec![
            ("pname", ValueType::Str),
            ("member", ValueType::Str),
        ]);
        let mut rel = Table::new("project", schema);
        rel.push(tuple!["belief", "Pham"]);
        rel.push(tuple!["belief", "DeSmedt"]);
        rel.push(tuple!["nonexistent", "Gravano"]);
        let server = corpus();
        server.set_trace(true);
        let ts = server.collection().schema();
        let fj = ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("pname"), rel.col("member")],
            join_fields: vec![
                ts.field_by_name("title").unwrap(),
                ts.field_by_name("author").unwrap(),
            ],
            selections: vec![TextSelection {
                term: "update".into(),
                field: ts.field_by_name("title").unwrap(),
            }],
            projection: Projection::RelOnly,
        };
        let ctx = ExecContext::new(&server);
        let out = probe_tuple_substitution(&ctx, &fj, &[0], ProbeSchedule::ProbeFirst).unwrap();
        // 'belief' probe succeeds (doc2 "belief update" by Pham);
        // 'nonexistent' fails → Gravano's query pruned.
        assert_eq!(out.table.len(), 1);
        let log = server.take_log();
        assert!(log.iter().all(|q| !q.contains("gravano")));
        assert!(log[0].contains("TI='update'"), "probe carries selection: {}", log[0]);
    }
}
