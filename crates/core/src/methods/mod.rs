//! Foreign-join execution methods (paper, Section 3).
//!
//! A *foreign join* is a join between a stored relation and the external
//! text system, expressed as predicates `rel.col in text.field`. Because the
//! integration is loose, every method ultimately evaluates these predicates
//! by sending instantiated selections to the text server; the methods differ
//! in *how many* searches they send, *what* each search asks, and *where*
//! the residual matching happens:
//!
//! | Method | Module | Searches sent | Residual matching |
//! |--------|--------|---------------|-------------------|
//! | TS     | [`ts`]    | one per (distinct) outer tuple | none |
//! | RTP    | [`rtp`]   | one (text selections only)    | relational string matching |
//! | SJ     | [`sj`]    | ⌈N_K / per-search capacity⌉   | none (docids) or relational (+RTP) |
//! | P+TS   | [`probe`] | probes on a column subset, then TS on survivors | none |
//! | P+RTP  | [`probe`] | probes on a column subset     | relational string matching |

pub mod cache;
pub mod probe;
pub mod rtp;
pub mod sj;
pub mod ts;

use std::fmt;
use std::rc::Rc;

use textjoin_obs::{EventKind, Recorder, SpanGuard};
use textjoin_rel::schema::{ColId, RelSchema};
use textjoin_rel::table::Table;
use textjoin_rel::tuple::Tuple;
use textjoin_rel::value::{Value, ValueType};
use textjoin_text::batch::BatchResult;
use textjoin_text::doc::{DocId, Document, FieldId, ShortDoc, TextSchema};
use textjoin_text::expr::SearchExpr;
use textjoin_text::server::{SearchResult, TextError, Usage};
use textjoin_text::service::TextService;
use textjoin_text::shard::{PartialShardError, ShardedTextServer};

use crate::retry::{RetryBudget, RetryPolicy, Route};
use crate::sched::Scheduler;

/// What the query projects — determines how much document data a method
/// must ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// Only attributes of the relation: the query is a semi-join of the
    /// relation by the text source (each matching tuple emitted once).
    RelOnly,
    /// Only docids: a semi-join of the text source by the relation — the
    /// paper's Q2 (`select docid from student, mercury where ...`).
    DocIds,
    /// Full join rows: relation attributes ++ docid ++ all text fields
    /// (`select *`) — requires long-form document retrieval.
    Full,
}

/// A text selection condition: a constant term that must occur in a field,
/// e.g. `'belief update' in mercury.title`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextSelection {
    /// The constant search term (word or phrase).
    pub term: String,
    /// The field searched.
    pub field: FieldId,
}

/// A fully-specified foreign join between one relation and the text source.
///
/// `join_cols[i]` is joined against `join_fields[i]`: for a tuple `t`, the
/// instantiated predicate is "value of `join_cols[i]` in `t` occurs in
/// `join_fields[i]`". The relation is assumed already reduced by its local
/// selection conditions (the paper omits relation-scan cost for the same
/// reason).
#[derive(Debug, Clone)]
pub struct ForeignJoin<'a> {
    /// The (locally filtered) outer relation.
    pub rel: &'a Table,
    /// Join columns of the relation, parallel to `join_fields`.
    pub join_cols: Vec<ColId>,
    /// Text fields joined against, parallel to `join_cols`.
    pub join_fields: Vec<FieldId>,
    /// Constant text selection conditions.
    pub selections: Vec<TextSelection>,
    /// What to emit.
    pub projection: Projection,
}

/// Why a method could not run on a given query.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodError {
    /// The method's precondition fails (e.g. RTP without text selections).
    NotApplicable(String),
    /// The text server refused or failed a call.
    Text(TextError),
    /// A probe-based method was asked to probe on no columns or unknown
    /// column indices.
    BadProbeColumns(String),
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodError::NotApplicable(m) => write!(f, "method not applicable: {m}"),
            MethodError::Text(e) => write!(f, "text server error: {e}"),
            MethodError::BadProbeColumns(m) => write!(f, "bad probe columns: {m}"),
        }
    }
}

impl std::error::Error for MethodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MethodError::Text(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TextError> for MethodError {
    fn from(e: TextError) -> Self {
        MethodError::Text(e)
    }
}

/// Execution context shared by the methods: the metered text service, the
/// relational text-processing cost constant `c_a` (sec per document–tuple
/// comparison), and the retry policy applied to every server operation.
///
/// Methods reach the service through the retrying wrappers below
/// ([`search`](Self::search), [`probe`](Self::probe), …) instead of calling
/// `ctx.server.*` directly, so transient faults are absorbed uniformly and
/// their simulated backoff is charged into the same [`Usage`] ledger the
/// cost decomposition audits.
///
/// Against a [`ShardedTextServer`] the wrappers switch to *per-shard*
/// scatter/gather: each shard gets its own retry loop (so one flaky shard
/// does not burn the budget of its healthy peers), backoff is charged to
/// the shard that caused the wait, and a shard that exhausts its attempts
/// yields a typed [`PartialShardError`] carrying the per-shard results
/// gathered so far — methods then either re-route around the hole (probes
/// degrade to "unknown", P+RTP's per-key TS fallback recovers) or fail
/// cleanly, never with a wrong multiset. When a [`RetryBudget`] is
/// attached, each shard's attempt count adapts to its observed fault rate.
#[derive(Clone, Copy)]
pub struct ExecContext<'a> {
    /// The text service (a single server or a sharded one).
    pub server: &'a dyn TextService,
    /// Relational text-processing cost per document–tuple comparison.
    pub c_a: f64,
    /// Retry schedule for transient text-server faults.
    pub retry: RetryPolicy,
    /// Optional adaptive per-shard retry budget (sharded services only).
    pub budget: Option<&'a RetryBudget>,
    /// Optional virtual-time transport scheduler. When attached, every
    /// server leg's charged cost is also booked as a timed leg, scatter
    /// legs overlap under the configured concurrency, slow-but-successful
    /// primary legs are hedged against a replica (with the loser's charge
    /// rebated), and per-query deadlines are tracked. Results are never
    /// affected: the scheduler models *when* work completes, not *what*
    /// it computes.
    pub sched: Option<&'a Scheduler>,
    /// Optional session-scoped probe cache. `None` (the default) keeps
    /// the paper's per-execution caches; a serving session threads one
    /// shared cache through every execution so probe outcomes proved by
    /// one query prune the next (namespaced by the full probe identity,
    /// so only identical probes ever share an entry).
    pub probe_cache: Option<&'a std::cell::RefCell<cache::ProbeCache>>,
    /// Optional per-query cost ceiling. When attached, every charged
    /// wrapper refuses to issue the next operation once the server's
    /// ledger has grown past `baseline + limit`, returning the
    /// non-transient [`TextError::BudgetExceeded`] — the serving
    /// session's mid-flight budget guard. Charges already booked stay.
    pub ceiling: Option<CostCeiling>,
}

/// A per-query charge ceiling for [`ExecContext`]: operations are refused
/// once `server.usage().total_cost() - baseline` exceeds `limit`.
#[derive(Debug, Clone, Copy)]
pub struct CostCeiling {
    /// The server ledger's `total_cost()` when the query started.
    pub baseline: f64,
    /// Simulated seconds the query may charge beyond the baseline.
    pub limit: f64,
}

impl<'a> ExecContext<'a> {
    /// Context with the default `c_a` of 1e-5 sec/comparison and the
    /// standard retry policy.
    pub fn new(server: &'a dyn TextService) -> Self {
        Self {
            server,
            c_a: 1e-5,
            retry: RetryPolicy::standard(),
            budget: None,
            sched: None,
            probe_cache: None,
            ceiling: None,
        }
    }

    /// Context with an explicit retry policy.
    pub fn with_retry(server: &'a dyn TextService, retry: RetryPolicy) -> Self {
        Self {
            server,
            c_a: 1e-5,
            retry,
            budget: None,
            sched: None,
            probe_cache: None,
            ceiling: None,
        }
    }

    /// Context with an adaptive per-shard retry budget. The budget's base
    /// policy also serves as `retry` for unsharded operations.
    pub fn with_budget(server: &'a dyn TextService, budget: &'a RetryBudget) -> Self {
        Self {
            server,
            c_a: 1e-5,
            retry: RetryPolicy::standard(),
            budget: Some(budget),
            sched: None,
            probe_cache: None,
            ceiling: None,
        }
    }

    /// Attaches a virtual-time transport scheduler (builder-style).
    pub fn with_transport(mut self, sched: &'a Scheduler) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Attaches a session-scoped probe cache (builder-style).
    pub fn with_probe_cache(mut self, cache: &'a std::cell::RefCell<cache::ProbeCache>) -> Self {
        self.probe_cache = Some(cache);
        self
    }

    /// Attaches a per-query cost ceiling (builder-style): the mid-flight
    /// budget guard of a serving session.
    pub fn with_ceiling(mut self, ceiling: CostCeiling) -> Self {
        self.ceiling = Some(ceiling);
        self
    }

    /// The mid-flight budget guard: refuses the next charged operation
    /// once the ledger has overrun the attached ceiling. Free when no
    /// ceiling is attached.
    fn guard_budget(&self) -> Result<(), TextError> {
        let Some(c) = self.ceiling else {
            return Ok(());
        };
        let spent = self.server.usage().total_cost() - c.baseline;
        if spent > c.limit {
            return Err(TextError::BudgetExceeded {
                spent_ms: (spent * 1000.0).round() as u64,
                limit_ms: (c.limit * 1000.0).round() as u64,
            });
        }
        Ok(())
    }

    /// The flight recorder attached to the service, if any. Observation is
    /// passive: recording never books a charge into the [`Usage`] ledger.
    pub fn recorder(&self) -> Option<Rc<Recorder>> {
        self.server.recorder()
    }

    /// Opens a method-phase span on the attached recorder (no-op when the
    /// service is not being recorded). The guard closes the span on drop,
    /// including on early error returns.
    pub fn span(&self, label: &str) -> Option<SpanGuard> {
        self.recorder().map(|r| r.span(label))
    }

    /// The retry policy in force for `shard`: the adaptive budget's scaled
    /// policy when one is attached, the flat context policy otherwise.
    fn shard_policy(&self, shard: usize) -> RetryPolicy {
        match self.budget {
            Some(b) => b.policy_for(shard),
            None => self.retry,
        }
    }

    /// Emits a free (chargeless) event on the attached recorder, if any.
    fn emit_event(&self, kind: EventKind) {
        if let Some(rec) = self.recorder() {
            rec.emit(kind);
        }
    }

    /// Emits the docids a gather leg just routed to the client as a free
    /// `DocTraffic` event, attributed to the serving shard. These ids were
    /// *already transmitted* (their charges live on the `Call` events);
    /// this is pure routing metadata so the traffic monitor can derive
    /// rebalance advice from observed traffic instead of seeded windows.
    fn note_doc_traffic(&self, shard: usize, ids: &[DocId]) {
        if ids.is_empty() || self.recorder().is_none() {
            return;
        }
        self.emit_event(EventKind::DocTraffic {
            shard: Some(shard),
            docs: ids.iter().map(|id| id.0 as u64).collect(),
        });
    }

    /// Books one transport leg's charged cost on the attached scheduler
    /// (no-op without one). The first leg whose completion crosses the
    /// query deadline emits a single chargeless `DeadlineMiss` event —
    /// deadline misses degrade downstream, they never error.
    fn record_leg(&self, shard: Option<usize>, label: &str, delta: &Usage) {
        if let Some(sched) = self.sched {
            let t = sched.leg(shard, label, delta.total_cost());
            if t.crossed_deadline {
                self.emit_event(EventKind::DeadlineMiss { shard });
            }
        }
    }

    /// Runs an unsharded server operation as one serial leg on the
    /// scheduler, measured by the service's own ledger delta.
    fn serial_op<T>(
        &self,
        label: &str,
        f: impl FnOnce() -> Result<T, TextError>,
    ) -> Result<T, TextError> {
        if self.sched.is_none() {
            return f();
        }
        let before = self.server.usage();
        let out = f();
        let delta = self.server.usage().since(&before);
        self.record_leg(None, label, &delta);
        out
    }

    /// Retry loop for one replica leg: like [`RetryPolicy::run`] but the
    /// backoff is charged against the failing replica's ledger and — on the
    /// primary leg only (`feed_budget`) — every attempt's outcome feeds the
    /// adaptive budget's EWMA. Secondary legs stay out of the EWMA: it
    /// models the *primary's* health, which is what the breaker routes on.
    fn leg_attempts<T>(
        &self,
        sh: &ShardedTextServer,
        shard: usize,
        replica: usize,
        policy: RetryPolicy,
        feed_budget: bool,
        op: &mut impl FnMut(usize) -> Result<T, TextError>,
    ) -> Result<T, TextError> {
        let attempts = policy.max_attempts.max(1);
        let mut failed = 0u32;
        loop {
            match op(replica) {
                Ok(v) => {
                    if feed_budget {
                        if let Some(b) = self.budget {
                            b.observe(shard, false);
                        }
                    }
                    return Ok(v);
                }
                Err(e) if e.is_transient() && failed + 1 < attempts => {
                    if feed_budget {
                        if let Some(b) = self.budget {
                            b.observe(shard, true);
                        }
                    }
                    failed += 1;
                    sh.charge_replica_backoff(shard, replica, policy.backoff_after(failed));
                    if let Some(rec) = self.recorder() {
                        rec.emit(EventKind::Retry {
                            shard: Some(shard),
                            attempt: failed,
                        });
                    }
                }
                Err(e) => {
                    if feed_budget {
                        if let Some(b) = self.budget {
                            b.observe(shard, e.is_transient());
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One shard leg with replica failover. `op` is called with the replica
    /// index to address. With R=1 this is exactly the pre-replication
    /// per-shard retry loop. With R>1 it consults the breaker (when a
    /// budget is attached): an open breaker skips the primary outright
    /// (charging it nothing), a half-open turn probes it with a single
    /// attempt (success closes the breaker), and otherwise the primary gets
    /// its full adaptive retry loop. On transient exhaustion the leg fails
    /// over through the secondaries in routing order — base policy, EWMA
    /// untouched — emitting a `Failover` event per hop. The caller sees the
    /// last transient error only when every replica is down.
    fn replicated_attempts<T>(
        &self,
        sh: &ShardedTextServer,
        shard: usize,
        mut op: impl FnMut(usize) -> Result<T, TextError>,
    ) -> Result<T, TextError> {
        let order = sh.routing_order(shard);
        if order.len() == 1 {
            let before = self.leg_baseline(sh, shard, order[0]);
            let out =
                self.leg_attempts(sh, shard, order[0], self.shard_policy(shard), true, &mut op);
            self.book_leg(sh, shard, order[0], "leg", before);
            return out;
        }
        let primary = order[0];
        let route = match self.budget {
            Some(b) => b.route(shard),
            None => Route::Primary,
        };
        let mut last: Option<TextError> = None;
        match route {
            Route::Primary => {
                let before = self.leg_baseline(sh, shard, primary);
                match self.leg_attempts(
                    sh,
                    shard,
                    primary,
                    self.shard_policy(shard),
                    true,
                    &mut op,
                ) {
                    Ok(v) => {
                        self.settle_primary_leg(sh, shard, primary, order[1], before, &mut op);
                        return Ok(v);
                    }
                    Err(e) if e.is_transient() => {
                        self.book_leg(sh, shard, primary, "leg", before);
                        if let Some(b) = self.budget {
                            if b.open_breaker_if_dead(shard) {
                                self.emit_event(EventKind::CircuitOpen {
                                    shard,
                                    rate: b.rate_of(shard),
                                });
                            }
                        }
                        last = Some(e);
                    }
                    Err(e) => {
                        self.book_leg(sh, shard, primary, "leg", before);
                        return Err(e);
                    }
                }
            }
            Route::HalfOpenProbe => {
                let b = self.budget.expect("half-open probes require a budget");
                let before = self.leg_baseline(sh, shard, primary);
                let attempt = op(primary);
                self.book_leg(sh, shard, primary, "half-open-probe", before);
                match attempt {
                    Ok(v) => {
                        b.observe(shard, false);
                        if b.close_breaker(shard) {
                            self.emit_event(EventKind::CircuitClose {
                                shard,
                                rate: b.rate_of(shard),
                            });
                        }
                        return Ok(v);
                    }
                    Err(e) if e.is_transient() => {
                        b.observe(shard, true);
                        last = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
            // Breaker open, not a probe turn: the primary is skipped and
            // charged nothing.
            Route::Replica => {}
        }
        for &r in order.iter().skip(1) {
            self.emit_event(EventKind::Failover { shard, replica: r });
            let before = self.leg_baseline(sh, shard, r);
            let out = self.leg_attempts(sh, shard, r, self.retry, false, &mut op);
            self.book_leg(sh, shard, r, "failover-leg", before);
            match out {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("a transient failure preceded every failover"))
    }

    /// Snapshot of one replica's ledger before a leg, taken only when a
    /// scheduler is attached (the unscheduled hot path stays free).
    fn leg_baseline(&self, sh: &ShardedTextServer, shard: usize, replica: usize) -> Option<Usage> {
        self.sched.map(|_| sh.replica(shard, replica).usage())
    }

    /// Books one completed (or exhausted) replica leg on the scheduler.
    /// Returns the leg's charged delta when measured.
    fn book_leg(
        &self,
        sh: &ShardedTextServer,
        shard: usize,
        replica: usize,
        label: &str,
        before: Option<Usage>,
    ) -> Option<Usage> {
        let before = before?;
        let delta = sh.replica(shard, replica).usage().since(&before);
        self.record_leg(Some(shard), label, &delta);
        Some(delta)
    }

    /// Books a *successful* primary leg's timing and — when the leg was a
    /// straggler (charged cost above the shard's hedge threshold, i.e. the
    /// seeded latency quantile from the budget's EWMA) — races a hedge
    /// read against the first secondary. The hedge replica runs the same
    /// operation once; the virtual clock picks the winner and the loser's
    /// *entire* leg charge is rebated through the ledger (first-winner-
    /// cancels-loser). The result multiset is never affected: replicas are
    /// consistent, so the caller keeps the primary's answer either way.
    fn settle_primary_leg<T>(
        &self,
        sh: &ShardedTextServer,
        shard: usize,
        primary: usize,
        hedge_replica: usize,
        before: Option<Usage>,
        op: &mut impl FnMut(usize) -> Result<T, TextError>,
    ) {
        let Some(before) = before else { return };
        let delta = sh.replica(shard, primary).usage().since(&before);
        let cost = delta.total_cost();
        // Threshold first, then feed: a straggler must not raise the bar
        // it is judged against.
        let threshold = self.budget.map(|b| {
            let t = b.hedge_threshold(shard);
            b.observe_latency(shard, cost);
            t
        });
        let (Some(sched), Some(threshold)) = (self.sched, threshold) else {
            self.record_leg(Some(shard), "leg", &delta);
            return;
        };
        if cost <= threshold {
            self.record_leg(Some(shard), "leg", &delta);
            return;
        }
        self.emit_event(EventKind::Hedge {
            shard,
            replica: hedge_replica,
        });
        let hedge_before = sh.replica(shard, hedge_replica).usage();
        let hedged = op(hedge_replica);
        let hedge_delta = sh.replica(shard, hedge_replica).usage().since(&hedge_before);
        let timing = if hedged.is_ok() {
            sched.hedged_leg(shard, "leg", cost, threshold, hedge_delta.total_cost())
        } else {
            // The hedge itself faulted: the primary's answer stands and
            // the failed hedge is the cancelled leg regardless of timing.
            sched.failed_hedge_leg(shard, "leg", cost, threshold, hedge_delta.total_cost())
        };
        if timing.crossed_deadline {
            self.emit_event(EventKind::DeadlineMiss { shard: Some(shard) });
        }
        let (loser, loser_delta) = if timing.hedge_won {
            (primary, &delta)
        } else {
            (hedge_replica, &hedge_delta)
        };
        sh.rebate_replica(shard, loser, loser_delta);
        self.emit_event(EventKind::Cancel {
            shard,
            replica: loser,
        });
    }

    /// Scatter/gather search over every shard with per-shard retries.
    /// Transient exhaustion at shard `i` wraps the results gathered so far
    /// in a typed [`PartialShardError`]; non-transient errors (cap
    /// renegotiations, syntax) propagate raw so the callers' re-packaging
    /// degradation paths keep working unchanged.
    fn sharded_gather(
        &self,
        sh: &ShardedTextServer,
        expr: &SearchExpr,
    ) -> Result<SearchResult, TextError> {
        if expr.term_count() > self.server.max_terms() {
            // Route through the service so the rejection is ledgered once.
            return self.server.search(expr);
        }
        let n = sh.shard_count();
        let _gather = self.span("gather");
        // Scatter phase: shard legs overlap on the virtual clock. The
        // phase must close on every exit, error paths included.
        let opened = self.sched.is_some_and(Scheduler::begin_phase);
        let out = self.gather_shards(sh, expr, n);
        if opened {
            self.sched.expect("opened implies a scheduler").end_phase();
        }
        out
    }

    /// The per-shard gather loop. Routing is decided at the topology epoch
    /// in force when the loop starts; a migration batch committing
    /// mid-gather (paced under these very legs) bumps the epoch, and the
    /// loop re-scatters *only* the shards the commit touched
    /// (`RoutingStale`, charge-free) — mirroring the service-level scatter.
    /// With stats-aware routing on, shards whose vocabulary provably holds
    /// no postings for `expr` are answered empty for free; the planner
    /// folds the same pruned fan-out into its costs
    /// (`CostParams::with_scatter_fanout`).
    fn gather_shards(
        &self,
        sh: &ShardedTextServer,
        expr: &SearchExpr,
        n: usize,
    ) -> Result<SearchResult, TextError> {
        let mut done: Vec<Option<SearchResult>> = vec![None; n];
        let mut from_epoch = sh.topology_epoch();
        let mut relevant = sh.relevant_shards(expr);
        loop {
            let now = sh.topology_epoch();
            if now != from_epoch {
                for i in sh.note_routing_stale(from_epoch) {
                    done[i] = None;
                }
                relevant = sh.relevant_shards(expr);
                from_epoch = now;
            }
            for i in 0..n {
                if done[i].is_some() {
                    continue;
                }
                if !relevant[i] {
                    done[i] = Some(SearchResult { docs: Vec::new() });
                    continue;
                }
                let _shard_span = self.span(&format!("gather/shard{i}"));
                match self.replicated_attempts(sh, i, |r| sh.search_replica(i, r, expr)) {
                    Ok(r) => {
                        self.note_doc_traffic(i, &r.ids());
                        done[i] = Some(r);
                    }
                    Err(e) if e.is_transient() => {
                        return Err(TextError::Shard(Box::new(PartialShardError {
                            partial: done,
                            failed_shard: i,
                            error: e,
                            epoch: sh.topology_epoch(),
                        })))
                    }
                    Err(e) => return Err(e),
                }
            }
            if sh.topology_epoch() == from_epoch {
                break;
            }
        }
        Ok(ShardedTextServer::merge(
            done.into_iter().map(|r| r.expect("all gathered")).collect(),
        ))
    }

    /// [`sharded_gather`](Self::sharded_gather) plus gather completion:
    /// when a replicated gather still fails mid-way (every replica of one
    /// shard down after retries and failover), resume from the
    /// [`PartialShardError`]'s partial results — already-transmitted shard
    /// responses are reused verbatim, only the missing keyspace is
    /// re-scattered. Unreplicated services keep the abort-with-partial
    /// contract unchanged: with no replica to fail over to, an immediate
    /// re-scatter would just re-buy the same postings from the same dead
    /// shard.
    ///
    /// A completion round can itself fail partially (a *different* shard
    /// exhausts its replicas mid-re-scatter). Each round gets its own
    /// `complete-gather[k/n]` span computed from the round's *own* partial
    /// state, so the spans nest in completion order instead of the first
    /// round's counts being stamped on every retry. Rounds continue while
    /// they make progress (strictly more shards gathered); a round that
    /// gathers nothing new means some shard is down on every replica, and
    /// its error propagates.
    fn sharded_search(
        &self,
        sh: &ShardedTextServer,
        expr: &SearchExpr,
    ) -> Result<SearchResult, TextError> {
        let mut out = self.sharded_gather(sh, expr);
        if sh.replication_factor() > 1 {
            while let Err(TextError::Shard(pse)) = out {
                let gathered = pse.gathered();
                let _span = self.span(&format!(
                    "complete-gather[{}/{}]",
                    gathered,
                    pse.partial.len()
                ));
                let before = self.sched.map(|_| self.server.usage());
                // The partials carry the epoch they were gathered at: a
                // migration batch that committed since invalidates exactly
                // the shards it touched, and completion re-scatters those
                // alongside the failed one.
                let round = sh.complete_gather_from(&pse.partial, expr, pse.epoch);
                if let Some(before) = before {
                    let delta = self.server.usage().since(&before);
                    self.record_leg(None, "complete-gather", &delta);
                }
                match round {
                    Err(TextError::Shard(next)) if next.gathered() > gathered => {
                        out = Err(TextError::Shard(next));
                    }
                    other => return other,
                }
            }
        }
        out
    }

    /// Retrying [`TextService::search`]; per-shard retries, replica
    /// failover, and gather completion when sharded.
    pub fn search(&self, expr: &SearchExpr) -> Result<SearchResult, TextError> {
        self.guard_budget()?;
        match self.server.as_sharded() {
            Some(sh) => self.sharded_search(sh, expr),
            None => {
                self.serial_op("search", || {
                    self.retry.run(self.server, || self.server.search(expr))
                })
            }
        }
    }

    /// Retrying [`TextService::probe`]. Sharded probing is all-shards-or-
    /// error: a probe's ids feed candidate sets, so a partial id list would
    /// silently drop matches — the typed error forces the caller through
    /// its degradation path instead. With replication the error only
    /// surfaces (and the caller only degrades to "unknown — don't prune")
    /// when *every* replica of some shard is down.
    pub fn probe(&self, expr: &SearchExpr) -> Result<Vec<DocId>, TextError> {
        self.guard_budget()?;
        match self.server.as_sharded() {
            Some(sh) => Ok(self.sharded_search(sh, expr)?.ids()),
            None => {
                self.serial_op("probe", || {
                    self.retry.run(self.server, || self.server.probe(expr))
                })
            }
        }
    }

    /// Degrading probe: probing is an optimization, never a correctness
    /// requirement, so when the server stays down past the retry budget
    /// this returns `None` ("outcome unknown — don't prune") instead of
    /// failing the whole method.
    pub fn try_probe(&self, expr: &SearchExpr) -> Option<Vec<DocId>> {
        self.probe(expr).ok()
    }

    /// Retrying [`TextService::retrieve`]; routed to (and retried against)
    /// the owning shard when sharded, with replica failover.
    pub fn retrieve(&self, id: DocId) -> Result<Document, TextError> {
        self.guard_budget()?;
        match self.server.as_sharded() {
            Some(sh) => {
                let shard = sh
                    .owner_of(id)
                    .ok_or(TextError::UnknownDoc(id))?;
                let doc = self.replicated_attempts(sh, shard, |r| sh.retrieve_replica(shard, r, id))?;
                self.note_doc_traffic(shard, &[id]);
                Ok(doc)
            }
            None => {
                self.serial_op("retrieve", || {
                    self.retry.run(self.server, || self.server.retrieve(id))
                })
            }
        }
    }

    /// Retrying [`TextService::search_batch`]. The batch façade validates
    /// caps before charging, so a transient fault fails (and retries) the
    /// whole batch. Sharded batches scatter per shard with per-shard
    /// retries; a shard exhausting its budget yields the typed shard error
    /// (no per-member partial sets — the batch is all-or-error).
    pub fn search_batch(&self, exprs: &[SearchExpr]) -> Result<BatchResult, TextError> {
        self.guard_budget()?;
        match self.server.as_sharded() {
            Some(sh) => {
                for e in exprs {
                    if e.term_count() > self.server.max_terms() {
                        return self.server.search_batch(exprs);
                    }
                }
                let n = sh.shard_count();
                let _gather = self.span("gather");
                let opened = self.sched.is_some_and(Scheduler::begin_phase);
                let out = self.batch_shards(sh, exprs, n);
                if opened {
                    self.sched.expect("opened implies a scheduler").end_phase();
                }
                out
            }
            None => {
                self.serial_op("search-batch", || {
                    self.retry.run(self.server, || self.server.search_batch(exprs))
                })
            }
        }
    }

    /// Batch analogue of [`gather_shards`](Self::gather_shards): a shard is
    /// relevant when *any* member may match there, epoch bumps re-scatter
    /// only the shards a concurrent commit touched.
    fn batch_shards(
        &self,
        sh: &ShardedTextServer,
        exprs: &[SearchExpr],
        n: usize,
    ) -> Result<BatchResult, TextError> {
        let batch_mask = |sh: &ShardedTextServer| -> Vec<bool> {
            let masks: Vec<Vec<bool>> = exprs.iter().map(|e| sh.relevant_shards(e)).collect();
            (0..n)
                .map(|i| masks.iter().any(|m| m[i]) || masks.is_empty())
                .collect()
        };
        let mut done: Vec<Option<BatchResult>> = vec![None; n];
        let mut from_epoch = sh.topology_epoch();
        let mut relevant = batch_mask(sh);
        loop {
            let now = sh.topology_epoch();
            if now != from_epoch {
                for i in sh.note_routing_stale(from_epoch) {
                    done[i] = None;
                }
                relevant = batch_mask(sh);
                from_epoch = now;
            }
            for i in 0..n {
                if done[i].is_some() {
                    continue;
                }
                if !relevant[i] {
                    done[i] = Some(BatchResult {
                        results: vec![SearchResult { docs: Vec::new() }; exprs.len()],
                    });
                    continue;
                }
                let _shard_span = self.span(&format!("gather/shard{i}"));
                match self.replicated_attempts(sh, i, |r| sh.batch_replica(i, r, exprs)) {
                    Ok(b) => {
                        let ids: Vec<DocId> =
                            b.results.iter().flat_map(SearchResult::ids).collect();
                        self.note_doc_traffic(i, &ids);
                        done[i] = Some(b);
                    }
                    Err(e) if e.is_transient() => {
                        return Err(TextError::Shard(Box::new(PartialShardError {
                            partial: Vec::new(),
                            failed_shard: i,
                            error: e,
                            epoch: sh.topology_epoch(),
                        })))
                    }
                    Err(e) => return Err(e),
                }
            }
            if sh.topology_epoch() == from_epoch {
                break;
            }
        }
        let per_shard: Vec<BatchResult> =
            done.into_iter().map(|b| b.expect("all gathered")).collect();
        let results = (0..exprs.len())
            .map(|j| {
                ShardedTextServer::merge(per_shard.iter().map(|b| b.results[j].clone()).collect())
            })
            .collect();
        Ok(BatchResult { results })
    }
}

/// What a method did and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method label (`"TS"`, `"P1+TS"`, ...).
    pub method: String,
    /// Text-server usage charged to this method (delta).
    pub text: Usage,
    /// Document–tuple comparisons performed relationally.
    pub rtp_comparisons: u64,
    /// `c_a ×` comparisons.
    pub rtp_cost: f64,
    /// Rows emitted.
    pub output_rows: usize,
}

impl MethodReport {
    /// Total simulated cost: text-server charges plus relational text
    /// processing.
    pub fn total_cost(&self) -> f64 {
        self.text.total_cost() + self.rtp_cost
    }
}

impl fmt::Display for MethodReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2}s (text {}, rtp {} cmp = {:.2}s), {} rows",
            self.method,
            self.total_cost(),
            self.text,
            self.rtp_comparisons,
            self.rtp_cost,
            self.output_rows
        )
    }
}

/// A method's result: the output table plus its report.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Output rows, shaped per the [`Projection`].
    pub table: Table,
    /// Cost/usage report.
    pub report: MethodReport,
}

impl<'a> ForeignJoin<'a> {
    /// Number of foreign join predicates `k`.
    pub fn k(&self) -> usize {
        self.join_cols.len()
    }

    /// Validates internal consistency (parallel arrays, known columns).
    pub fn validate(&self) -> Result<(), MethodError> {
        if self.join_cols.len() != self.join_fields.len() {
            return Err(MethodError::NotApplicable(
                "join_cols and join_fields must be parallel".into(),
            ));
        }
        if self.join_cols.is_empty() && self.selections.is_empty() {
            return Err(MethodError::NotApplicable(
                "foreign join needs at least one join predicate or selection".into(),
            ));
        }
        for c in &self.join_cols {
            if c.0 >= self.rel.schema().len() {
                return Err(MethodError::BadProbeColumns(format!(
                    "column {} out of range",
                    c.0
                )));
            }
        }
        Ok(())
    }

    /// The conjunction of the constant text selections, if any.
    pub fn selections_expr(&self) -> Option<SearchExpr> {
        if self.selections.is_empty() {
            return None;
        }
        Some(SearchExpr::and(
            self.selections
                .iter()
                .map(|s| SearchExpr::term_in(&s.term, s.field))
                .collect(),
        ))
    }

    /// The join-column values of `t` restricted to predicate indices
    /// `which` (indices into `join_cols`). Returns `None` if any value is
    /// NULL or empty — such a tuple can never match, so no search is sent.
    pub fn key_values(&self, t: &Tuple, which: &[usize]) -> Option<Vec<String>> {
        let mut out = Vec::with_capacity(which.len());
        for &i in which {
            match t.get(self.join_cols[i]).as_str() {
                Some(s) if !s.trim().is_empty() => out.push(s.to_owned()),
                _ => return None,
            }
        }
        Some(out)
    }

    /// Builds the conjunct for predicate indices `which` instantiated with
    /// `values` (parallel to `which`): each becomes `value in field`.
    pub fn instantiated_conjunct(&self, which: &[usize], values: &[String]) -> SearchExpr {
        debug_assert_eq!(which.len(), values.len());
        SearchExpr::and(
            which
                .iter()
                .zip(values)
                .map(|(&i, v)| SearchExpr::term_in(v, self.join_fields[i]))
                .collect(),
        )
    }

    /// The full instantiated search for tuple `t` over predicate indices
    /// `which`: selections ∧ instantiated join predicates. `None` if the
    /// tuple has a NULL/empty join value among `which`.
    pub fn instantiated_search(&self, t: &Tuple, which: &[usize]) -> Option<SearchExpr> {
        let values = self.key_values(t, which)?;
        let conj = self.instantiated_conjunct(which, &values);
        Some(match self.selections_expr() {
            Some(sel) => SearchExpr::and(vec![sel, conj]),
            None => conj,
        })
    }

    /// All predicate indices `[0, k)`.
    pub fn all_preds(&self) -> Vec<usize> {
        (0..self.k()).collect()
    }

    /// The output schema for this join's projection.
    pub fn output_schema(&self, text_schema: &TextSchema) -> RelSchema {
        match self.projection {
            Projection::RelOnly => self.rel.schema().clone(),
            Projection::DocIds => {
                RelSchema::from_columns(vec![("docid", ValueType::Str)])
            }
            Projection::Full => {
                let mut s = self.rel.schema().clone();
                let mut add = |name: &str| {
                    let mut candidate = name.to_owned();
                    if s.column_by_name(&candidate).is_some() {
                        candidate = format!("mercury.{name}");
                    }
                    s.add_column(candidate, ValueType::Str);
                };
                add("docid");
                for (_, def) in text_schema.iter() {
                    add(&def.name);
                }
                s
            }
        }
    }

    /// An empty output table for this join.
    pub fn output_table(&self, text_schema: &TextSchema, name: &str) -> Table {
        Table::new(name, self.output_schema(text_schema))
    }

    /// Converts a long-form document into the value suffix appended to an
    /// output row under [`Projection::Full`]: docid, then each field's
    /// values joined with `"; "` (NULL when the field is absent).
    pub fn doc_values(&self, id: DocId, doc: &Document, text_schema: &TextSchema) -> Vec<Value> {
        let mut out = Vec::with_capacity(1 + text_schema.len());
        out.push(Value::str(id.to_string()));
        for (fid, _) in text_schema.iter() {
            let vs = doc.values(fid);
            if vs.is_empty() {
                out.push(Value::Null);
            } else {
                out.push(Value::str(vs.join("; ")));
            }
        }
        out
    }

    /// Emits output rows for one (tuple, matched docs) pair according to the
    /// projection. `docs` must be the long forms when the projection is
    /// `Full`.
    pub fn emit(
        &self,
        out: &mut Table,
        text_schema: &TextSchema,
        tuple: &Tuple,
        docs: &[(DocId, Document)],
    ) {
        if docs.is_empty() {
            return;
        }
        match self.projection {
            Projection::RelOnly => out.push(tuple.clone()),
            Projection::DocIds => {
                for (id, _) in docs {
                    out.push(Tuple::new(vec![Value::str(id.to_string())]));
                }
            }
            Projection::Full => {
                for (id, d) in docs {
                    let mut vals = tuple.values().to_vec();
                    vals.extend(self.doc_values(*id, d, text_schema));
                    out.push(Tuple::new(vals));
                }
            }
        }
    }

    /// Whether every join field is available in short-form results — when
    /// true, RTP-style matching can use the search results themselves and
    /// skip long-form retrieval (unless the projection needs full docs).
    pub fn short_form_sufficient(&self, text_schema: &TextSchema) -> bool {
        self.join_fields
            .iter()
            .all(|f| text_schema.def(*f).in_short_form)
    }

    /// Does `doc_fields` (values of the joined field) contain the tuple's
    /// join value for predicate `i`, under the relational string-matching
    /// semantics? Used by the RTP family; counts as one comparison.
    pub fn rel_match_one(&self, field_values: &[String], needle: &str) -> bool {
        field_values
            .iter()
            .any(|h| textjoin_rel::strmatch::contains_term(h, needle))
    }

    /// Relationally checks all join predicates of `t` against a short-form
    /// document. Increments `comparisons` once per predicate checked.
    pub fn rel_match_short(&self, t: &Tuple, d: &ShortDoc, comparisons: &mut u64) -> bool {
        for (i, (&col, &field)) in self.join_cols.iter().zip(&self.join_fields).enumerate() {
            let _ = i;
            *comparisons += 1;
            let Some(needle) = t.get(col).as_str() else {
                return false;
            };
            if !self.rel_match_one(d.values(field), needle) {
                return false;
            }
        }
        true
    }

    /// Relationally checks all join predicates of `t` against a long-form
    /// document. Increments `comparisons` once per predicate checked.
    pub fn rel_match_long(&self, t: &Tuple, d: &Document, comparisons: &mut u64) -> bool {
        for (&col, &field) in self.join_cols.iter().zip(&self.join_fields) {
            *comparisons += 1;
            let Some(needle) = t.get(col).as_str() else {
                return false;
            };
            if !self.rel_match_one(d.values(field), needle) {
                return false;
            }
        }
        true
    }
}

/// Helper: builds a [`MethodReport`] from a usage delta.
pub(crate) fn report(
    method: impl Into<String>,
    ctx: &ExecContext<'_>,
    before: &Usage,
    rtp_comparisons: u64,
    output_rows: usize,
) -> MethodReport {
    MethodReport {
        method: method.into(),
        text: ctx.server.usage().since(before),
        rtp_comparisons,
        rtp_cost: ctx.c_a * rtp_comparisons as f64,
        output_rows,
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared fixtures for method tests: a small university database and a
    //! Mercury-like collection with known overlaps.

    use textjoin_rel::schema::RelSchema;
    use textjoin_rel::table::Table;
    use textjoin_rel::tuple;
    use textjoin_rel::value::ValueType;
    use textjoin_text::doc::{Document, TextSchema};
    use textjoin_text::index::Collection;
    use textjoin_text::server::TextServer;

    /// Students: name, advisor, area.
    pub fn student() -> Table {
        let schema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("advisor", ValueType::Str),
            ("area", ValueType::Str),
        ]);
        let mut t = Table::new("student", schema);
        t.push(tuple!["Gravano", "Garcia", "db"]);
        t.push(tuple!["Kao", "Garcia", "db"]);
        t.push(tuple!["Pham", "Wiederhold", "ai"]);
        t.push(tuple!["DeSmedt", "Wiederhold", "ai"]);
        t
    }

    /// A collection where:
    /// * doc0: title "text retrieval systems", authors Gravano, Garcia
    /// * doc1: title "text indexing", author Kao
    /// * doc2: title "belief update", author Pham
    /// * doc3: title "query optimization", author Garcia
    pub fn corpus() -> TextServer {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let ab = schema.field_by_name("abstract").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(
            Document::new()
                .with(ti, "text retrieval systems")
                .with(au, "Gravano")
                .with(au, "Garcia")
                .with(ab, "We study text retrieval."),
        );
        c.add_document(
            Document::new()
                .with(ti, "text indexing")
                .with(au, "Kao")
                .with(ab, "Indexing structures for text."),
        );
        c.add_document(
            Document::new()
                .with(ti, "belief update")
                .with(au, "Pham")
                .with(ab, "Belief revision and update."),
        );
        c.add_document(
            Document::new()
                .with(ti, "query optimization")
                .with(au, "Garcia")
                .with(ab, "Optimizing queries."),
        );
        TextServer::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_text::server::TextServer;
    use testkit::{corpus, student};

    fn fj<'a>(rel: &'a Table, server: &TextServer, projection: Projection) -> ForeignJoin<'a> {
        let ts = server.collection().schema();
        ForeignJoin {
            rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: vec![TextSelection {
                term: "text".into(),
                field: ts.field_by_name("title").unwrap(),
            }],
            projection,
        }
    }

    #[test]
    fn validate_catches_mismatch() {
        let rel = student();
        let server = corpus();
        let mut j = fj(&rel, &server, Projection::Full);
        assert!(j.validate().is_ok());
        j.join_fields.clear();
        assert!(j.validate().is_err());
    }

    #[test]
    fn instantiated_search_renders() {
        let rel = student();
        let server = corpus();
        let j = fj(&rel, &server, Projection::Full);
        let e = j
            .instantiated_search(&rel.rows()[0], &j.all_preds())
            .unwrap();
        assert_eq!(
            e.display(server.collection().schema()).to_string(),
            "TI='text' and AU='gravano'"
        );
    }

    #[test]
    fn null_join_value_skips() {
        let server = corpus();
        let schema = RelSchema::from_columns(vec![("name", ValueType::Str)]);
        let mut rel = Table::new("r", schema);
        rel.push(Tuple::new(vec![Value::Null]));
        rel.push(Tuple::new(vec![Value::str("  ")]));
        let ts = server.collection().schema();
        let j = ForeignJoin {
            rel: &rel,
            join_cols: vec![ColId(0)],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: vec![],
            projection: Projection::RelOnly,
        };
        assert!(j.instantiated_search(&rel.rows()[0], &[0]).is_none());
        assert!(j.instantiated_search(&rel.rows()[1], &[0]).is_none());
    }

    #[test]
    fn output_schema_shapes() {
        let rel = student();
        let server = corpus();
        let ts = server.collection().schema();
        assert_eq!(
            fj(&rel, &server, Projection::RelOnly).output_schema(ts).len(),
            3
        );
        assert_eq!(
            fj(&rel, &server, Projection::DocIds).output_schema(ts).len(),
            1
        );
        // rel(3) + docid + 5 fields
        assert_eq!(
            fj(&rel, &server, Projection::Full).output_schema(ts).len(),
            9
        );
    }

    #[test]
    fn short_form_sufficiency() {
        let rel = student();
        let server = corpus();
        let ts = server.collection().schema();
        let j = fj(&rel, &server, Projection::RelOnly);
        assert!(j.short_form_sufficient(ts), "author is short-form");
        let j2 = ForeignJoin {
            join_fields: vec![ts.field_by_name("abstract").unwrap()],
            ..j
        };
        assert!(!j2.short_form_sufficient(ts));
    }

    #[test]
    fn rel_match_counts_comparisons() {
        let rel = student();
        let server = corpus();
        let j = fj(&rel, &server, Projection::Full);
        let doc = server.collection().document(textjoin_text::doc::DocId(0)).unwrap();
        let mut cmp = 0;
        assert!(j.rel_match_long(&rel.rows()[0], doc, &mut cmp)); // Gravano
        assert!(!j.rel_match_long(&rel.rows()[2], doc, &mut cmp)); // Pham
        assert_eq!(cmp, 2);
    }
}
