//! Semi-join (SJ and SJ+RTP) — paper, Section 3.2.
//!
//! Packages many tuple-substituted conjuncts into few searches using the
//! `or` connector: for join-column tuples `x_1 … x_n`, the text system
//! evaluates `⋁_j P(x_j)` instead of `n` separate searches. The number of
//! basic terms per search is bounded by the server's cap `M`, so
//! `⌈n / capacity⌉` searches are sent, where `capacity` accounts for the
//! terms each conjunct contributes and the selections factored out of the
//! disjunction (as in the paper's example `TI=text and (AU=Gravano or … or
//! AU=Kao)`).
//!
//! SJ alone answers docid-projection queries (the text side of the
//! semi-join). For other projections the matched documents are fetched and
//! matched back to tuples relationally — SJ+RTP.

use std::collections::{BTreeSet, HashMap, VecDeque};

use textjoin_rel::ops::group_by;
use textjoin_text::doc::{DocId, Document, ShortDoc};
use textjoin_text::expr::SearchExpr;
use textjoin_text::server::TextError;

use super::{report, ExecContext, ForeignJoin, MethodError, MethodOutcome, Projection};

/// How many conjuncts fit in one search given the term cap `m`, the number
/// of join predicates `k`, and the number of selection terms factored out.
pub fn conjuncts_per_search(m: usize, k: usize, selection_terms: usize) -> usize {
    m.saturating_sub(selection_terms)
        .checked_div(k.max(1))
        .unwrap_or(0)
}

/// Runs the semi-join method. For [`Projection::DocIds`] this is pure SJ;
/// otherwise the RTP completion step runs after the semi-join (SJ+RTP).
pub fn semi_join(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    if fj.join_cols.is_empty() {
        return Err(MethodError::NotApplicable(
            "SJ needs at least one foreign join predicate".into(),
        ));
    }
    let m = ctx.server.max_terms();
    let k = fj.k();
    let sel_terms = fj.selections.len();
    let per = conjuncts_per_search(m, k, sel_terms);
    if per == 0 {
        return Err(MethodError::NotApplicable(format!(
            "term cap {m} cannot fit a conjunct of {k} join terms plus {sel_terms} selections"
        )));
    }

    let before = ctx.server.usage();
    let text_schema = ctx.server.schema();
    let label = if fj.projection == Projection::DocIds {
        "SJ"
    } else {
        "SJ+RTP"
    };
    let _method_span = ctx.span(label);
    let mut out = fj.output_table(text_schema, label);
    let all = fj.all_preds();

    // Distinct join keys with their source rows.
    let groups: Vec<(Vec<String>, Vec<usize>)> = group_by(fj.rel, &fj.join_cols)
        .into_iter()
        .filter_map(|(_, rows)| {
            let key = fj.key_values(&fj.rel.rows()[rows[0]], &all)?;
            Some((key, rows))
        })
        .collect();

    // Send the packed disjunctions through a work queue rather than fixed
    // chunks: the server may renegotiate its term cap mid-join
    // (`CapReduced`), so capacity is recomputed from the live cap before
    // every send, oversized packages are split proactively, and a package
    // the server still refuses (`TooManyTerms` / `CapReduced`) is halved
    // and requeued. Degradation bottoms out at single conjuncts — if one
    // conjunct cannot fit, no packaging can, and the error surfaces.
    let mut matched: BTreeSet<DocId> = BTreeSet::new();
    let mut short_docs: HashMap<DocId, ShortDoc> = HashMap::new();
    let mut queue: VecDeque<Vec<(Vec<String>, Vec<usize>)>> = VecDeque::new();
    if !groups.is_empty() {
        queue.push_back(groups);
    }
    let package_span = ctx.span("package");
    while let Some(mut chunk) = queue.pop_front() {
        let m_now = ctx.server.max_terms();
        let per_now = conjuncts_per_search(m_now, k, sel_terms);
        if per_now == 0 {
            return Err(MethodError::NotApplicable(format!(
                "term cap {m_now} cannot fit a conjunct of {k} join terms \
                 plus {sel_terms} selections"
            )));
        }
        if chunk.len() > per_now {
            let rest = chunk.split_off(per_now);
            queue.push_front(rest);
        }
        let disjuncts: Vec<SearchExpr> = chunk
            .iter()
            .map(|(key, _)| fj.instantiated_conjunct(&all, key))
            .collect();
        let body = SearchExpr::or(disjuncts);
        let expr = match fj.selections_expr() {
            Some(sel) => SearchExpr::and(vec![sel, body]),
            None => body,
        };
        match ctx.search(&expr) {
            Ok(result) => {
                for d in result.docs {
                    matched.insert(d.id);
                    short_docs.entry(d.id).or_insert(d);
                }
            }
            Err(TextError::TooManyTerms { .. } | TextError::CapReduced { .. })
                if chunk.len() > 1 =>
            {
                let back = chunk.split_off(chunk.len() / 2);
                queue.push_front(back);
                queue.push_front(chunk);
            }
            Err(e) => return Err(e.into()),
        }
    }
    drop(package_span);

    // Pure semi-join of the text side: emit docids and stop.
    if fj.projection == Projection::DocIds {
        for id in &matched {
            fj.emit(
                &mut out,
                text_schema,
                &fj.rel.rows()[0],
                &[(*id, Document::new())],
            );
        }
        let rows = out.len();
        return Ok(MethodOutcome {
            table: out,
            report: report(label, ctx, &before, 0, rows),
        });
    }

    // RTP completion: fetch what the matching needs and match docs back to
    // tuples.
    let need_long =
        fj.projection == Projection::Full || !fj.short_form_sufficient(text_schema);
    let long_docs: HashMap<DocId, Document> = if need_long {
        let _fetch_span = ctx.span("fetch");
        matched
            .iter()
            .map(|&id| Ok((id, ctx.retrieve(id)?)))
            .collect::<Result<_, MethodError>>()?
    } else {
        HashMap::new()
    };

    let _match_span = ctx.span("residual-match");
    let mut comparisons = 0u64;
    for t in fj.rel.iter() {
        let mut hits: Vec<(DocId, Document)> = Vec::new();
        for &id in &matched {
            let is_match = if need_long {
                fj.rel_match_long(t, &long_docs[&id], &mut comparisons)
            } else {
                fj.rel_match_short(t, &short_docs[&id], &mut comparisons)
            };
            if is_match {
                hits.push((id, long_docs.get(&id).cloned().unwrap_or_default()));
            }
        }
        fj.emit(&mut out, text_schema, t, &hits);
    }

    let rows = out.len();
    Ok(MethodOutcome {
        table: out,
        report: report(label, ctx, &before, comparisons, rows),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{corpus, student};
    use super::super::{ForeignJoin, Projection, TextSelection};
    use super::*;
    use textjoin_rel::table::Table;
    use textjoin_text::server::TextServer;

    fn join<'a>(
        rel: &'a Table,
        server: &TextServer,
        projection: Projection,
        with_selection: bool,
    ) -> ForeignJoin<'a> {
        let ts = server.collection().schema();
        ForeignJoin {
            rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: if with_selection {
                vec![TextSelection {
                    term: "text".into(),
                    field: ts.field_by_name("title").unwrap(),
                }]
            } else {
                vec![]
            },
            projection,
        }
    }

    #[test]
    fn capacity_arithmetic() {
        assert_eq!(conjuncts_per_search(70, 1, 1), 69);
        assert_eq!(conjuncts_per_search(70, 2, 0), 35);
        assert_eq!(conjuncts_per_search(70, 3, 1), 23);
        assert_eq!(conjuncts_per_search(2, 3, 0), 0);
        assert_eq!(conjuncts_per_search(2, 1, 2), 0);
    }

    #[test]
    fn sj_packs_into_one_search() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = join(&rel, &server, Projection::DocIds, true);
        let out = semi_join(&ctx, &fj).unwrap();
        assert_eq!(out.report.text.invocations, 1, "4 students fit one search");
        // Docs with 'text' in title authored by any student: doc0, doc1.
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.report.method, "SJ");
    }

    #[test]
    fn sj_respects_term_cap() {
        let rel = student();
        let schema = textjoin_text::doc::TextSchema::bibliographic();
        let coll = corpus();
        let _ = (schema, &coll);
        // Rebuild a server with a tiny cap: each conjunct = 1 join term + 1
        // selection; capacity = (3-1)/1 = 2 conjuncts/search → 4 keys need 2.
        let base = corpus();
        let mut small = TextServer::new(base.collection().clone());
        small.set_max_terms(3);
        let ctx = ExecContext::new(&small);
        let fj = join(&rel, &small, Projection::DocIds, true);
        let out = semi_join(&ctx, &fj).unwrap();
        assert_eq!(out.report.text.invocations, 2);
        assert_eq!(out.table.len(), 2, "result unchanged by chunking");
    }

    #[test]
    fn sj_rtp_matches_ts() {
        let rel = student();
        let s1 = corpus();
        let ctx1 = ExecContext::new(&s1);
        let sj = semi_join(&ctx1, &join(&rel, &s1, Projection::Full, true)).unwrap();
        assert_eq!(sj.report.method, "SJ+RTP");

        let s2 = corpus();
        let ctx2 = ExecContext::new(&s2);
        let ts =
            super::super::ts::tuple_substitution(&ctx2, &join(&rel, &s2, Projection::Full, true), true)
                .unwrap();
        let mut a: Vec<String> = sj.table.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = ts.table.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sj_rtp_relonly_uses_short_form() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let out = semi_join(&ctx, &join(&rel, &server, Projection::RelOnly, true)).unwrap();
        assert_eq!(out.report.text.docs_long, 0, "author is short-form");
        assert_eq!(out.table.len(), 2); // Gravano, Kao
        assert!(out.report.rtp_comparisons > 0);
    }

    #[test]
    fn sj_without_selection() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let out = semi_join(&ctx, &join(&rel, &server, Projection::DocIds, false)).unwrap();
        // All docs authored by any student: doc0 (Gravano), doc1 (Kao),
        // doc2 (Pham). DeSmedt has none.
        assert_eq!(out.table.len(), 3);
    }

    #[test]
    fn cap_too_small_is_not_applicable() {
        let rel = student();
        let base = corpus();
        let mut small = TextServer::new(base.collection().clone());
        small.set_max_terms(1);
        let ctx = ExecContext::new(&small);
        let fj = join(&rel, &small, Projection::DocIds, true);
        assert!(matches!(
            semi_join(&ctx, &fj),
            Err(MethodError::NotApplicable(_))
        ));
    }

    #[test]
    fn multi_predicate_conjuncts() {
        let rel = student();
        let server = corpus();
        let ts = server.collection().schema();
        let fj = ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("name"), rel.col("advisor")],
            join_fields: vec![
                ts.field_by_name("author").unwrap(),
                ts.field_by_name("author").unwrap(),
            ],
            selections: vec![],
            projection: Projection::RelOnly,
        };
        let ctx = ExecContext::new(&server);
        let out = semi_join(&ctx, &fj).unwrap();
        // Only Gravano (with Garcia) co-authored doc0.
        assert_eq!(out.table.len(), 1);
    }
}
