//! Relational text processing (RTP) — paper, Section 3.2.
//!
//! Ships the *text selection* conditions to the text system as a single
//! search, then finishes the join on the relational side with SQL string
//! matching. Requires (1) selection conditions on the text data, and (2)
//! join predicates whose semantics SQL string matching can mirror — our
//! `contains_term` matcher is normalization-consistent with the indexer,
//! so every `col in field` predicate qualifies.

use std::collections::HashMap;

use textjoin_text::doc::{DocId, Document};
use textjoin_text::server::{SearchResult, Usage};

use super::{report, ExecContext, ForeignJoin, MethodError, MethodOutcome, Projection};

/// Runs relational text processing.
pub fn relational_text_processing(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    if fj.selections.is_empty() {
        return Err(MethodError::NotApplicable(
            "RTP needs selection conditions on the text data".into(),
        ));
    }
    let before = ctx.server.usage();
    let _method_span = ctx.span("RTP");

    // One search carrying only the text selections.
    let sel = fj.selections_expr().expect("selections checked non-empty");
    let search_span = ctx.span("selection-search");
    let result = ctx.search(&sel)?;
    drop(search_span);
    complete(ctx, fj, result, &before)
}

/// RTP completion from a selection search that was *already transmitted*
/// (and charged). The guarded executor counts the candidate set before
/// committing to the fetch; threading its result through here means the
/// selection search is billed exactly once.
pub fn rtp_with_candidates(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    result: SearchResult,
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    let before = ctx.server.usage();
    complete(ctx, fj, result, &before)
}

fn complete(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    result: SearchResult,
    before: &Usage,
) -> Result<MethodOutcome, MethodError> {
    let text_schema = ctx.server.schema();
    let mut out = fj.output_table(text_schema, "RTP");

    // Decide whether short forms suffice for the relational matching.
    let need_long =
        fj.projection == Projection::Full || !fj.short_form_sufficient(text_schema);
    let long_docs: HashMap<DocId, Document> = if need_long {
        let _fetch_span = ctx.span("fetch-long");
        result
            .ids()
            .into_iter()
            .map(|id| Ok((id, ctx.retrieve(id)?)))
            .collect::<Result<_, MethodError>>()?
    } else {
        HashMap::new()
    };

    let _match_span = ctx.span("relational-match");
    let mut comparisons = 0u64;
    for t in fj.rel.iter() {
        let mut matched: Vec<(DocId, Document)> = Vec::new();
        for d in &result.docs {
            let is_match = if need_long {
                fj.rel_match_long(t, &long_docs[&d.id], &mut comparisons)
            } else {
                fj.rel_match_short(t, d, &mut comparisons)
            };
            if is_match {
                matched.push((d.id, long_docs.get(&d.id).cloned().unwrap_or_default()));
            }
        }
        fj.emit(&mut out, text_schema, t, &matched);
    }

    let rows = out.len();
    Ok(MethodOutcome {
        table: out,
        report: report("RTP", ctx, before, comparisons, rows),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{corpus, student};
    use super::super::{ForeignJoin, Projection, TextSelection};
    use super::*;
    use textjoin_rel::table::Table;
    use textjoin_text::server::TextServer;

    fn join<'a>(rel: &'a Table, server: &TextServer, projection: Projection) -> ForeignJoin<'a> {
        let ts = server.collection().schema();
        ForeignJoin {
            rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: vec![TextSelection {
                term: "text".into(),
                field: ts.field_by_name("title").unwrap(),
            }],
            projection,
        }
    }

    #[test]
    fn rtp_single_invocation() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let out = relational_text_processing(&ctx, &join(&rel, &server, Projection::RelOnly))
            .unwrap();
        assert_eq!(out.report.text.invocations, 1, "RTP sends one search");
        // doc0 (Gravano, Garcia) and doc1 (Kao) have 'text' in title.
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn rtp_requires_selections() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let mut fj = join(&rel, &server, Projection::RelOnly);
        fj.selections.clear();
        assert!(matches!(
            relational_text_processing(&ctx, &fj),
            Err(MethodError::NotApplicable(_))
        ));
    }

    #[test]
    fn rtp_short_form_skips_retrieval() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        // author is a short-form field; RelOnly projection → no retrieval.
        let out = relational_text_processing(&ctx, &join(&rel, &server, Projection::RelOnly))
            .unwrap();
        assert_eq!(out.report.text.docs_long, 0);
    }

    #[test]
    fn rtp_full_projection_retrieves() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let out =
            relational_text_processing(&ctx, &join(&rel, &server, Projection::Full)).unwrap();
        assert_eq!(out.report.text.docs_long, 2, "2 selection matches fetched");
        // Gravano⋈doc0, Kao⋈doc1.
        assert_eq!(out.table.len(), 2);
        // Doc fields present in output.
        let title_col = out.table.schema().column_by_name("title").unwrap();
        assert!(out.table.rows()[0].get(title_col).as_str().is_some());
    }

    #[test]
    fn rtp_matches_ts_result() {
        let rel = student();
        let s1 = corpus();
        let ctx1 = ExecContext::new(&s1);
        let rtp = relational_text_processing(&ctx1, &join(&rel, &s1, Projection::Full)).unwrap();

        let s2 = corpus();
        let ctx2 = ExecContext::new(&s2);
        let ts = super::super::ts::tuple_substitution(&ctx2, &join(&rel, &s2, Projection::Full), true)
            .unwrap();

        let mut a: Vec<String> = rtp.table.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = ts.table.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "RTP and TS must compute the same join");
    }

    #[test]
    fn rtp_counts_comparisons() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let out = relational_text_processing(&ctx, &join(&rel, &server, Projection::RelOnly))
            .unwrap();
        // 4 tuples × 2 selection-matched docs × 1 predicate = 8 comparisons.
        assert_eq!(out.report.rtp_comparisons, 8);
        assert!((out.report.rtp_cost - 8.0 * ctx.c_a).abs() < 1e-12);
    }
}
