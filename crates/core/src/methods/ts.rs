//! Tuple substitution (TS) — paper, Section 3.1.
//!
//! A nested-loop join with the relation as the outer operand: every tuple
//! is substituted into the foreign join predicates, turning them into
//! selection conditions the text system can evaluate. The default variant
//! sends one search per **distinct** projection of the relation onto the
//! join columns (the paper's improvement over naive per-tuple invocation);
//! the naive variant is kept for the ablation bench.

use textjoin_rel::ops::group_by;
use textjoin_text::doc::{DocId, Document};
use textjoin_text::expr::SearchExpr;

use super::{report, ExecContext, ForeignJoin, MethodError, MethodOutcome, Projection};

/// Runs tuple substitution. With `distinct = true` (the default used by the
/// optimizer), one search is sent per distinct join-column key; all tuples
/// sharing the key reuse its result.
pub fn tuple_substitution(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    distinct: bool,
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    if fj.join_cols.is_empty() {
        return Err(MethodError::NotApplicable(
            "TS needs at least one foreign join predicate".into(),
        ));
    }
    let before = ctx.server.usage();
    let _method_span = ctx.span(if distinct { "TS" } else { "TS-naive" });
    let text_schema = ctx.server.schema();
    let mut out = fj.output_table(text_schema, "TS");
    let all = fj.all_preds();

    // Group rows by join-column key; a singleton group per row for naive.
    let groups: Vec<Vec<usize>> = if distinct {
        group_by(fj.rel, &fj.join_cols)
            .into_iter()
            .map(|(_, idx)| idx)
            .collect()
    } else {
        (0..fj.rel.len()).map(|i| vec![i]).collect()
    };

    let _phase_span = ctx.span("substitution");
    for rows in groups {
        let first = &fj.rel.rows()[rows[0]];
        let Some(expr) = fj.instantiated_search(first, &all) else {
            continue; // NULL/empty join value: cannot match, no search sent
        };
        let result = ctx.search(&expr)?;
        if result.is_empty() {
            continue;
        }
        // Fetch long forms when the projection needs them; the short forms
        // from the result set suffice otherwise.
        let docs: Vec<(DocId, Document)> = match fj.projection {
            Projection::Full => result
                .ids()
                .into_iter()
                .map(|id| Ok((id, ctx.retrieve(id)?)))
                .collect::<Result<_, MethodError>>()?,
            _ => result
                .ids()
                .into_iter()
                .map(|id| (id, Document::new()))
                .collect(),
        };
        for &ri in &rows {
            fj.emit(&mut out, text_schema, &fj.rel.rows()[ri], &docs);
        }
    }

    let rows = out.len();
    Ok(MethodOutcome {
        table: out,
        report: report(if distinct { "TS" } else { "TS-naive" }, ctx, &before, 0, rows),
    })
}

/// Tuple substitution over the **batched** search interface — the
/// Section 8 extension ("if text systems provide the ability to accept
/// multiple queries in one invocation … invocation and possibly
/// transmission costs for the queries will be reduced").
///
/// Semantically identical to [`tuple_substitution`] with `distinct = true`;
/// the per-key searches are shipped in batches of `batch_size` (each query
/// still bounded by the term cap `M`), so the invocation charge drops from
/// one per key to one per batch, and duplicate documents within a batch
/// ship once.
pub fn tuple_substitution_batched(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    batch_size: usize,
) -> Result<MethodOutcome, MethodError> {
    fj.validate()?;
    if fj.join_cols.is_empty() {
        return Err(MethodError::NotApplicable(
            "TS needs at least one foreign join predicate".into(),
        ));
    }
    if batch_size == 0 {
        return Err(MethodError::NotApplicable(
            "batch size must be positive".into(),
        ));
    }
    let before = ctx.server.usage();
    let _method_span = ctx.span("TS-batch");
    let text_schema = ctx.server.schema();
    let mut out = fj.output_table(text_schema, "TS-batch");
    let all = fj.all_preds();

    // One (expr, source rows) per distinct key, like distinct TS.
    let package_span = ctx.span("package");
    let mut units: Vec<(SearchExpr, Vec<usize>)> = Vec::new();
    for (_, rows) in group_by(fj.rel, &fj.join_cols) {
        let first = &fj.rel.rows()[rows[0]];
        if let Some(expr) = fj.instantiated_search(first, &all) {
            units.push((expr, rows));
        }
    }
    drop(package_span);

    let _phase_span = ctx.span("substitution");
    for chunk in units.chunks(batch_size) {
        let exprs: Vec<SearchExpr> = chunk.iter().map(|(e, _)| e.clone()).collect();
        let batch = ctx.search_batch(&exprs)?;
        for ((_, rows), result) in chunk.iter().zip(&batch.results) {
            if result.is_empty() {
                continue;
            }
            let docs: Vec<(DocId, Document)> = match fj.projection {
                Projection::Full => result
                    .ids()
                    .into_iter()
                    .map(|id| Ok((id, ctx.retrieve(id)?)))
                    .collect::<Result<_, MethodError>>()?,
                _ => result
                    .ids()
                    .into_iter()
                    .map(|id| (id, Document::new()))
                    .collect(),
            };
            for &ri in rows {
                fj.emit(&mut out, text_schema, &fj.rel.rows()[ri], &docs);
            }
        }
    }

    let rows = out.len();
    Ok(MethodOutcome {
        table: out,
        report: report("TS-batch", ctx, &before, 0, rows),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testkit::{corpus, student};
    use super::super::{ForeignJoin, Projection, TextSelection};
    use super::*;
    use textjoin_rel::table::Table;
    use textjoin_rel::tuple;
    use textjoin_rel::value::ValueType;
    use textjoin_text::server::TextServer;

    fn join<'a>(
        rel: &'a Table,
        server: &TextServer,
        projection: Projection,
        with_selection: bool,
    ) -> ForeignJoin<'a> {
        let ts = server.collection().schema();
        ForeignJoin {
            rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: if with_selection {
                vec![TextSelection {
                    term: "text".into(),
                    field: ts.field_by_name("title").unwrap(),
                }]
            } else {
                vec![]
            },
            projection,
        }
    }

    #[test]
    fn ts_joins_students_to_their_docs() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = join(&rel, &server, Projection::Full, false);
        let out = tuple_substitution(&ctx, &fj, true).unwrap();
        // Gravano→doc0, Kao→doc1, Pham→doc2, DeSmedt→none
        assert_eq!(out.table.len(), 3);
        assert_eq!(out.report.output_rows, 3);
        // One search per distinct name (4 distinct names).
        assert_eq!(out.report.text.invocations, 4);
        // Full projection retrieved 3 long forms.
        assert_eq!(out.report.text.docs_long, 3);
    }

    #[test]
    fn ts_with_selection_filters() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = join(&rel, &server, Projection::RelOnly, true);
        let out = tuple_substitution(&ctx, &fj, true).unwrap();
        // Only Gravano and Kao have docs with 'text' in the title.
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.report.text.docs_long, 0, "RelOnly ships no long forms");
    }

    #[test]
    fn distinct_variant_saves_searches() {
        let schema = textjoin_rel::schema::RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut rel = Table::new("r", schema);
        rel.push(tuple!["Garcia", "CS"]);
        rel.push(tuple!["Garcia", "EE"]); // same join key, different tuple
        rel.push(tuple!["Kao", "CS"]);

        let server = corpus();
        let ts = server.collection().schema();
        let mk = |projection| ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: vec![],
            projection,
        };
        let ctx = ExecContext::new(&server);
        let out = tuple_substitution(&ctx, &mk(Projection::RelOnly), true).unwrap();
        assert_eq!(out.report.text.invocations, 2, "2 distinct names");
        // Both Garcia rows emitted (Garcia matches doc0 and doc3).
        assert_eq!(out.table.len(), 3);

        let server2 = corpus();
        let ts2 = server2.collection().schema();
        let fj2 = ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts2.field_by_name("author").unwrap()],
            selections: vec![],
            projection: Projection::RelOnly,
        };
        let ctx2 = ExecContext::new(&server2);
        let naive = tuple_substitution(&ctx2, &fj2, false).unwrap();
        assert_eq!(naive.report.text.invocations, 3, "naive sends per tuple");
        assert_eq!(naive.table.len(), out.table.len(), "same result");
    }

    #[test]
    fn docids_projection_emits_per_match() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = join(&rel, &server, Projection::DocIds, false);
        let out = tuple_substitution(&ctx, &fj, true).unwrap();
        // Gravano→doc0, Kao→doc1, Pham→doc2 = 3 docid rows
        assert_eq!(out.table.len(), 3);
        assert_eq!(out.table.schema().len(), 1);
    }

    #[test]
    fn two_predicate_join() {
        let rel = student();
        let server = corpus();
        let ts = server.collection().schema();
        // name in author AND advisor in author (co-authored with advisor)
        let fj = ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("name"), rel.col("advisor")],
            join_fields: vec![
                ts.field_by_name("author").unwrap(),
                ts.field_by_name("author").unwrap(),
            ],
            selections: vec![],
            projection: Projection::RelOnly,
        };
        let ctx = ExecContext::new(&server);
        let out = tuple_substitution(&ctx, &fj, true).unwrap();
        // Only Gravano co-authored with Garcia (doc0).
        assert_eq!(out.table.len(), 1);
        assert_eq!(
            out.table.rows()[0].get(rel.col("name")).as_str(),
            Some("Gravano")
        );
    }

    #[test]
    fn batched_ts_same_answer_fewer_invocations() {
        let rel = student();
        let s1 = corpus();
        let ctx1 = ExecContext::new(&s1);
        let fj1 = join(&rel, &s1, Projection::Full, false);
        let plain = tuple_substitution(&ctx1, &fj1, true).unwrap();

        let s2 = corpus();
        let ctx2 = ExecContext::new(&s2);
        let fj2 = join(&rel, &s2, Projection::Full, false);
        let batched = tuple_substitution_batched(&ctx2, &fj2, 16).unwrap();

        let mut a: Vec<String> = plain.table.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = batched.table.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "batching must not change the join");
        assert_eq!(batched.report.text.invocations, 1, "4 keys, one batch");
        assert!(batched.report.total_cost() < plain.report.total_cost());
        // The saving is exactly the rebated invocations (same retrievals).
        let c_i = s1.constants().c_i;
        assert!(
            (plain.report.total_cost() - batched.report.total_cost() - 3.0 * c_i).abs() < 1e-6
        );
    }

    #[test]
    fn batched_ts_respects_batch_size() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = join(&rel, &server, Projection::RelOnly, false);
        let out = tuple_substitution_batched(&ctx, &fj, 2).unwrap();
        assert_eq!(out.report.text.invocations, 2, "4 keys in batches of 2");
        assert!(tuple_substitution_batched(&ctx, &fj, 0).is_err());
    }

    #[test]
    fn cost_accounting_matches_formula_shape() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = join(&rel, &server, Projection::Full, false);
        let out = tuple_substitution(&ctx, &fj, true).unwrap();
        let c = server.constants();
        let u = &out.report.text;
        let expected = c.c_i * u.invocations as f64
            + c.c_p * u.postings_processed as f64
            + c.c_s * u.docs_short as f64
            + c.c_l * u.docs_long as f64;
        assert!((u.total_cost() - expected).abs() < 1e-9);
        assert_eq!(out.report.rtp_comparisons, 0, "TS does no relational matching");
    }
}
