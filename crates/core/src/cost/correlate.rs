//! g-correlated joint selectivity and fanout (paper, Section 4.2).
//!
//! Given predicates with selectivities `s_1 ≤ … ≤ s_k`, the *g-correlated*
//! model takes the joint selectivity to depend only on the `g` most
//! selective predicates: `S_{g,K} = Π_{i=1..g} s_i`. `g = 1` assumes full
//! correlation (terms co-occur; the joint equals the minimum), `g = k`
//! full independence (the joint equals the product). The joint fanout is
//! analogous with a document-count normalization:
//! `F_{g,K} = Π_{i=1..g} f_i / D^(g-1)`.

/// Joint selectivity `S_{g,K}`: product of the `g` smallest selectivities.
/// Empty input gives 1.0 (an empty conjunction filters nothing).
pub fn joint_selectivity(sels: &[f64], g: usize) -> f64 {
    if sels.is_empty() {
        return 1.0;
    }
    let mut v = sels.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("selectivities are finite"));
    v.iter().take(g.max(1)).product()
}

/// Joint fanout `F_{g,K}`: product of the `g` smallest fanouts divided by
/// `D^(g-1)`. Empty input gives `d` (no predicates match everything).
pub fn joint_fanout(fanouts: &[f64], d: f64, g: usize) -> f64 {
    if fanouts.is_empty() {
        return d;
    }
    let mut v = fanouts.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("fanouts are finite"));
    let g = g.max(1).min(v.len());
    let prod: f64 = v.iter().take(g).product();
    prod / d.powi(g as i32 - 1)
}

/// Expected *total* documents across `n` result sets, `V_{n,J} = n × F`
/// (paper, Section 4.3).
pub fn total_docs(n: f64, fanout: f64) -> f64 {
    n * fanout
}

/// Expected *distinct* documents across `n` result sets,
/// `U_{n,J} = D × (1 − (1 − F/D)^n)`, assuming terms of different tuples
/// occur independently. Clamped to `V = n × F` from above: the derivation
/// assumes an integer number of searches, and for fractional `n < 1`
/// (which estimators can produce) the raw expression would exceed the
/// total — distinct documents can never outnumber transmitted documents.
pub fn distinct_docs(n: f64, fanout: f64, d: f64) -> f64 {
    if d <= 0.0 {
        return 0.0;
    }
    let p = (fanout / d).clamp(0.0, 1.0);
    (d * (1.0 - (1.0 - p).powf(n))).min(total_docs(n, fanout))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_correlated_is_min() {
        assert!((joint_selectivity(&[0.5, 0.1, 0.3], 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn k_correlated_is_product() {
        let s = [0.5, 0.1, 0.3];
        assert!((joint_selectivity(&s, 3) - 0.015).abs() < 1e-12);
        // g beyond k behaves like k.
        assert!((joint_selectivity(&s, 10) - 0.015).abs() < 1e-12);
    }

    #[test]
    fn empty_predicates() {
        assert_eq!(joint_selectivity(&[], 1), 1.0);
        assert_eq!(joint_fanout(&[], 100.0, 1), 100.0);
    }

    #[test]
    fn fanout_normalization() {
        // g=2, D=100: F = f1·f2 / D.
        let f = joint_fanout(&[10.0, 20.0], 100.0, 2);
        assert!((f - 2.0).abs() < 1e-12);
        // g=1: min fanout.
        assert!((joint_fanout(&[10.0, 20.0], 100.0, 1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_docs_bounds() {
        let d = 1000.0;
        // One search: U = F.
        assert!((distinct_docs(1.0, 5.0, d) - 5.0).abs() < 1e-9);
        // Many searches: U < V and U ≤ D.
        let n = 500.0;
        let u = distinct_docs(n, 5.0, d);
        let v = total_docs(n, 5.0);
        assert!(u < v);
        assert!(u <= d);
        // Huge n saturates at D.
        assert!((distinct_docs(1e9, 5.0, d) - d).abs() < 1e-6);
    }

    #[test]
    fn distinct_docs_degenerate() {
        assert_eq!(distinct_docs(10.0, 5.0, 0.0), 0.0);
        assert_eq!(distinct_docs(0.0, 5.0, 100.0), 0.0);
        // Fanout larger than D clamps.
        assert!((distinct_docs(1.0, 500.0, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_g() {
        // More independence (larger g) → smaller joint selectivity.
        let s = [0.2, 0.4, 0.9];
        let s1 = joint_selectivity(&s, 1);
        let s2 = joint_selectivity(&s, 2);
        let s3 = joint_selectivity(&s, 3);
        assert!(s1 >= s2 && s2 >= s3);
    }
}
