//! The cost model — paper, Section 4.
//!
//! [`params`] holds the Table 1 parameters; [`correlate`] implements the
//! g-correlated joint selectivity/fanout models; [`formulas`] gives the
//! closed-form cost of every join method, used by the optimizer to pick a
//! method and probe columns without touching the text system.

pub mod correlate;
pub mod formulas;
pub mod params;

pub use formulas::{CostBreakdown, MethodCost};
pub use params::{CostParams, JoinStatistics, PredStats};
