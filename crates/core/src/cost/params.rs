//! Cost-model parameters (paper, Table 1).
//!
//! | paper | here | meaning |
//! |-------|------|---------|
//! | `D`   | [`CostParams::d`] | total documents in the text database |
//! | `M`   | [`CostParams::m`] | max basic terms per text search |
//! | `c_i` | [`CostParams::constants.c_i`] | invocation cost |
//! | `c_p` | [`CostParams::constants.c_p`] | per-posting processing cost |
//! | `c_s` | [`CostParams::constants.c_s`] | short-form transmission cost |
//! | `c_l` | [`CostParams::constants.c_l`] | long-form transmission cost |
//! | `c_a` | [`CostParams::c_a`] | relational text-processing cost |
//! | `N`   | [`JoinStatistics::n`] | joining tuples |
//! | `k`   | `preds.len()` | join predicates |
//! | `N_i` | [`PredStats::distinct`] | distinct values in join column i |
//! | `s_i` | [`PredStats::selectivity`] | predicate selectivity |
//! | `f_i` | [`PredStats::fanout`] | predicate fanout |

use textjoin_obs::TraceCalibration;
use textjoin_text::server::{CostConstants, Usage};

use crate::retry::RetryPolicy;

/// Environment-level parameters: the text database size, the term cap, and
/// the cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// `D` — total number of documents in the text database.
    pub d: f64,
    /// `M` — maximum number of basic terms per search.
    pub m: usize,
    /// The per-operation constants (`c_i`, `c_p`, `c_s`, `c_l`).
    pub constants: CostConstants,
    /// `c_a` — relational text processing cost per document–tuple
    /// comparison.
    pub c_a: f64,
    /// `g` — the correlation parameter of the joint selectivity/fanout
    /// model (Section 4.2): 1 = fully correlated, k = fully independent.
    pub g: usize,
    /// Observed fraction of invocations that fault (0 on a healthy link).
    /// The formulas charge an expected-retry term `fault_rate ×
    /// mean_backoff` per invocation, so invocation-heavy methods (TS,
    /// P+TS) lose ground to SJ/RTP when the link is flaky.
    pub fault_rate: f64,
    /// Mean simulated backoff charged per retry (from the session's
    /// [`RetryPolicy`]).
    pub mean_backoff: f64,
    /// Per-query completion deadline in simulated seconds. `None` (the
    /// default) ranks plans by total charge exactly as before; `Some`
    /// switches the planner to the deadline-aware rank that rewards plans
    /// whose work parallelizes across shards (see [`rank`](Self::rank)).
    pub deadline: Option<f64>,
    /// Degree of transport parallelism the scheduler can exploit — the
    /// shard count for a sharded service, 1 otherwise. Only consulted
    /// when a deadline is set.
    pub parallelism: f64,
    /// Shards each logical search actually scatters to. 1 (the default)
    /// prices invocations exactly as the classic single-server model —
    /// under all-shards scatter every method's invoice scales by the same
    /// factor, so rankings are unchanged and the fold stays off. With
    /// stats-aware routing the executor prunes provably irrelevant shards,
    /// and the planner must price the *pruned* fan-out (set via
    /// [`with_scatter_fanout`](Self::with_scatter_fanout)) to stay in
    /// lockstep with what the scatter paths charge.
    pub scatter_fanout: f64,
}

impl CostParams {
    /// Parameters matching the calibrated OpenODB–Mercury system with the
    /// fully-correlated (g = 1) model the paper's experiments use, on a
    /// fault-free link.
    pub fn mercury(d: f64) -> Self {
        Self {
            d,
            m: 70,
            constants: CostConstants::mercury_calibrated(),
            c_a: 1e-5,
            g: 1,
            fault_rate: 0.0,
            mean_backoff: 0.0,
            deadline: None,
            parallelism: 1.0,
            scatter_fanout: 1.0,
        }
    }

    /// Same but with correlation parameter `g`.
    pub fn with_g(mut self, g: usize) -> Self {
        self.g = g.max(1);
        self
    }

    /// Sets the per-query completion deadline (simulated seconds).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the transport parallelism the rank may assume (clamped ≥ 1).
    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        self.parallelism = parallelism.max(1.0);
        self
    }

    /// Sets the per-search scatter fan-out the invocation terms are priced
    /// at (clamped ≥ 1). Only meaningful when the executor's stats-aware
    /// routing is on; the caller must pass the same pruned fan-out the
    /// scatter paths will use, or planner and executor fall out of sync.
    pub fn with_scatter_fanout(mut self, fanout: f64) -> Self {
        self.scatter_fanout = fanout.max(1.0);
        self
    }

    /// The planner's ranking view of a method cost decomposition. Without
    /// a deadline this is exactly the total charge — byte-identical plans
    /// to the pre-deadline planner. With a deadline it approximates the
    /// *makespan*: invocation rounds and relational text processing are
    /// inherently serial, while postings processing and transmission
    /// scatter across shards and divide by the parallelism — so plans
    /// whose heavy work parallelizes rank ahead even at equal total
    /// charge.
    pub fn rank(&self, invocation: f64, processing: f64, transmission: f64, rtp: f64) -> f64 {
        match self.deadline {
            None => invocation + processing + transmission + rtp,
            Some(_) => {
                invocation + rtp + (processing + transmission) / self.parallelism.max(1.0)
            }
        }
    }

    /// Folds the session's observed fault behavior into the model: the
    /// rate is `faults / invocations` from the ledger so far, the mean
    /// backoff comes from the retry schedule in force. A fault-free ledger
    /// (or an empty one) leaves the model untouched.
    pub fn with_fault_model(mut self, usage: &Usage, policy: &RetryPolicy) -> Self {
        self = self.with_fault_model_replicated(usage, policy, 1);
        self
    }

    /// Fault model for a service with `replicas` copies of every shard: a
    /// call only pays retry backoff when *all* replicas of a shard are down
    /// at once, so the post-failover effective rate is the observed
    /// per-server rate raised to the replica count (independent-failure
    /// model). `replicas = 1` is exactly [`with_fault_model`]
    /// (no failover: every fault is paid for).
    ///
    /// [`with_fault_model`]: Self::with_fault_model
    pub fn with_fault_model_replicated(
        mut self,
        usage: &Usage,
        policy: &RetryPolicy,
        replicas: usize,
    ) -> Self {
        let observed = if usage.invocations == 0 {
            0.0
        } else {
            usage.faults as f64 / usage.invocations as f64
        };
        self.fault_rate = observed.powi(replicas.max(1) as i32);
        self.mean_backoff = policy.mean_backoff();
        self
    }

    /// Effective invocation cost under the fault model and the scatter
    /// fan-out: `c_i` plus the expected retry backoff per invocation, paid
    /// once per shard the search actually scatters to.
    pub fn effective_c_i(&self) -> f64 {
        self.scatter_fanout * (self.constants.c_i + self.fault_rate * self.mean_backoff)
    }

    /// Adopts a trace-driven calibration: every constant the trace
    /// determines replaces its configured value, undetermined components
    /// keep the configured ones, and the analytic fault model (ledger
    /// rate × schedule mean) is replaced by the *observed* one — under
    /// the calibrated model `effective_c_i` charges exactly the backoff
    /// seconds per invocation the trace actually paid.
    ///
    /// This is the planner-facing half of the re-calibrator: feed the
    /// returned [`CalibratedParams::fitted`] to `plan_and_execute` (or
    /// any `PlannerInput`) exactly as a configured `CostParams`.
    pub fn with_calibration(self, cal: &TraceCalibration) -> CalibratedParams {
        let mut fitted = self;
        let mut per_component_drift = Vec::with_capacity(5);
        let mut adopt = |target: &mut f64, fit: &textjoin_obs::ComponentFit| {
            let configured = *target;
            if fit.determined {
                *target = fit.fitted;
            }
            let drift = if configured != 0.0 {
                (*target - configured) / configured
            } else {
                0.0
            };
            per_component_drift.push((fit.name, drift));
        };
        adopt(&mut fitted.constants.c_i, &cal.c_i);
        adopt(&mut fitted.constants.c_p, &cal.c_p);
        adopt(&mut fitted.constants.c_s, &cal.c_s);
        adopt(&mut fitted.constants.c_l, &cal.c_l);
        fitted.fault_rate = cal.observed_fault_rate();
        fitted.mean_backoff = cal.mean_backoff_per_fault();
        let configured_eff = self.effective_c_i();
        let eff_drift = if configured_eff != 0.0 {
            (fitted.effective_c_i() - configured_eff) / configured_eff
        } else {
            0.0
        };
        per_component_drift.push(("effective_c_i", eff_drift));
        CalibratedParams {
            fitted,
            residuals: cal.rms_residual(),
            per_component_drift,
        }
    }
}

/// A [`CostParams`] re-fit from a recorded trace, with the evidence a
/// caller needs to decide whether to trust it.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedParams {
    /// The parameters the planner should adopt: fitted constants where
    /// the trace determines them, configured values elsewhere, and the
    /// observed (not analytic) fault model.
    pub fitted: CostParams,
    /// Root-mean-square residual seconds of the linear fit — zero when
    /// the server prices work exactly as the model assumes.
    pub residuals: f64,
    /// `(component, relative drift)` for `c_i`, `c_p`, `c_s`, `c_l`, and
    /// `effective_c_i`: how far the adopted value moved from the
    /// configured one (`(fitted − configured) / configured`).
    pub per_component_drift: Vec<(&'static str, f64)>,
}

impl CalibratedParams {
    /// The adopted drift for one component, if it was fit.
    pub fn drift(&self, component: &str) -> Option<f64> {
        self.per_component_drift
            .iter()
            .find(|(name, _)| *name == component)
            .map(|&(_, d)| d)
    }
}

/// Per-predicate statistics (estimated by sampling, Section 4.2, or taken
/// from the Section 8 statistics export).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredStats {
    /// `s_i` — probability that a term drawn from join column i occurs in
    /// the joined field of some document.
    pub selectivity: f64,
    /// `f_i` — expected number of documents a term from column i matches
    /// (unconditional: zero-match terms count).
    pub fanout: f64,
    /// `N_i` — number of distinct values in join column i.
    pub distinct: f64,
    /// Average inverted-list length a term from column i causes the text
    /// system to process. With one-document postings and single-word terms
    /// this equals the fanout (the paper's simplification); phrases read
    /// one list per word, so it may exceed the fanout.
    pub list_len: f64,
}

impl PredStats {
    /// Convenience constructor using the paper's simplification
    /// `list_len = fanout`.
    pub fn simple(selectivity: f64, fanout: f64, distinct: f64) -> Self {
        Self {
            selectivity,
            fanout,
            distinct,
            list_len: fanout,
        }
    }
}

/// Statistics describing one foreign join, consumed by the formulas.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStatistics {
    /// `N` — tuples in the (locally filtered) joining relation.
    pub n: f64,
    /// Distinct tuples over *all* join columns — the searches the
    /// distinct-variant TS sends. The paper's `N_K`.
    pub n_k: f64,
    /// Per-predicate statistics, index-parallel to the join predicates.
    pub preds: Vec<PredStats>,
    /// Number of documents matching the constant text selections (their
    /// joint fanout); `D` when there are no selections.
    pub sel_fanout: f64,
    /// Sum of inverted-list lengths the selections add to each search.
    pub sel_postings: f64,
    /// Number of basic terms the selections add to each search.
    pub sel_terms: usize,
    /// Whether the query projects full documents (long-form retrieval).
    pub needs_long: bool,
    /// Whether every joined field is short-form (RTP-family methods can
    /// skip long retrieval when the projection allows).
    pub short_form_sufficient: bool,
}

impl JoinStatistics {
    /// `k` — the number of join predicates.
    pub fn k(&self) -> usize {
        self.preds.len()
    }

    /// The paper's `N_J` estimate for a predicate subset: `min(Π N_i, N)`
    /// — deliberately an over-estimate (Section 4.3).
    pub fn n_j(&self, subset: &[usize]) -> f64 {
        let prod: f64 = subset.iter().map(|&i| self.preds[i].distinct).product();
        prod.min(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mercury_defaults() {
        let p = CostParams::mercury(10_000.0);
        assert_eq!(p.m, 70);
        assert_eq!(p.g, 1);
        assert!((p.constants.c_i - 3.0).abs() < 1e-12);
        assert_eq!(CostParams::mercury(1.0).with_g(0).g, 1, "g clamped to ≥1");
    }

    #[test]
    fn replicated_fault_model_discounts_the_observed_rate() {
        let u = Usage {
            invocations: 10,
            faults: 5,
            ..Usage::default()
        };
        let policy = RetryPolicy::standard();
        let single = CostParams::mercury(100.0).with_fault_model(&u, &policy);
        assert!((single.fault_rate - 0.5).abs() < 1e-12);
        let repl = CostParams::mercury(100.0).with_fault_model_replicated(&u, &policy, 2);
        assert!((repl.fault_rate - 0.25).abs() < 1e-12, "rate^R for R=2");
        assert!(repl.effective_c_i() < single.effective_c_i());
        // R=1 replicated == the plain fault model.
        let r1 = CostParams::mercury(100.0).with_fault_model_replicated(&u, &policy, 1);
        assert_eq!(r1.fault_rate, single.fault_rate);
    }

    #[test]
    fn calibration_adoption_replaces_determined_components_only() {
        use textjoin_obs::{calibrate_trace, Charge, Event, EventKind};
        // A two-event trace generated with c_i = 6 (double the configured
        // 3.0) and c_p = 1e-5; no transmission work at all.
        let ev = |post: i64| Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::Call {
                op: "search",
                shard: None,
                terms: 1,
                err: None,
                charge: Charge {
                    invocations: 1,
                    postings: post,
                    time_invocation: 6.0,
                    time_processing: 1e-5 * post as f64,
                    ..Charge::default()
                },
            },
        };
        let cal = calibrate_trace(&[ev(100), ev(250)]);
        let configured = CostParams::mercury(10_000.0);
        let adopted = configured.with_calibration(&cal);
        assert!((adopted.fitted.constants.c_i - 6.0).abs() < 1e-12);
        assert!((adopted.fitted.constants.c_p - 1e-5).abs() < 1e-12);
        // Undetermined transmission constants keep their configured values.
        assert_eq!(adopted.fitted.constants.c_s, configured.constants.c_s);
        assert_eq!(adopted.fitted.constants.c_l, configured.constants.c_l);
        assert!((adopted.drift("c_i").unwrap() - 1.0).abs() < 1e-12, "+100%");
        assert!(adopted.drift("c_p").unwrap().abs() < 1e-12);
        assert_eq!(adopted.drift("c_s"), Some(0.0));
        assert!(adopted.residuals < 1e-9);
        // No faults observed: the adopted fault model is clean and the
        // effective c_i is exactly the fitted c_i.
        assert_eq!(adopted.fitted.fault_rate, 0.0);
        assert!((adopted.fitted.effective_c_i() - 6.0).abs() < 1e-12);
        assert!((adopted.drift("effective_c_i").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_refits_effective_c_i_from_observed_backoff() {
        use textjoin_obs::{calibrate_trace, Charge, Event, EventKind};
        let call = Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::Call {
                op: "search",
                shard: None,
                terms: 1,
                err: None,
                charge: Charge {
                    invocations: 1,
                    faults: 1,
                    time_invocation: 3.0,
                    ..Charge::default()
                },
            },
        };
        let backoff = Event {
            seq: 1,
            clock: 0.0,
            kind: EventKind::Backoff {
                shard: None,
                seconds: 0.75,
                charge: Charge {
                    retries: 1,
                    time_backoff: 0.75,
                    ..Charge::default()
                },
            },
        };
        let cal = calibrate_trace(&[call, backoff]);
        let adopted = CostParams::mercury(10_000.0).with_calibration(&cal);
        // rate × mean collapses to observed backoff per invocation.
        assert!(
            (adopted.fitted.effective_c_i() - (3.0 + 0.75)).abs() < 1e-12,
            "eff c_i = fitted c_i + observed backoff/invocation"
        );
    }

    #[test]
    fn n_j_overestimates_and_caps() {
        let stats = JoinStatistics {
            n: 100.0,
            n_k: 100.0,
            preds: vec![
                PredStats::simple(0.5, 2.0, 20.0),
                PredStats::simple(0.5, 2.0, 30.0),
            ],
            sel_fanout: 10.0,
            sel_postings: 10.0,
            sel_terms: 1,
            needs_long: true,
            short_form_sufficient: true,
        };
        assert_eq!(stats.n_j(&[0]), 20.0);
        assert_eq!(stats.n_j(&[0, 1]), 100.0, "600 capped at N");
        assert_eq!(stats.k(), 2);
    }
}
