//! Closed-form cost formulas for the join methods (paper, Section 4.3).
//!
//! The paper gives `C_TS` and `C_{P+TS}` explicitly and defers the others
//! to its technical-report companion [CDY]; the versions here complete the
//! family following the same derivation pattern. Conventions:
//!
//! * `n_K` — distinct tuples over all join columns (the searches the
//!   distinct-variant TS sends);
//! * `L_{n,J} = n × (Σ_{i∈J} list_i + sel_postings)` — postings processed;
//! * `V_{n,J} = n × F_J` — total documents across result sets;
//! * `U_{n,J} = D(1 − (1 − F_J/D)^n)` — distinct documents;
//! * `F_J` — joint fanout of the predicates in `J` *and* the constant
//!   selections (selections are independent of which tuple instantiated
//!   the search, so they scale the fanout by `sel_fanout / D`);
//! * `S_J` — joint selectivity of the predicates in `J` (the probability a
//!   probe on `J` succeeds; per the paper's simplification, selections are
//!   not folded into probe success).
//!
//! Every search result is transmitted short-form (`c_s`); long-form
//! retrieval (`c_l`) is added when the projection needs full documents, or
//! — for the RTP family — when some joined field is not in the short form.

use super::correlate::{distinct_docs, joint_fanout, joint_selectivity, total_docs};
use super::params::{CostParams, JoinStatistics};

/// A cost estimate split into the paper's components.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Invocation component (`c_i × searches`).
    pub invocation: f64,
    /// Text-system processing component (`c_p × postings`).
    pub processing: f64,
    /// Transmission component (`c_s`/`c_l` × documents).
    pub transmission: f64,
    /// Relational text-processing component (`c_a × comparisons`).
    pub rtp: f64,
    /// Estimated searches sent (for reporting).
    pub searches: f64,
}

impl CostBreakdown {
    /// Total estimated cost in simulated seconds.
    pub fn total(&self) -> f64 {
        self.invocation + self.processing + self.transmission + self.rtp
    }

    fn plus(self, other: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            invocation: self.invocation + other.invocation,
            processing: self.processing + other.processing,
            transmission: self.transmission + other.transmission,
            rtp: self.rtp + other.rtp,
            searches: self.searches + other.searches,
        }
    }
}

/// A labeled method cost, as produced by the estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCost {
    /// Method label (`"TS"`, `"P1+TS"`, …).
    pub label: String,
    /// Probe predicate indices, for the probing family.
    pub probe_cols: Vec<usize>,
    /// The estimate.
    pub cost: CostBreakdown,
}

/// Joint fanout of predicate subset `J` combined with the selections.
fn result_fanout(p: &CostParams, s: &JoinStatistics, subset: &[usize]) -> f64 {
    let fanouts: Vec<f64> = subset.iter().map(|&i| s.preds[i].fanout).collect();
    let f_join = joint_fanout(&fanouts, p.d, p.g);
    if s.sel_terms > 0 && p.d > 0.0 {
        // Selections are a constant extra conjunct: independent thinning.
        f_join * (s.sel_fanout / p.d)
    } else {
        f_join
    }
}

/// Postings processed by one search over subset `J`.
fn postings_per_search(s: &JoinStatistics, subset: &[usize]) -> f64 {
    subset.iter().map(|&i| s.preds[i].list_len).sum::<f64>() + s.sel_postings
}

/// Joint selectivity of predicate subset `J` (probe success probability).
fn probe_selectivity(p: &CostParams, s: &JoinStatistics, subset: &[usize]) -> f64 {
    let sels: Vec<f64> = subset.iter().map(|&i| s.preds[i].selectivity).collect();
    joint_selectivity(&sels, p.g)
}

/// The transmission cost of shipping `v` result documents: always short
/// form; long form too when the projection needs it.
fn xmit(p: &CostParams, s: &JoinStatistics, v: f64) -> f64 {
    let mut c = p.constants.c_s * v;
    if s.needs_long {
        c += p.constants.c_l * v;
    }
    c
}

/// A "tuple-substitution-shaped" phase: `n` searches over subset `J`, each
/// transmitting its full result set.
fn ts_phase(p: &CostParams, s: &JoinStatistics, n: f64, subset: &[usize]) -> CostBreakdown {
    let f = result_fanout(p, s, subset);
    let v = total_docs(n, f);
    CostBreakdown {
        invocation: p.effective_c_i() * n,
        processing: p.constants.c_p * n * postings_per_search(s, subset),
        transmission: xmit(p, s, v),
        rtp: 0.0,
        searches: n,
    }
}

/// `C_TS` — tuple substitution (distinct variant): one search per distinct
/// join-column tuple (paper: `C_TS = c_i N + c_p L_{N,K} + c_l V_{N,K}`,
/// with `N` replaced by `n_K` for the distinct variant).
pub fn cost_ts(p: &CostParams, s: &JoinStatistics) -> CostBreakdown {
    ts_phase(p, s, s.n_k, &all(s))
}

/// `C_TS` for the naive variant (one search per tuple) — ablation only.
pub fn cost_ts_naive(p: &CostParams, s: &JoinStatistics) -> CostBreakdown {
    ts_phase(p, s, s.n, &all(s))
}

/// The probe phase `C_P = c_i N_J + c_p L_{N_J,J} + c_s V_{N_J,J}`:
/// one probe per distinct `J`-key, short-form responses.
pub fn cost_probe_phase(p: &CostParams, s: &JoinStatistics, subset: &[usize]) -> CostBreakdown {
    let n_j = s.n_j(subset);
    let f = result_fanout(p, s, subset);
    CostBreakdown {
        invocation: p.effective_c_i() * n_j,
        processing: p.constants.c_p * n_j * postings_per_search(s, subset),
        transmission: p.constants.c_s * total_docs(n_j, f),
        rtp: 0.0,
        searches: n_j,
    }
}

/// `C_{P+TS} = C_P + c_i R + c_p L_{R,K} + c_l V_{R,K}` with
/// `R = n_K × S_J` — probing, then tuple substitution on the survivors.
///
/// The survivors' result volume uses the *conditional* fanout: probing does
/// not change which substituted queries match, so the documents transmitted
/// in phase 2 total `n_K × F` — the same as unprobed TS (this is the
/// Section 7.2 observation that "the number of long-form documents
/// transmitted is the same for both methods").
pub fn cost_p_ts(p: &CostParams, s: &JoinStatistics, subset: &[usize]) -> CostBreakdown {
    let probe = cost_probe_phase(p, s, subset);
    let k = all(s);
    let r = s.n_k * probe_selectivity(p, s, subset);
    let v = total_docs(s.n_k, result_fanout(p, s, &k));
    probe.plus(CostBreakdown {
        invocation: p.effective_c_i() * r,
        processing: p.constants.c_p * r * postings_per_search(s, &k),
        transmission: xmit(p, s, v),
        rtp: 0.0,
        searches: r,
    })
}

/// `C_RTP` — one search carrying the selections, result documents matched
/// relationally. `None` when there are no text selections (RTP
/// inapplicable, Section 3.2).
pub fn cost_rtp(p: &CostParams, s: &JoinStatistics) -> Option<CostBreakdown> {
    if s.sel_terms == 0 {
        return None;
    }
    let f_sel = s.sel_fanout;
    let need_long = s.needs_long || !s.short_form_sufficient;
    let mut transmission = p.constants.c_s * f_sel;
    if need_long {
        transmission += p.constants.c_l * f_sel;
    }
    Some(CostBreakdown {
        invocation: p.effective_c_i(),
        processing: p.constants.c_p * s.sel_postings,
        transmission,
        rtp: p.c_a * f_sel * s.n * s.k() as f64,
        searches: 1.0,
    })
}

/// `C_SJ` / `C_{SJ+RTP}` — OR-packed semi-join searches. `None` when a
/// single conjunct does not fit under the term cap. `rtp_completion` adds
/// the document-fetch + relational matching needed for non-docid
/// projections.
pub fn cost_sj(
    p: &CostParams,
    s: &JoinStatistics,
    rtp_completion: bool,
) -> Option<CostBreakdown> {
    let k = s.k().max(1);
    let per = (p.m.saturating_sub(s.sel_terms)) / k;
    if per == 0 {
        return None;
    }
    let n_searches = (s.n_k / per as f64).ceil().max(if s.n_k > 0.0 { 1.0 } else { 0.0 });
    let f_per_conjunct = result_fanout(p, s, &all(s));
    let u = distinct_docs(s.n_k, f_per_conjunct, p.d);
    let join_postings: f64 = all(s).iter().map(|&i| s.preds[i].list_len).sum();
    let mut c = CostBreakdown {
        invocation: p.effective_c_i() * n_searches,
        processing: p.constants.c_p * (s.n_k * join_postings + n_searches * s.sel_postings),
        transmission: p.constants.c_s * u,
        rtp: 0.0,
        searches: n_searches,
    };
    if rtp_completion {
        let need_long = s.needs_long || !s.short_form_sufficient;
        if need_long {
            c.transmission += p.constants.c_l * u;
        }
        c.rtp = p.c_a * u * s.n * k as f64;
    }
    Some(c)
}

/// `C_{P+RTP}` — probes on `J` (whose result sets are the candidate
/// documents), then relational matching against the surviving tuples
/// (Example 3.6).
pub fn cost_p_rtp(p: &CostParams, s: &JoinStatistics, subset: &[usize]) -> CostBreakdown {
    let mut c = cost_probe_phase(p, s, subset);
    let n_j = s.n_j(subset);
    let f_probe = result_fanout(p, s, subset);
    let u = distinct_docs(n_j, f_probe, p.d);
    let need_long = s.needs_long || !s.short_form_sufficient;
    if need_long {
        c.transmission += p.constants.c_l * u;
    }
    let surviving = s.n * probe_selectivity(p, s, subset);
    c.rtp = p.c_a * u * surviving * s.k() as f64;
    c
}

fn all(s: &JoinStatistics) -> Vec<usize> {
    (0..s.k()).collect()
}

/// Expected matching documents per fully-instantiated search (all join
/// predicates ∧ selections) — the per-tuple output fanout of the foreign
/// join, used by the multi-join planner for cardinality estimation.
pub fn expected_result_fanout(p: &CostParams, s: &JoinStatistics) -> f64 {
    result_fanout(p, s, &all(s))
}

/// Joint selectivity of a predicate subset — the probability a probe on it
/// succeeds. Re-exported for the multi-join planner's probe-node
/// cardinality estimates.
pub fn probe_success_probability(p: &CostParams, s: &JoinStatistics, subset: &[usize]) -> f64 {
    probe_selectivity(p, s, subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::params::PredStats;

    /// A Q3-like setup: two join predicates, a selective first column.
    fn stats() -> (CostParams, JoinStatistics) {
        let p = CostParams::mercury(10_000.0);
        let s = JoinStatistics {
            n: 100.0,
            n_k: 100.0,
            preds: vec![
                PredStats::simple(0.16, 2.0, 20.0), // project.name in title
                PredStats::simple(0.80, 5.0, 80.0), // member in author
            ],
            sel_fanout: 10_000.0,
            sel_postings: 0.0,
            sel_terms: 0,
            needs_long: true,
            short_form_sufficient: true,
        };
        (p, s)
    }

    #[test]
    fn ts_formula_components() {
        let (p, s) = stats();
        let c = cost_ts(&p, &s);
        assert!((c.invocation - 3.0 * 100.0).abs() < 1e-9);
        assert!((c.searches - 100.0).abs() < 1e-12);
        // g=1: joint fanout = min(2,5) = 2; V = 200 docs; long+short.
        let v = 200.0;
        assert!((c.transmission - (0.015 * v + 4.0 * v)).abs() < 1e-9);
    }

    #[test]
    fn p_ts_beats_ts_when_selective_probe() {
        let (p, s) = stats();
        let ts = cost_ts(&p, &s).total();
        let pts = cost_p_ts(&p, &s, &[0]).total();
        // s_1 = 0.16, N_1/N = 0.2: probing pays (0.16 < 1 - 0.2).
        assert!(
            pts < ts,
            "P+TS ({pts:.1}) should beat TS ({ts:.1}) at s1=0.16, N1/N=0.2"
        );
    }

    #[test]
    fn ts_beats_p_ts_when_probes_useless() {
        let (p, mut s) = stats();
        s.preds[0].selectivity = 1.0; // every probe succeeds
        s.preds[0].distinct = 100.0; // and every key is unique
        let ts = cost_ts(&p, &s).total();
        let pts = cost_p_ts(&p, &s, &[0]).total();
        assert!(pts > ts, "pure overhead: P+TS {pts:.1} vs TS {ts:.1}");
    }

    #[test]
    fn crossover_matches_invocation_analysis() {
        // Section 7.2: with invocation dominating, P+TS wins iff
        // N_1 + s_1·N < N  ⇔  s_1 < 1 − N_1/N.
        let (mut p, mut s) = stats();
        p.constants.c_p = 0.0;
        p.constants.c_s = 0.0;
        p.constants.c_l = 0.0;
        s.needs_long = false;
        for &(s1, n1_frac) in &[(0.3, 0.5), (0.6, 0.5), (0.1, 0.95), (0.9, 0.05)] {
            s.preds[0].selectivity = s1;
            s.preds[0].distinct = n1_frac * s.n;
            let ts = cost_ts(&p, &s).total();
            let pts = cost_p_ts(&p, &s, &[0]).total();
            let predicted_pts_wins = s1 < 1.0 - n1_frac;
            assert_eq!(
                pts < ts,
                predicted_pts_wins,
                "s1={s1}, N1/N={n1_frac}: pts={pts}, ts={ts}"
            );
        }
    }

    #[test]
    fn rtp_needs_selections() {
        let (p, s) = stats();
        assert!(cost_rtp(&p, &s).is_none());
        let mut s2 = s;
        s2.sel_terms = 1;
        s2.sel_fanout = 8.0;
        s2.sel_postings = 8.0;
        let c = cost_rtp(&p, &s2).unwrap();
        assert!((c.invocation - 3.0).abs() < 1e-12, "single invocation");
        assert!(c.total() < cost_ts(&p, &s2).total(), "selective RTP wins");
    }

    #[test]
    fn sj_packs_by_term_cap() {
        let (p, mut s) = stats();
        s.needs_long = false;
        // k=2, no selections: 35 conjuncts/search; 100 keys → 3 searches.
        let c = cost_sj(&p, &s, false).unwrap();
        assert!((c.searches - 3.0).abs() < 1e-12);
        // Tiny cap: inapplicable.
        let mut p2 = p;
        p2.m = 1;
        assert!(cost_sj(&p2, &s, false).is_none());
    }

    #[test]
    fn sj_transmission_uses_distinct_docs() {
        let (p, s) = stats();
        let c = cost_sj(&p, &s, false).unwrap();
        let v = 100.0 * result_fanout(&p, &s, &[0, 1]);
        // U < V strictly for overlapping result sets.
        assert!(c.transmission / p.constants.c_s < v);
    }

    #[test]
    fn sj_rtp_adds_completion() {
        let (p, s) = stats();
        let plain = cost_sj(&p, &s, false).unwrap();
        let with = cost_sj(&p, &s, true).unwrap();
        assert!(with.total() > plain.total());
        assert!(with.rtp > 0.0);
        assert!(with.transmission > plain.transmission, "long-form fetch added");
    }

    #[test]
    fn p_rtp_cheaper_with_fewer_docs() {
        let (p, mut s) = stats();
        s.needs_long = false;
        let a = cost_p_rtp(&p, &s, &[0]);
        let mut s2 = s.clone();
        s2.preds[0].fanout = 0.2; // far fewer candidate docs
        let b = cost_p_rtp(&p, &s2, &[0]);
        assert!(b.total() < a.total());
    }

    #[test]
    fn selections_thin_result_fanout() {
        let (p, mut s) = stats();
        let f_no_sel = result_fanout(&p, &s, &[0, 1]);
        s.sel_terms = 1;
        s.sel_fanout = 100.0; // selections match 1% of D
        let f_sel = result_fanout(&p, &s, &[0, 1]);
        assert!((f_sel - f_no_sel * 0.01).abs() < 1e-9);
    }

    #[test]
    fn naive_ts_never_cheaper() {
        let (p, mut s) = stats();
        s.n_k = 60.0; // duplicates exist
        assert!(cost_ts_naive(&p, &s).total() > cost_ts(&p, &s).total());
    }

    #[test]
    fn breakdown_total_sums() {
        let (p, s) = stats();
        let c = cost_p_ts(&p, &s, &[0, 1]);
        assert!(
            (c.total() - (c.invocation + c.processing + c.transmission + c.rtp)).abs() < 1e-9
        );
    }

    /// The fault model charges `rate × mean_backoff` per invocation, so a
    /// flaky link penalizes invocation-heavy methods proportionally to
    /// their search count — enough to flip a close TS-vs-SJ ordering.
    #[test]
    fn fault_model_flips_ordering_toward_invocation_light_methods() {
        let (mut p, mut s) = stats();
        s.needs_long = false;
        // Make TS and SJ nearly tied on a healthy link by discounting SJ's
        // transmission advantage: compare invocation-dominated costs only.
        p.constants.c_p = 0.0;
        p.constants.c_s = 0.0;
        p.constants.c_l = 0.0;
        let ts_clean = cost_ts(&p, &s).total();
        let sj_clean = cost_sj(&p, &s, false).unwrap().total();
        // 100 searches vs 3: SJ already wins, but note the *margin*.
        let margin_clean = ts_clean - sj_clean;
        // A 30% fault rate with the standard schedule (mean 7/3 s/retry).
        let flaky = p.with_fault_model(
            &textjoin_text::server::Usage {
                invocations: 10,
                faults: 3,
                ..Default::default()
            },
            &crate::retry::RetryPolicy::standard(),
        );
        assert!((flaky.fault_rate - 0.3).abs() < 1e-12);
        assert!((flaky.effective_c_i() - (3.0 + 0.3 * 7.0 / 3.0)).abs() < 1e-12);
        let ts_flaky = cost_ts(&flaky, &s).total();
        let sj_flaky = cost_sj(&flaky, &s, false).unwrap().total();
        let margin_flaky = ts_flaky - sj_flaky;
        assert!(
            margin_flaky > margin_clean,
            "flaky link widens the gap: {margin_flaky:.1} vs {margin_clean:.1}"
        );
        // The widening is exactly (searches_TS − searches_SJ) × rate × mean.
        let expected = (100.0 - 3.0) * 0.3 * (7.0 / 3.0);
        assert!(((margin_flaky - margin_clean) - expected).abs() < 1e-9);
        // A fault-free ledger leaves every estimate untouched.
        let clean = p.with_fault_model(&Default::default(), &crate::retry::RetryPolicy::standard());
        assert_eq!(cost_ts(&clean, &s).total(), ts_clean);
    }
}
