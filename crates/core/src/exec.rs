//! Plan execution.
//!
//! Two entry points:
//!
//! * [`execute_single`] — runs a [`MethodCandidate`] chosen by the
//!   single-join optimizer against a prepared query.
//! * [`MultiExecutor`] — interprets a multi-join [`PlanNode`] (PrL tree)
//!   against the relational catalog and the text server, evaluating probe
//!   nodes, relational joins (with foreign residuals), and the text join.
//!
//! All text costs are charged by the server; relational join work is
//! tallied as tuple-pair counts and charged with the planner's
//! [`RelCostModel`], so measured and estimated costs are directly
//! comparable.

use std::collections::HashMap;

use textjoin_rel::catalog::Catalog;
use textjoin_rel::expr::Pred;
use textjoin_rel::ops::{filter, group_by};
use textjoin_rel::schema::{ColId, RelSchema};
use textjoin_rel::table::Table;
use textjoin_rel::tuple::Tuple;
use textjoin_rel::value::{Value, ValueType};
use textjoin_text::doc::{DocId, TextSchema};
use textjoin_text::expr::SearchExpr;
use textjoin_obs::{CostVector, NodeActual, NodeEstimate, PlanQuality};
use textjoin_text::server::Usage;
use textjoin_text::service::TextService;

use crate::retry::{RetryBudget, RetryPolicy};
use crate::sched::{SchedConfig, Scheduler};

use crate::methods::CostCeiling;
use crate::methods::{
    probe::{probe_rtp, probe_tuple_substitution, ProbeSchedule},
    rtp::relational_text_processing,
    sj::semi_join,
    ts::tuple_substitution,
    ExecContext, ForeignJoin, MethodError, MethodOutcome, Projection, TextSelection,
};
use crate::optimizer::multi::PlannerInput;
use crate::optimizer::plan::{MultiJoinQuery, PlanNode};
use crate::optimizer::relcost::RelCostModel;
use crate::optimizer::single::{MethodCandidate, MethodKind};
use crate::query::PreparedQuery;

/// Runs the chosen single-join method.
pub fn execute_single(
    ctx: &ExecContext<'_>,
    prepared: &PreparedQuery,
    cand: &MethodCandidate,
    schedule: ProbeSchedule,
) -> Result<MethodOutcome, MethodError> {
    let fj = prepared.foreign_join();
    match cand.kind {
        MethodKind::Ts => tuple_substitution(ctx, &fj, true),
        MethodKind::Rtp => relational_text_processing(ctx, &fj),
        MethodKind::Sj => semi_join(ctx, &fj),
        MethodKind::PTs => probe_tuple_substitution(ctx, &fj, &cand.probe_cols, schedule),
        MethodKind::PRtp => probe_rtp(ctx, &fj, &cand.probe_cols),
    }
}

/// The result of executing a multi-join plan.
#[derive(Debug, Clone)]
pub struct MultiOutcome {
    /// The final rows.
    pub table: Table,
    /// Text-server usage charged to the plan.
    pub text: Usage,
    /// Relational tuple pairs compared across joins.
    pub rel_pairs: u64,
    /// Relational text-processing comparisons (residuals + RTP methods).
    pub rtp_comparisons: u64,
    /// Total simulated cost: text + `c_pair`·pairs + `c_a`·comparisons.
    pub total_cost: f64,
    /// Critical-path completion time of the transport under bounded
    /// concurrency. Without a scheduler the transport is modelled as
    /// serial: `makespan == serial_transport == text.total_cost()`.
    pub makespan: f64,
    /// What a fully serial transport would have taken (cancelled hedge
    /// legs included — their work was issued).
    pub serial_transport: f64,
    /// Hedge legs launched against a slow-but-alive primary replica.
    pub hedges: u64,
    /// Legs cancelled (one race loser per hedge, its charge rebated).
    pub cancels: u64,
    /// Queries whose critical path crossed the deadline (0 or 1).
    pub deadline_misses: u64,
    /// Method downgrades taken under deadline pressure instead of erroring.
    pub degradations: u64,
    /// Deterministic render of the concurrent timeline, when a scheduler
    /// was attached.
    pub timeline: Option<String>,
    /// Estimated-vs-actual reconciliation per plan node, when EXPLAIN
    /// ANALYZE attribution was enabled ([`MultiExecutor::set_analyze`]).
    /// Pure post-hoc arithmetic — never present unless asked for, and
    /// never perturbs a charge when it is.
    pub plan_quality: Option<PlanQuality>,
}

/// Executes multi-join PrL plans.
pub struct MultiExecutor<'a> {
    input: &'a PlannerInput,
    server: &'a dyn TextService,
    c_a: f64,
    retry: RetryPolicy,
    rel_model: RelCostModel,
    /// Optional adaptive per-shard retry budget (enables hedged reads).
    budget: Option<&'a RetryBudget>,
    /// Optional virtual-time transport scheduler (makespan + deadlines).
    sched: Option<&'a Scheduler>,
    /// Optional session-scoped probe cache (serving sessions).
    probe_cache: Option<&'a std::cell::RefCell<crate::methods::cache::ProbeCache>>,
    /// Optional per-query cost ceiling (serving sessions' budget guard).
    ceiling: Option<CostCeiling>,
    /// Locally filtered base tables with qualified column names
    /// (`relation.column`), built once.
    base_tables: Vec<Table>,
    /// Planner-side node estimates; `Some` switches on per-node actual
    /// attribution and the [`PlanQuality`] summary on the outcome.
    analyze: Option<Vec<NodeEstimate>>,
}

impl<'a> MultiExecutor<'a> {
    /// Prepares the executor: filters each base relation and qualifies its
    /// column names so intermediate schemas never clash.
    pub fn new(
        input: &'a PlannerInput,
        catalog: &Catalog,
        server: &'a dyn TextService,
    ) -> Result<Self, MethodError> {
        let mut base_tables = Vec::with_capacity(input.query.relations.len());
        for spec in &input.query.relations {
            let t = catalog.table(&spec.name).ok_or_else(|| {
                MethodError::NotApplicable(format!("unknown relation {:?}", spec.name))
            })?;
            let filtered = filter(t, &spec.local_pred);
            let mut schema = RelSchema::new();
            for (_, def) in filtered.schema().iter() {
                schema.add_column(format!("{}.{}", spec.name, def.name), def.ty);
            }
            let mut qt = Table::new(spec.name.clone(), schema);
            for row in filtered.iter() {
                qt.push(row.clone());
            }
            base_tables.push(qt);
        }
        Ok(Self {
            input,
            server,
            // The comparison constant the plan was priced with — planner
            // estimates and executor booking must share it.
            c_a: input.params.c_a,
            retry: RetryPolicy::standard(),
            rel_model: input.rel_model,
            budget: None,
            sched: None,
            probe_cache: None,
            ceiling: None,
            base_tables,
            analyze: None,
        })
    }

    /// Overrides the retry policy applied to every text-server operation.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Attaches an adaptive per-shard retry budget; with a scheduler also
    /// attached, slow primary legs are hedged against a replica.
    pub fn set_retry_budget(&mut self, budget: &'a RetryBudget) {
        self.budget = Some(budget);
    }

    /// Attaches a virtual-time transport scheduler: legs are timed, the
    /// makespan is reported, and deadline pressure triggers graceful
    /// method degradation instead of errors.
    pub fn set_scheduler(&mut self, sched: &'a Scheduler) {
        self.sched = Some(sched);
    }

    /// Attaches a session-scoped probe cache: probe outcomes proved by
    /// earlier executions prune this one (identical probes only — entries
    /// are namespaced by the full probe identity).
    pub fn set_probe_cache(
        &mut self,
        cache: &'a std::cell::RefCell<crate::methods::cache::ProbeCache>,
    ) {
        self.probe_cache = Some(cache);
    }

    /// Attaches a per-query cost ceiling — the serving session's
    /// mid-flight budget guard.
    pub fn set_ceiling(&mut self, ceiling: CostCeiling) {
        self.ceiling = Some(ceiling);
    }

    /// Switches on EXPLAIN ANALYZE attribution: `estimates` must be the
    /// planner's pre-order node estimates for the plan about to run
    /// (`optimizer::multi::estimate_nodes`). The executor walks the plan
    /// in the same pre-order and books each node's *exclusive* actuals —
    /// the `Usage` delta of its own work (children subtracted by
    /// construction: a node's own work runs strictly after its children),
    /// its output rows, and its local matching cost. Attribution only
    /// reads ledgers the server already booked; it never charges.
    pub fn set_analyze(&mut self, estimates: Vec<NodeEstimate>) {
        self.analyze = Some(estimates);
    }

    /// The method-level execution context this executor hands out.
    fn ctx(&self) -> ExecContext<'a> {
        ExecContext {
            server: self.server,
            c_a: self.c_a,
            retry: self.retry,
            budget: self.budget,
            sched: self.sched,
            probe_cache: self.probe_cache,
            ceiling: self.ceiling,
        }
    }

    fn query(&self) -> &MultiJoinQuery {
        &self.input.query
    }

    fn text_schema(&self) -> &TextSchema {
        self.server.schema()
    }

    /// Resolved text selections.
    fn selections(&self) -> Vec<TextSelection> {
        self.query()
            .selections
            .iter()
            .map(|(term, field)| TextSelection {
                term: term.clone(),
                field: self
                    .text_schema()
                    .resolve(field)
                    .expect("fields resolved at gather time"),
            })
            .collect()
    }

    /// Column id of `rel.col` in `schema`.
    fn resolve_col(&self, schema: &RelSchema, rel: usize, col: &str) -> Result<ColId, MethodError> {
        let name = format!("{}.{}", self.query().relations[rel].name, col);
        schema.column_by_name(&name).ok_or_else(|| {
            MethodError::NotApplicable(format!("column {name:?} not in intermediate schema"))
        })
    }

    /// The projection the text join must produce: full documents whenever
    /// later relational residuals will need the document fields (the same
    /// rule the planner uses).
    fn text_join_projection(&self, preds_here: usize) -> Projection {
        if preds_here < self.query().foreign.len() {
            Projection::Full
        } else {
            self.query().projection
        }
    }

    /// Executes `plan`, returning the rows and the cost accounting.
    pub fn execute(&self, plan: &PlanNode) -> Result<MultiOutcome, MethodError> {
        let before = self.server.usage();
        let mut rel_pairs = 0u64;
        let mut rtp_comparisons = 0u64;
        let mut attr = self.analyze.as_ref().map(|_| Vec::new());
        let table = self.eval(plan, &mut rel_pairs, &mut rtp_comparisons, &mut attr)?;
        let text = self.server.usage().since(&before);
        let total_cost = text.total_cost()
            + self.rel_model.c_pair * rel_pairs as f64
            + self.c_a * rtp_comparisons as f64;
        let (makespan, serial_transport, hedges, cancels, deadline_misses, degradations, timeline) =
            match self.sched {
                Some(s) => (
                    s.makespan(),
                    s.serial_total(),
                    s.hedges(),
                    s.cancels(),
                    s.deadline_misses(),
                    s.degradations(),
                    Some(s.timeline()),
                ),
                None => (text.total_cost(), text.total_cost(), 0, 0, 0, 0, None),
            };
        let plan_quality = self
            .analyze
            .as_ref()
            .map(|est| PlanQuality::new(est.clone(), attr.as_deref().unwrap_or(&[])));
        Ok(MultiOutcome {
            table,
            text,
            rel_pairs,
            rtp_comparisons,
            total_cost,
            makespan,
            serial_transport,
            hedges,
            cancels,
            deadline_misses,
            degradations,
            timeline,
            plan_quality,
        })
    }

    /// Snapshots the ledgers right before a node's own work begins (its
    /// children have already evaluated). Free: reads only.
    fn own_start(
        &self,
        attr: &Option<Vec<NodeActual>>,
        rel_pairs: u64,
        rtp_comparisons: u64,
    ) -> Option<(Usage, u64, u64)> {
        attr.as_ref()
            .map(|_| (self.server.usage(), rel_pairs, rtp_comparisons))
    }

    /// Books node `id`'s exclusive actuals: the `Usage` delta since its
    /// own work began (backoff seconds fold into the invocation component,
    /// mirroring the planner's `effective_c_i` fold) plus the local
    /// matching cost (`c_a`·comparisons + `c_pair`·pairs) in the rtp slot.
    fn book_node(
        &self,
        attr: &mut Option<Vec<NodeActual>>,
        id: usize,
        own: Option<(Usage, u64, u64)>,
        rows: usize,
        rel_pairs: u64,
        rtp_comparisons: u64,
    ) {
        if let (Some(v), Some((u0, pairs0, comps0))) = (attr, own) {
            let d = self.server.usage().since(&u0);
            v[id] = NodeActual {
                rows: rows as f64,
                postings: d.postings_processed as f64,
                cost: CostVector {
                    invocation: d.time_invocation + d.time_backoff,
                    processing: d.time_processing,
                    transmission: d.time_transmission,
                    rtp: self.c_a * (rtp_comparisons - comps0) as f64
                        + self.rel_model.c_pair * (rel_pairs - pairs0) as f64,
                },
            };
        }
    }

    fn eval(
        &self,
        plan: &PlanNode,
        rel_pairs: &mut u64,
        rtp_comparisons: &mut u64,
        attr: &mut Option<Vec<NodeActual>>,
    ) -> Result<Table, MethodError> {
        // Pre-order id assignment: the node books its slot before its
        // children claim theirs — the same walk `estimate_nodes` uses.
        let id = match attr {
            Some(v) => {
                v.push(NodeActual::default());
                v.len() - 1
            }
            None => 0,
        };
        match plan {
            PlanNode::Scan { rel } => {
                let own = self.own_start(attr, *rel_pairs, *rtp_comparisons);
                let t = self.base_tables[*rel].clone();
                self.book_node(attr, id, own, t.len(), *rel_pairs, *rtp_comparisons);
                Ok(t)
            }
            PlanNode::Probe { input, preds } => {
                let t = self.eval(input, rel_pairs, rtp_comparisons, attr)?;
                let own = self.own_start(attr, *rel_pairs, *rtp_comparisons);
                // Graceful degradation: probing only prunes, it never
                // decides membership, so under deadline pressure the
                // probe phase is skipped outright — the downstream text
                // join settles the same multiset.
                if let Some(s) = self.sched {
                    if s.under_pressure() {
                        s.note_degradation();
                        self.book_node(attr, id, own, t.len(), *rel_pairs, *rtp_comparisons);
                        return Ok(t);
                    }
                }
                let out = self.eval_probe(&t, preds)?;
                self.book_node(attr, id, own, out.len(), *rel_pairs, *rtp_comparisons);
                Ok(out)
            }
            PlanNode::RelJoin {
                left,
                right,
                preds,
                foreign_residuals,
            } => {
                let lt = self.eval(left, rel_pairs, rtp_comparisons, attr)?;
                let rt = self.eval(right, rel_pairs, rtp_comparisons, attr)?;
                let own = self.own_start(attr, *rel_pairs, *rtp_comparisons);
                let out = self.eval_rel_join(
                    &lt,
                    &rt,
                    preds,
                    foreign_residuals,
                    rel_pairs,
                    rtp_comparisons,
                )?;
                self.book_node(attr, id, own, out.len(), *rel_pairs, *rtp_comparisons);
                Ok(out)
            }
            PlanNode::TextJoin {
                input,
                preds,
                method,
                probe_cols,
            } => match input {
                Some(i) => {
                    let t = self.eval(i, rel_pairs, rtp_comparisons, attr)?;
                    let own = self.own_start(attr, *rel_pairs, *rtp_comparisons);
                    let out =
                        self.eval_text_join(&t, preds, *method, probe_cols, rtp_comparisons)?;
                    self.book_node(attr, id, own, out.len(), *rel_pairs, *rtp_comparisons);
                    Ok(out)
                }
                None => {
                    let own = self.own_start(attr, *rel_pairs, *rtp_comparisons);
                    let out = self.eval_text_scan()?;
                    self.book_node(attr, id, own, out.len(), *rel_pairs, *rtp_comparisons);
                    Ok(out)
                }
            },
        }
    }

    /// Probe node: keep tuples whose probe (selections ∧ instantiated
    /// probe predicates) matches something.
    fn eval_probe(&self, t: &Table, preds: &[usize]) -> Result<Table, MethodError> {
        let q = self.query();
        let cols: Vec<ColId> = preds
            .iter()
            .map(|&i| self.resolve_col(t.schema(), q.foreign[i].rel, &q.foreign[i].column))
            .collect::<Result<_, _>>()?;
        let fields: Vec<_> = preds.iter().map(|&i| self.input.foreign[i].field).collect();
        let selections = self.selections();

        let mut keep = vec![false; t.len()];
        for (key, rows) in group_by(t, &cols) {
            // NULL/empty keys can never match.
            let mut terms = Vec::with_capacity(key.len());
            let mut valid = true;
            for v in &key {
                match v.as_str() {
                    Some(s) if !s.trim().is_empty() => terms.push(s.to_owned()),
                    _ => {
                        valid = false;
                        break;
                    }
                }
            }
            if !valid {
                continue;
            }
            let mut conj: Vec<SearchExpr> = selections
                .iter()
                .map(|s| SearchExpr::term_in(&s.term, s.field))
                .collect();
            conj.extend(
                terms
                    .iter()
                    .zip(&fields)
                    .map(|(v, &f)| SearchExpr::term_in(v, f)),
            );
            let expr = SearchExpr::and(conj);
            // Probing prunes; it never decides membership. When the server
            // stays down past the retry budget the outcome is unknown, so
            // the group is kept and the downstream text join settles it.
            match self.ctx().try_probe(&expr) {
                Some(ids) if ids.is_empty() => {}
                _ => {
                    for r in rows {
                        keep[r] = true;
                    }
                }
            }
        }
        let rows: Vec<Tuple> = t
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, r)| r.clone())
            .collect();
        Ok(Table::new(format!("probe({})", t.name()), t.schema().clone()).with_rows(rows))
    }

    fn eval_rel_join(
        &self,
        lt: &Table,
        rt: &Table,
        preds: &[usize],
        residuals: &[usize],
        rel_pairs: &mut u64,
        rtp_comparisons: &mut u64,
    ) -> Result<Table, MethodError> {
        let q = self.query();
        let off = lt.schema().len();
        let joined_schema = lt.schema().concat(rt.schema(), rt.name());
        let mut conds = Vec::new();
        for &i in preds {
            let p = &q.rel_joins[i];
            // One side lives in the left schema, the other in the right.
            let (lcol, rcol) = if self
                .resolve_col(lt.schema(), p.left_rel, &p.left_col)
                .is_ok()
            {
                (
                    self.resolve_col(lt.schema(), p.left_rel, &p.left_col)?,
                    self.resolve_col(rt.schema(), p.right_rel, &p.right_col)?,
                )
            } else {
                (
                    self.resolve_col(lt.schema(), p.right_rel, &p.right_col)?,
                    self.resolve_col(rt.schema(), p.left_rel, &p.left_col)?,
                )
            };
            conds.push(Pred::CmpCols {
                left: lcol,
                op: p.op,
                right: ColId(rcol.0 + off),
            });
        }
        for &i in residuals {
            let fp = &q.foreign[i];
            // Document field column (unqualified name) is on the left side
            // (the text source was joined into the accumulated plan).
            let field_name = &self.text_schema().def(self.input.foreign[i].field).name;
            let hay = lt.schema().column_by_name(field_name).ok_or_else(|| {
                MethodError::NotApplicable(format!(
                    "document field column {field_name:?} missing for residual"
                ))
            })?;
            let needle = self.resolve_col(rt.schema(), fp.rel, &fp.column)?;
            conds.push(Pred::ContainsCol {
                hay_col: hay,
                needle_col: ColId(needle.0 + off),
            });
        }
        let pred = Pred::and(conds);
        *rel_pairs += (lt.len() * rt.len()) as u64;
        if !residuals.is_empty() {
            *rtp_comparisons += (lt.len() * rt.len() * residuals.len()) as u64;
        }
        let mut out = Table::new(format!("({} ⋈ {})", lt.name(), rt.name()), joined_schema);
        for a in lt.iter() {
            for b in rt.iter() {
                let row = a.concat(b);
                if pred.eval(&row) {
                    out.push(row);
                }
            }
        }
        Ok(out)
    }

    fn eval_text_join(
        &self,
        t: &Table,
        preds: &[usize],
        method: MethodKind,
        probe_cols: &[usize],
        rtp_comparisons: &mut u64,
    ) -> Result<Table, MethodError> {
        let q = self.query();
        let join_cols: Vec<ColId> = preds
            .iter()
            .map(|&i| self.resolve_col(t.schema(), q.foreign[i].rel, &q.foreign[i].column))
            .collect::<Result<_, _>>()?;
        let join_fields: Vec<_> = preds.iter().map(|&i| self.input.foreign[i].field).collect();
        let fj = ForeignJoin {
            rel: t,
            join_cols,
            join_fields,
            selections: self.selections(),
            projection: self.text_join_projection(preds.len()),
        };
        let ctx = self.ctx();
        // Graceful degradation: under deadline pressure the probing
        // methods drop their probe phase and fall back TS-style (the
        // universal method — same multiset, no extra text round-trips
        // spent on pruning that may no longer pay for itself).
        let method = match (method, self.sched) {
            (MethodKind::PTs | MethodKind::PRtp, Some(s)) if s.under_pressure() => {
                s.note_degradation();
                MethodKind::Ts
            }
            (m, _) => m,
        };
        let outcome = match method {
            MethodKind::Ts => tuple_substitution(&ctx, &fj, true)?,
            MethodKind::Rtp => relational_text_processing(&ctx, &fj)?,
            MethodKind::Sj => semi_join(&ctx, &fj)?,
            MethodKind::PTs => {
                probe_tuple_substitution(&ctx, &fj, probe_cols, ProbeSchedule::ProbeFirst)?
            }
            MethodKind::PRtp => probe_rtp(&ctx, &fj, probe_cols)?,
        };
        *rtp_comparisons += outcome.report.rtp_comparisons;
        Ok(outcome.table)
    }

    /// Text-first access: evaluate the selections, retrieve the matching
    /// documents, and materialize them as a relation
    /// `(docid, field_1, …, field_m)`.
    fn eval_text_scan(&self) -> Result<Table, MethodError> {
        let selections = self.selections();
        if selections.is_empty() {
            return Err(MethodError::NotApplicable(
                "text-first scan requires text selections".into(),
            ));
        }
        let expr = SearchExpr::and(
            selections
                .iter()
                .map(|s| SearchExpr::term_in(&s.term, s.field))
                .collect(),
        );
        let ctx = self.ctx();
        let result = ctx.search(&expr)?;
        doc_table(&ctx, &result.ids(), self.text_schema())
    }
}

/// Materializes documents as a relation `(docid, field…)`, retrieving the
/// long forms (charged, with the context's retry policy).
pub fn doc_table(
    ctx: &ExecContext<'_>,
    ids: &[DocId],
    text_schema: &TextSchema,
) -> Result<Table, MethodError> {
    let mut schema = RelSchema::new();
    schema.add_column("docid", ValueType::Str);
    for (_, def) in text_schema.iter() {
        schema.add_column(def.name.clone(), ValueType::Str);
    }
    let mut out = Table::new("mercury", schema);
    for &id in ids {
        let doc = ctx.retrieve(id)?;
        let mut vals = vec![Value::str(id.to_string())];
        for (fid, _) in text_schema.iter() {
            let vs = doc.values(fid);
            vals.push(if vs.is_empty() {
                Value::Null
            } else {
                Value::str(vs.join("; "))
            });
        }
        out.push(Tuple::new(vals));
    }
    Ok(out)
}

/// Convenience: plan and execute a multi-join query end to end.
pub fn plan_and_execute(
    query: &MultiJoinQuery,
    catalog: &Catalog,
    server: &dyn TextService,
    params: crate::cost::params::CostParams,
    space: crate::optimizer::multi::ExecutionSpace,
) -> Result<(crate::optimizer::multi::PlannedQuery, MultiOutcome), MethodError> {
    plan_and_execute_with(query, catalog, server, params, space, None)
}

/// [`plan_and_execute`] with an optional trace-driven calibration. With
/// `Some`, the planner adopts the calibration's fitted constants and
/// *observed* fault model (backoff seconds per invocation as the trace
/// actually paid them) instead of folding the analytic
/// `ledger rate × schedule mean` approximation; with `None` it behaves
/// exactly as before.
pub fn plan_and_execute_with(
    query: &MultiJoinQuery,
    catalog: &Catalog,
    server: &dyn TextService,
    params: crate::cost::params::CostParams,
    space: crate::optimizer::multi::ExecutionSpace,
    calibration: Option<&textjoin_obs::TraceCalibration>,
) -> Result<(crate::optimizer::multi::PlannedQuery, MultiOutcome), MethodError> {
    let (input, planned) = prepare_plan(query, catalog, server, params, space, calibration, None)?;
    let outcome = execute_prepared(&input, &planned, catalog, server, &ExecHooks::default())?;
    Ok((planned, outcome))
}

/// Execution knobs a serving session threads through one query. The
/// default (all `None`/`false`) reproduces [`plan_and_execute`] exactly.
#[derive(Default)]
pub struct ExecHooks<'a> {
    /// Per-tenant adaptive retry budget (breakers, hedge thresholds).
    pub retry_budget: Option<&'a RetryBudget>,
    /// Session-scoped probe cache shared across executions.
    pub probe_cache: Option<&'a std::cell::RefCell<crate::methods::cache::ProbeCache>>,
    /// Mid-flight budget guard: refuse charged operations past the limit.
    pub ceiling: Option<CostCeiling>,
    /// Assert overload pressure so the degradation lattice fires from the
    /// first plan node (cost-only downgrades, never rows).
    pub force_pressure: bool,
    /// EXPLAIN ANALYZE: attribute actual charges back to plan-node ids and
    /// attach a [`PlanQuality`] summary to the outcome (plus one free
    /// `EstimateSample` trace event when a recorder is attached). Pure
    /// observation — results and every `Usage` view are byte-identical
    /// with it on or off.
    pub analyze: bool,
}

/// The planning half of [`plan_and_execute_with`]: folds the observed
/// fault model (or adopts a trace calibration), prices the stats-routed
/// scatter fan-out, gathers statistics, and runs the optimizer. Entirely
/// charge-free — only the execution half touches the metered service.
/// `fold_usage` overrides the ledger the fault model is folded from
/// (serving sessions pass the tenant's own history so one tenant's faults
/// never re-price another tenant's plans); `None` reads the server's
/// aggregate ledger as before.
#[allow(clippy::too_many_arguments)]
pub fn prepare_plan(
    query: &MultiJoinQuery,
    catalog: &Catalog,
    server: &dyn TextService,
    params: crate::cost::params::CostParams,
    space: crate::optimizer::multi::ExecutionSpace,
    calibration: Option<&textjoin_obs::TraceCalibration>,
    fold_usage: Option<&Usage>,
) -> Result<(PlannerInput, crate::optimizer::multi::PlannedQuery), MethodError> {
    let input = prepare_input(query, catalog, server, params, calibration, fold_usage)?;
    let planned = plan_prepared(&input, server, space)?;
    Ok((input, planned))
}

/// The parameter-fold + statistics-gather prefix of [`prepare_plan`]:
/// everything up to (but not including) the optimizer enumeration. A
/// serving session's plan cache calls this on every request (gathering is
/// free and must track the live stats epoch) and skips [`plan_prepared`]
/// on a cache hit.
pub fn prepare_input(
    query: &MultiJoinQuery,
    catalog: &Catalog,
    server: &dyn TextService,
    params: crate::cost::params::CostParams,
    calibration: Option<&textjoin_obs::TraceCalibration>,
    fold_usage: Option<&Usage>,
) -> Result<PlannerInput, MethodError> {
    let export = server.export_stats();
    let params = match calibration {
        // A calibration carries its own observed fault model; adopting it
        // replaces the analytic fold below wholesale.
        Some(cal) => params.with_calibration(cal).fitted,
        None => {
            // Fold the session's observed fault rate into the planner's
            // cost model (expected-retry charge per invocation);
            // fault-free sessions fold a rate of zero and plan exactly as
            // before. Replicated services fail over before they retry, so
            // their effective rate is the observed per-server rate to the
            // power of the replica count.
            let replicas = server
                .as_sharded()
                .map(|s| s.replication_factor())
                .unwrap_or(1);
            let observed = fold_usage.copied().unwrap_or_else(|| server.usage());
            params.with_fault_model_replicated(&observed, &RetryPolicy::standard(), replicas)
        }
    };
    // The deadline-aware rank divides parallelizable work by the transport
    // parallelism — the shard count when the service scatters. With
    // stats-aware routing on, the executor's scatter paths skip shards the
    // per-shard vocabularies prove irrelevant to the query's text
    // selections, so the planner prices the *pruned* fan-out instead
    // (parallelism and the effective_c_i fold alike) — the same
    // planner/executor lockstep rule as the Full-if-residuals projection.
    // The selection-only mask is a superset of any instantiated search's
    // relevance (instantiation only ANDs more terms), so the priced
    // fan-out never undercounts a scatter the executor will perform.
    let params = match server.as_sharded() {
        Some(sh) if sh.stats_routing_enabled() => {
            let schema = server.schema();
            let sel_exprs: Vec<textjoin_text::expr::SearchExpr> = query
                .selections
                .iter()
                .filter_map(|(term, field)| {
                    schema
                        .resolve(field)
                        .map(|f| textjoin_text::expr::SearchExpr::term_in(term, f))
                })
                .collect();
            let fanout = if sel_exprs.is_empty() {
                sh.shard_count()
            } else {
                let masks: Vec<Vec<bool>> =
                    sel_exprs.iter().map(|e| sh.relevant_shards(e)).collect();
                (0..sh.shard_count())
                    .filter(|&i| masks.iter().any(|m| m[i]))
                    .count()
                    .max(1)
            };
            params
                .with_parallelism(fanout as f64)
                .with_scatter_fanout(fanout as f64)
        }
        Some(sh) => params.with_parallelism(sh.shard_count() as f64),
        None => params,
    };
    let mut input = PlannerInput::gather(query, catalog, &export, server.schema(), params)
        .map_err(|e| MethodError::NotApplicable(e.to_string()))?;
    input.obs = server.recorder();
    Ok(input)
}

/// The optimizer-enumeration suffix of [`prepare_plan`], spanned in the
/// trace as `plan`.
pub fn plan_prepared(
    input: &PlannerInput,
    server: &dyn TextService,
    space: crate::optimizer::multi::ExecutionSpace,
) -> Result<crate::optimizer::multi::PlannedQuery, MethodError> {
    let plan_span = server.recorder().map(|r| r.span("plan"));
    let planned = crate::optimizer::multi::plan_query(input, space)
        .ok_or_else(|| MethodError::NotApplicable("no plan found".into()))?;
    drop(plan_span);
    Ok(planned)
}

/// The execution half of [`plan_and_execute_with`]: builds the seeded
/// virtual-time scheduler from the folded params' deadline, applies any
/// session hooks, and runs the plan. With default hooks this is
/// byte-identical to the tail of the original fused pipeline.
pub fn execute_prepared(
    input: &PlannerInput,
    planned: &crate::optimizer::multi::PlannedQuery,
    catalog: &Catalog,
    server: &dyn TextService,
    hooks: &ExecHooks<'_>,
) -> Result<MultiOutcome, MethodError> {
    // Every execution gets a virtual-time schedule (seeded; deadline from
    // the cost params) so the outcome reports a real makespan next to the
    // total charge. Without a budget no hedging can fire, and without a
    // deadline no degradation can trigger, so charges are exactly as
    // before — the scheduler is then purely observational.
    let sched = Scheduler::new(match input.params.deadline {
        Some(d) => SchedConfig::new(0x7e97).with_deadline(d),
        None => SchedConfig::new(0x7e97),
    });
    if hooks.force_pressure {
        sched.force_pressure();
    }
    let mut exec = MultiExecutor::new(input, catalog, server)?;
    exec.set_scheduler(&sched);
    if let Some(rb) = hooks.retry_budget {
        exec.set_retry_budget(rb);
    }
    if let Some(pc) = hooks.probe_cache {
        exec.set_probe_cache(pc);
    }
    if let Some(c) = hooks.ceiling {
        exec.set_ceiling(c);
    }
    if hooks.analyze {
        exec.set_analyze(crate::optimizer::multi::estimate_nodes(
            input,
            &planned.plan,
        ));
    }
    let outcome = exec.execute(&planned.plan)?;
    if let (Some(pq), Some(rec)) = (&outcome.plan_quality, server.recorder()) {
        // One free sample per analyzed query: the plan-level Q-errors the
        // misestimation detector windows over. `regret_share` is filled by
        // the replay harness (the executor cannot know the counterfactuals).
        rec.emit(textjoin_obs::EventKind::EstimateSample {
            cost_q: pq.cost_q,
            selectivity_q: pq.rows_q,
            constants_q: constants_q(&input.params, &outcome.text),
            regret_share: 0.0,
        });
    }
    Ok(outcome)
}

/// Q-error between what the run actually paid the text system and what
/// its booked *counts* should have cost at the planner's configured
/// constants. Selectivity misestimates cancel out (counts are actuals on
/// both sides), so a drift here isolates the constants: backoff seconds
/// from an unmodelled fault rate, or a server whose real per-unit prices
/// moved away from the configured `CostConstants`.
pub fn constants_q(params: &crate::cost::params::CostParams, text: &Usage) -> f64 {
    let c = &params.constants;
    let repriced = c.c_i * text.invocations as f64
        + c.c_p * text.postings_processed as f64
        + c.c_s * text.docs_short as f64
        + c.c_l * text.docs_long as f64;
    textjoin_obs::q_error(repriced, text.total_cost())
}

/// Comparison helper for result equivalence in tests and benches: rows
/// rendered to strings, sorted.
pub fn row_strings(t: &Table) -> Vec<String> {
    let mut v: Vec<String> = t.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

/// Order-insensitive comparison helper: each row rendered as sorted
/// `column=value` pairs, then the rows sorted. Two plans with different
/// join orders produce permuted column layouts; this normalizes them.
pub fn canonical_rows(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = t
        .iter()
        .map(|r| {
            let mut cols: Vec<String> = t
                .schema()
                .iter()
                .map(|(c, def)| format!("{}={}", def.name, r.get(c)))
                .collect();
            cols.sort();
            cols.join(", ")
        })
        .collect();
    rows.sort();
    rows
}

// HashMap is used for long-document caches in the method implementations.
#[allow(unused)]
type _Unused = HashMap<(), ()>;

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_text::server::TextServer;
    use crate::cost::params::CostParams;
    use crate::methods::Projection;
    use crate::optimizer::multi::ExecutionSpace;
    use crate::optimizer::plan::{ForeignSpec, RelJoinPred, RelSpec};
    use crate::optimizer::single::choose_method;
    use crate::query::{prepare, SingleJoinQuery};
    use textjoin_rel::expr::CmpOp;
    use textjoin_rel::tuple;
    use textjoin_text::doc::Document;
    use textjoin_text::index::Collection;

    fn fixture() -> (Catalog, TextServer) {
        let mut catalog = Catalog::new();
        let sschema = RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]);
        let mut student = Table::new("student", sschema.clone());
        student.push(tuple!["Gravano", "CS"]);
        student.push(tuple!["Kao", "EE"]);
        student.push(tuple!["Pham", "CS"]);
        catalog.register(student);
        let mut faculty = Table::new("faculty", sschema);
        faculty.push(tuple!["Garcia", "EE"]);
        faculty.push(tuple!["Dayal", "CS"]);
        catalog.register(faculty);

        let schema = textjoin_text::doc::TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let yr = schema.field_by_name("year").unwrap();
        let mut coll = Collection::new(schema);
        coll.add_document(
            Document::new()
                .with(ti, "joint work")
                .with(au, "Gravano")
                .with(au, "Garcia")
                .with(yr, "May 1993"),
        );
        coll.add_document(
            Document::new()
                .with(ti, "kao solo")
                .with(au, "Kao")
                .with(yr, "May 1993"),
        );
        coll.add_document(
            Document::new()
                .with(ti, "dayal pham")
                .with(au, "Dayal")
                .with(au, "Pham")
                .with(yr, "May 1990"),
        );
        (catalog, TextServer::new(coll))
    }

    fn q5() -> MultiJoinQuery {
        MultiJoinQuery {
            relations: vec![
                RelSpec {
                    name: "student".into(),
                    local_pred: Pred::True,
                },
                RelSpec {
                    name: "faculty".into(),
                    local_pred: Pred::True,
                },
            ],
            rel_joins: vec![RelJoinPred {
                left_rel: 0,
                left_col: "dept".into(),
                op: CmpOp::Ne,
                right_rel: 1,
                right_col: "dept".into(),
            }],
            selections: vec![("1993".into(), "year".into())],
            foreign: vec![
                ForeignSpec {
                    rel: 0,
                    column: "name".into(),
                    field: "author".into(),
                },
                ForeignSpec {
                    rel: 1,
                    column: "name".into(),
                    field: "author".into(),
                },
            ],
            projection: Projection::Full,
        }
    }

    #[test]
    fn single_join_dispatch_all_methods() {
        let (catalog, server) = fixture();
        let q = SingleJoinQuery {
            relation: "student".into(),
            local_pred: Pred::True,
            selections: vec![("1993".into(), "year".into())],
            join: vec![("name".into(), "author".into())],
            projection: Projection::Full,
        };
        let prepared = prepare(&q, &catalog, server.collection().schema()).unwrap();
        let export = server.export_stats();
        let stats = prepared.statistics_from_export(&export, server.collection().schema());
        let params = CostParams::mercury(server.doc_count() as f64);
        let cands =
            crate::optimizer::single::enumerate_methods(&params, &stats, Projection::Full, false);
        assert!(cands.len() >= 3);
        let mut results = Vec::new();
        for cand in &cands {
            let ctx = ExecContext::new(&server);
            let out = execute_single(&ctx, &prepared, cand, ProbeSchedule::ProbeFirst).unwrap();
            results.push((cand.label.clone(), row_strings(&out.table)));
        }
        // Every method computes the same join.
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
        // Expected: Gravano ⋈ doc0 and Kao ⋈ doc1 (1993 docs only).
        assert_eq!(results[0].1.len(), 2);
    }

    #[test]
    fn choose_and_execute() {
        let (catalog, server) = fixture();
        let q = SingleJoinQuery {
            relation: "student".into(),
            local_pred: Pred::True,
            selections: vec![],
            join: vec![("name".into(), "author".into())],
            projection: Projection::RelOnly,
        };
        let prepared = prepare(&q, &catalog, server.collection().schema()).unwrap();
        let export = server.export_stats();
        let stats = prepared.statistics_from_export(&export, server.collection().schema());
        let params = CostParams::mercury(server.doc_count() as f64);
        let best = choose_method(&params, &stats, Projection::RelOnly).unwrap();
        let ctx = ExecContext::new(&server);
        let out = execute_single(&ctx, &prepared, &best, ProbeSchedule::ProbeFirst).unwrap();
        assert_eq!(out.table.len(), 3, "all three students authored something");
    }

    #[test]
    fn multi_plan_executes_q5() {
        let (catalog, server) = fixture();
        let params = CostParams::mercury(server.doc_count() as f64);
        let (planned, outcome) =
            plan_and_execute(&q5(), &catalog, &server, params, ExecutionSpace::PrlResiduals).unwrap();
        assert!(planned.plan.is_valid_prl());
        // Expected matches in 1993 docs, cross-department co-authorships:
        // doc0: Gravano(CS) × Garcia(EE) qualifies.
        // doc1: Kao has no co-author → no faculty pairing... except the
        // join predicate only requires *some* faculty from another dept
        // with name in authors: doc1 has no faculty author → drops.
        assert_eq!(outcome.table.len(), 1, "{}", outcome.table);
        let row = &outcome.table.rows()[0];
        let name_col = outcome.table.schema().column_by_name("student.name").unwrap();
        assert_eq!(row.get(name_col).as_str(), Some("Gravano"));
        assert!(outcome.total_cost > 0.0);
    }

    #[test]
    fn multi_prl_and_left_deep_agree_on_rows() {
        let (catalog, server) = fixture();
        let params = CostParams::mercury(server.doc_count() as f64);
        let (_, with_probes) = plan_and_execute(&q5(), &catalog, &server, params, ExecutionSpace::PrlResiduals).unwrap();
        let server2 = {
            let (_, s) = fixture();
            s
        };
        let (_, without) = plan_and_execute(&q5(), &catalog, &server2, params, ExecutionSpace::LeftDeep).unwrap();
        assert_eq!(
            canonical_rows(&with_probes.table),
            canonical_rows(&without.table),
            "probes must not change the answer"
        );
    }

    #[test]
    fn doc_table_materializes_fields() {
        let (_, server) = fixture();
        let ctx = ExecContext::new(&server);
        let t = doc_table(&ctx, &[DocId(0), DocId(2)], server.collection().schema()).unwrap();
        assert_eq!(t.len(), 2);
        let au = t.schema().column_by_name("author").unwrap();
        assert_eq!(t.rows()[0].get(au).as_str(), Some("Gravano; Garcia"));
        assert_eq!(server.usage().docs_long, 2, "long retrieval charged");
    }

    #[test]
    fn text_scan_plan_executes() {
        // A hand-built PrL+residuals plan that accesses the text source
        // first, then joins student relationally via a containment
        // residual — exercising eval_text_scan and residual evaluation.
        let (catalog, server) = fixture();
        let q = q5();
        let export = server.export_stats();
        let params = CostParams::mercury(server.doc_count() as f64);
        let input =
            PlannerInput::gather(&q, &catalog, &export, server.collection().schema(), params)
                .unwrap();
        let exec = MultiExecutor::new(&input, &catalog, &server).unwrap();
        let plan = PlanNode::RelJoin {
            left: Box::new(PlanNode::RelJoin {
                left: Box::new(PlanNode::TextJoin {
                    input: None,
                    preds: vec![],
                    method: MethodKind::Rtp,
                    probe_cols: vec![],
                }),
                right: Box::new(PlanNode::Scan { rel: 0 }),
                preds: vec![],
                foreign_residuals: vec![0], // student.name in author
            }),
            right: Box::new(PlanNode::Scan { rel: 1 }),
            preds: vec![0], // dept !=
            foreign_residuals: vec![1], // faculty.name in author
        };
        let out = exec.execute(&plan).unwrap();
        // Same answer as the planner-chosen plans: Gravano × Garcia, doc0.
        assert_eq!(out.table.len(), 1);
        assert!(out.text.invocations >= 1, "text scan invoked the server");
        assert!(out.rtp_comparisons > 0, "residuals counted");
    }

    #[test]
    fn text_scan_requires_selections() {
        let (catalog, server) = fixture();
        let mut q = q5();
        q.selections.clear();
        let export = server.export_stats();
        let params = CostParams::mercury(server.doc_count() as f64);
        let input =
            PlannerInput::gather(&q, &catalog, &export, server.collection().schema(), params)
                .unwrap();
        let exec = MultiExecutor::new(&input, &catalog, &server).unwrap();
        let plan = PlanNode::TextJoin {
            input: None,
            preds: vec![],
            method: MethodKind::Rtp,
            probe_cols: vec![],
        };
        assert!(matches!(
            exec.execute(&plan),
            Err(MethodError::NotApplicable(_))
        ));
    }

    #[test]
    fn probe_node_execution_filters() {
        let (catalog, server) = fixture();
        let q = q5();
        let export = server.export_stats();
        let params = CostParams::mercury(server.doc_count() as f64);
        let input =
            PlannerInput::gather(&q, &catalog, &export, server.collection().schema(), params)
                .unwrap();
        let exec = MultiExecutor::new(&input, &catalog, &server).unwrap();
        // Probe students on pred 0 with the 1993 selection: Gravano and Kao
        // have 1993 docs; Pham's only doc is 1990.
        let plan = PlanNode::Probe {
            input: Box::new(PlanNode::Scan { rel: 0 }),
            preds: vec![0],
        };
        let out = exec.execute(&plan).unwrap();
        assert_eq!(out.table.len(), 2);
        let names: Vec<_> = out
            .table
            .iter()
            .map(|r| r.get(ColId(0)).as_str().unwrap().to_owned())
            .collect();
        assert!(names.contains(&"Gravano".to_owned()));
        assert!(names.contains(&"Kao".to_owned()));
    }
}
