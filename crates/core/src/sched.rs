//! Deterministic virtual-time transport scheduler.
//!
//! Execution in this repo is synchronous and single-threaded — that is what
//! keeps every experiment byte-reproducible. But the *modelled* transport is
//! not serial: a scatter/gather sends its shard legs concurrently, a hedged
//! read races two replicas, and a deadline bounds the whole query. This
//! module is the discrete-event model of that concurrency: a simulated
//! clock (no wall time, no threads, no external dependencies — std only)
//! over which the executor replays each leg's *charged* cost as a timed
//! interval on a bounded number of per-shard lanes.
//!
//! The separation of concerns is deliberate:
//!
//! * the **ledger** ([`Usage`](../../textjoin_text/server/struct.Usage.html))
//!   keeps recording what work was charged — the scheduler never books or
//!   rebates a charge;
//! * the **scheduler** decides *when* that work would have happened under
//!   bounded concurrency, yielding the **makespan** (critical-path time),
//!   which becomes a first-class cost next to the total charge;
//! * results are computed exactly as before — the scheduler cannot change a
//!   method's output multiset, so oracle equivalence is structural.
//!
//! Within a [`begin_phase`](Scheduler::begin_phase) /
//! [`end_phase`](Scheduler::end_phase) pair, legs on *different* shards
//! overlap freely and legs on the *same* shard queue on
//! [`SchedConfig::lanes_per_shard`] lanes. Outside a phase, legs are serial
//! (the clock advances by the full cost). Hedged legs occupy their shard
//! lane only until the winner finishes; the loser's charge is rebated by
//! the transport layer, not here.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;

/// Configuration for one query's transport schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Seed stamped into the timeline header; reserved for future
    /// tie-breaking so two configs with different seeds never compare
    /// equal by accident.
    pub seed: u64,
    /// In-flight calls allowed per shard within a scatter phase.
    pub lanes_per_shard: usize,
    /// Per-query deadline in simulated seconds; `None` = unbounded.
    pub deadline: Option<f64>,
}

impl SchedConfig {
    /// Unbounded single-lane config.
    pub fn new(seed: u64) -> Self {
        SchedConfig {
            seed,
            lanes_per_shard: 1,
            deadline: None,
        }
    }

    /// Sets the per-query deadline (simulated seconds).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-shard in-flight limit (≥ 1).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes_per_shard = lanes.max(1);
        self
    }
}

/// When one leg ran on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegTiming {
    /// Virtual start time.
    pub start: f64,
    /// Virtual completion time.
    pub finish: f64,
    /// True exactly when this leg is the first to finish past the
    /// deadline — the caller emits one `DeadlineMiss` event per query.
    pub crossed_deadline: bool,
}

/// Outcome of a hedged (raced) leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgedTiming {
    /// Virtual start of the primary attempt.
    pub start: f64,
    /// Virtual completion of the *winner*.
    pub finish: f64,
    /// True when the hedge (secondary) attempt won the race.
    pub hedge_won: bool,
    /// See [`LegTiming::crossed_deadline`].
    pub crossed_deadline: bool,
}

#[derive(Debug, Clone)]
struct LegRecord {
    label: String,
    shard: Option<usize>,
    start: f64,
    finish: f64,
    hedged: bool,
}

/// The per-query virtual-time scheduler. Interior mutability keeps the API
/// `&self` so the executor, the methods, and the transport wrappers can
/// share one schedule within a query, like they share one server.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedConfig,
    /// The serial frontier: where the clock stands between phases.
    now: Cell<f64>,
    /// Σ of every leg cost issued — what a fully serial transport would
    /// have taken (cancelled hedge legs included: their work was issued).
    serial: Cell<f64>,
    /// Latest completion seen anywhere (the makespan candidate).
    horizon: Cell<f64>,
    in_phase: Cell<bool>,
    /// Phase entry gate: no leg of the current phase starts earlier.
    gate: Cell<f64>,
    /// Latest completion within the current phase (the barrier target).
    phase_max: Cell<f64>,
    /// `lanes[shard]` = free-times of that shard's lanes; grown on demand.
    lanes: RefCell<Vec<Vec<f64>>>,
    hedges: Cell<u64>,
    cancels: Cell<u64>,
    deadline_misses: Cell<u64>,
    degraded: Cell<u64>,
    missed: Cell<bool>,
    /// Externally asserted pressure (a serving session under overload):
    /// `under_pressure` reports true regardless of the deadline state.
    forced_pressure: Cell<bool>,
    legs: RefCell<Vec<LegRecord>>,
}

impl Scheduler {
    /// A fresh schedule at virtual time zero.
    pub fn new(cfg: SchedConfig) -> Self {
        Scheduler {
            cfg,
            now: Cell::new(0.0),
            serial: Cell::new(0.0),
            horizon: Cell::new(0.0),
            in_phase: Cell::new(false),
            gate: Cell::new(0.0),
            phase_max: Cell::new(0.0),
            lanes: RefCell::new(Vec::new()),
            hedges: Cell::new(0),
            cancels: Cell::new(0),
            deadline_misses: Cell::new(0),
            degraded: Cell::new(0),
            missed: Cell::new(false),
            forced_pressure: Cell::new(false),
            legs: RefCell::new(Vec::new()),
        }
    }

    /// The config in force.
    pub fn config(&self) -> SchedConfig {
        self.cfg
    }

    /// The per-query deadline, if any.
    pub fn deadline(&self) -> Option<f64> {
        self.cfg.deadline
    }

    /// Critical-path completion time under the concurrency limit: the
    /// latest virtual completion seen so far.
    pub fn makespan(&self) -> f64 {
        self.horizon.get().max(self.now.get())
    }

    /// What a fully serial transport would have taken: the sum of every
    /// issued leg's cost, cancelled legs included.
    pub fn serial_total(&self) -> f64 {
        self.serial.get()
    }

    /// Hedge legs launched.
    pub fn hedges(&self) -> u64 {
        self.hedges.get()
    }

    /// Legs cancelled (each hedge race cancels exactly one loser; a failed
    /// hedge attempt is also cancelled).
    pub fn cancels(&self) -> u64 {
        self.cancels.get()
    }

    /// Queries (0 or 1 per scheduler) whose makespan crossed the deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses.get()
    }

    /// Method downgrades taken under deadline pressure.
    pub fn degradations(&self) -> u64 {
        self.degraded.get()
    }

    /// Records that the executor downgraded a method under deadline
    /// pressure instead of erroring.
    pub fn note_degradation(&self) {
        self.degraded.set(self.degraded.get() + 1);
    }

    /// True once the clock has consumed at least half the deadline — the
    /// executor's trigger for graceful degradation (skip probe phases,
    /// fall back TS-style) rather than erroring at the wire.
    pub fn under_pressure(&self) -> bool {
        if self.forced_pressure.get() {
            return true;
        }
        match self.cfg.deadline {
            Some(d) => self.makespan() >= 0.5 * d,
            None => false,
        }
    }

    /// Asserts pressure from outside the deadline machinery — a serving
    /// session signalling overload (deep admission queue). The executor's
    /// degradation lattice then fires exactly as it does under deadline
    /// pressure: cost-only downgrades, never rows.
    pub fn force_pressure(&self) {
        self.forced_pressure.set(true);
    }

    /// True once the makespan has passed the deadline outright.
    pub fn past_deadline(&self) -> bool {
        match self.cfg.deadline {
            Some(d) => self.makespan() > d,
            None => false,
        }
    }

    /// Opens a scatter phase: legs issued until [`end_phase`]
    /// (Scheduler::end_phase) start no earlier than now and overlap across
    /// shards. Phases do not nest — a second `begin_phase` is a no-op
    /// inside an open phase (the inner scatter joins the outer one).
    /// Returns `true` when this call actually opened the phase; callers
    /// that got `false` must not close it.
    pub fn begin_phase(&self) -> bool {
        if self.in_phase.get() {
            return false;
        }
        self.in_phase.set(true);
        self.gate.set(self.now.get());
        self.phase_max.set(self.now.get());
        true
    }

    /// Closes the phase: the clock advances to the latest leg completion
    /// (the barrier — a gather returns when its slowest shard does).
    pub fn end_phase(&self) {
        if !self.in_phase.get() {
            return;
        }
        self.in_phase.set(false);
        self.now.set(self.now.get().max(self.phase_max.get()));
        self.horizon.set(self.horizon.get().max(self.now.get()));
    }

    /// Earliest lane start for `shard` given the phase gate, reserving the
    /// lane through `finish` once chosen.
    fn lane_start(&self, shard: usize, gate: f64) -> (usize, f64) {
        let mut lanes = self.lanes.borrow_mut();
        if lanes.len() <= shard {
            lanes.resize_with(shard + 1, Vec::new);
        }
        let shard_lanes = &mut lanes[shard];
        if shard_lanes.len() < self.cfg.lanes_per_shard {
            shard_lanes.push(0.0);
        }
        // Deterministic choice: the earliest-free lane, lowest index wins.
        let (best, _) = shard_lanes
            .iter()
            .enumerate()
            .fold((0usize, f64::INFINITY), |(bi, bt), (i, &t)| {
                if t < bt {
                    (i, t)
                } else {
                    (bi, bt)
                }
            });
        (best, shard_lanes[best].max(gate))
    }

    fn reserve_lane(&self, shard: usize, lane: usize, until: f64) {
        self.lanes.borrow_mut()[shard][lane] = until;
    }

    fn check_deadline(&self, finish: f64) -> bool {
        match self.cfg.deadline {
            Some(d) if finish > d && !self.missed.get() => {
                self.missed.set(true);
                self.deadline_misses.set(self.deadline_misses.get() + 1);
                true
            }
            _ => false,
        }
    }

    /// Issues one leg of charged cost `cost`. Inside a phase with a shard,
    /// the leg runs on the shard's earliest-free lane concurrently with
    /// other shards' legs; otherwise it runs serially and advances the
    /// clock by its full cost.
    pub fn leg(&self, shard: Option<usize>, label: &str, cost: f64) -> LegTiming {
        self.serial.set(self.serial.get() + cost);
        let (start, finish) = match (self.in_phase.get(), shard) {
            (true, Some(s)) => {
                let (lane, start) = self.lane_start(s, self.gate.get());
                let finish = start + cost;
                self.reserve_lane(s, lane, finish);
                self.phase_max.set(self.phase_max.get().max(finish));
                (start, finish)
            }
            _ => {
                let start = self.now.get();
                let finish = start + cost;
                self.now.set(finish);
                (start, finish)
            }
        };
        self.horizon.set(self.horizon.get().max(finish));
        self.legs.borrow_mut().push(LegRecord {
            label: label.to_string(),
            shard,
            start,
            finish,
            hedged: false,
        });
        LegTiming {
            start,
            finish,
            crossed_deadline: self.check_deadline(finish),
        }
    }

    /// Issues a hedged leg: the primary attempt starts normally; once it
    /// has been in flight for `threshold` seconds without completing, the
    /// hedge attempt launches on a replica; the first completion wins and
    /// the loser is cancelled. The lane is held only until the winner
    /// finishes. Both attempts' costs count toward the serial total — both
    /// were issued; overlap-and-cancel is exactly what the hedge buys.
    pub fn hedged_leg(
        &self,
        shard: usize,
        label: &str,
        primary_cost: f64,
        threshold: f64,
        hedge_cost: f64,
    ) -> HedgedTiming {
        self.race(shard, label, primary_cost, threshold, hedge_cost, true)
    }

    /// A hedge race whose hedge attempt itself failed: the primary's
    /// answer stands regardless of timing. The hedge's issued work still
    /// counts toward the serial total, and the counters still record one
    /// hedge and one cancellation (the failed hedge is the cancelled leg).
    pub fn failed_hedge_leg(
        &self,
        shard: usize,
        label: &str,
        primary_cost: f64,
        threshold: f64,
        hedge_cost: f64,
    ) -> HedgedTiming {
        self.race(shard, label, primary_cost, threshold, hedge_cost, false)
    }

    fn race(
        &self,
        shard: usize,
        label: &str,
        primary_cost: f64,
        threshold: f64,
        hedge_cost: f64,
        hedge_may_win: bool,
    ) -> HedgedTiming {
        self.serial
            .set(self.serial.get() + primary_cost + hedge_cost);
        self.hedges.set(self.hedges.get() + 1);
        self.cancels.set(self.cancels.get() + 1);
        let (in_phase, gate) = (self.in_phase.get(), self.gate.get());
        let (lane, start) = if in_phase {
            self.lane_start(shard, gate)
        } else {
            (usize::MAX, self.now.get())
        };
        let primary_finish = start + primary_cost;
        let hedge_finish = start + threshold + hedge_cost;
        let hedge_won = hedge_may_win && hedge_finish < primary_finish;
        let finish = if hedge_won {
            hedge_finish
        } else {
            primary_finish
        };
        if in_phase {
            self.reserve_lane(shard, lane, finish);
            self.phase_max.set(self.phase_max.get().max(finish));
        } else {
            self.now.set(finish);
        }
        self.horizon.set(self.horizon.get().max(finish));
        self.legs.borrow_mut().push(LegRecord {
            label: label.to_string(),
            shard: Some(shard),
            start,
            finish,
            hedged: true,
        });
        HedgedTiming {
            start,
            finish,
            hedge_won,
            crossed_deadline: self.check_deadline(finish),
        }
    }

    /// Deterministic render of the concurrent timeline: one line per leg in
    /// issue order, with start/finish stamps, plus a summary footer.
    pub fn timeline(&self) -> String {
        let mut out = format!(
            "timeline (seed {:#x}, lanes/shard {}{}):\n",
            self.cfg.seed,
            self.cfg.lanes_per_shard,
            match self.cfg.deadline {
                Some(d) => format!(", deadline {d:.2}s"),
                None => String::new(),
            }
        );
        for leg in self.legs.borrow().iter() {
            let shard = match leg.shard {
                Some(s) => format!("shard{s}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  [{:>9.3} → {:>9.3}] {:<7} {}{}",
                leg.start,
                leg.finish,
                shard,
                leg.label,
                if leg.hedged { " (hedged)" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "  makespan {:.3}s, serial {:.3}s, hedges {}, cancels {}, deadline misses {}, degradations {}",
            self.makespan(),
            self.serial_total(),
            self.hedges(),
            self.cancels(),
            self.deadline_misses(),
            self.degradations()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_legs_advance_the_clock_by_their_full_cost() {
        let s = Scheduler::new(SchedConfig::new(1));
        let a = s.leg(None, "search", 3.0);
        let b = s.leg(Some(0), "retrieve", 4.0);
        assert_eq!((a.start, a.finish), (0.0, 3.0));
        assert_eq!((b.start, b.finish), (3.0, 7.0), "no phase → serial");
        assert_eq!(s.makespan(), 7.0);
        assert_eq!(s.serial_total(), 7.0);
    }

    #[test]
    fn phase_legs_on_distinct_shards_overlap() {
        let s = Scheduler::new(SchedConfig::new(1));
        s.leg(None, "plan", 1.0);
        s.begin_phase();
        for shard in 0..4 {
            let t = s.leg(Some(shard), "gather", 3.0);
            assert_eq!((t.start, t.finish), (1.0, 4.0), "shard {shard}");
        }
        s.end_phase();
        assert_eq!(s.makespan(), 4.0, "barrier at the slowest leg");
        assert_eq!(s.serial_total(), 13.0);
        assert!(s.makespan() < s.serial_total());
        // The next serial leg starts after the barrier.
        let t = s.leg(None, "merge", 0.5);
        assert_eq!(t.start, 4.0);
    }

    #[test]
    fn same_shard_legs_queue_on_the_lane_limit() {
        let s = Scheduler::new(SchedConfig::new(1).with_lanes(2));
        s.begin_phase();
        let a = s.leg(Some(0), "p0", 2.0);
        let b = s.leg(Some(0), "p1", 2.0);
        let c = s.leg(Some(0), "p2", 2.0);
        s.end_phase();
        assert_eq!((a.start, a.finish), (0.0, 2.0));
        assert_eq!((b.start, b.finish), (0.0, 2.0), "second lane");
        assert_eq!((c.start, c.finish), (2.0, 4.0), "queued behind lane 0");
        assert_eq!(s.makespan(), 4.0);
    }

    #[test]
    fn nested_phases_join_the_outer_scatter() {
        let s = Scheduler::new(SchedConfig::new(1));
        s.begin_phase();
        s.leg(Some(0), "outer", 5.0);
        s.begin_phase(); // no-op
        s.leg(Some(1), "inner", 1.0);
        s.end_phase(); // closes the single open phase
        assert_eq!(s.makespan(), 5.0);
        s.end_phase(); // no-op
        assert_eq!(s.makespan(), 5.0);
    }

    #[test]
    fn hedged_leg_takes_the_winner_time() {
        let s = Scheduler::new(SchedConfig::new(1));
        // Slow primary (10s), hedge after 2s costing 3s → winner at 5s.
        let t = s.hedged_leg(0, "search", 10.0, 2.0, 3.0);
        assert!(t.hedge_won);
        assert_eq!((t.start, t.finish), (0.0, 5.0));
        assert_eq!(s.makespan(), 5.0);
        assert_eq!(s.serial_total(), 13.0, "both attempts were issued");
        assert_eq!((s.hedges(), s.cancels()), (1, 1));
        // Fast primary: the hedge loses.
        let t = s.hedged_leg(1, "search", 1.0, 2.0, 3.0);
        assert!(!t.hedge_won);
        assert_eq!(t.finish - t.start, 1.0);
    }

    #[test]
    fn failed_hedge_never_wins_but_still_counts() {
        let s = Scheduler::new(SchedConfig::new(1));
        // Timing-wise the hedge would win (5s < 10s), but it faulted.
        let t = s.failed_hedge_leg(0, "search", 10.0, 2.0, 3.0);
        assert!(!t.hedge_won);
        assert_eq!(t.finish, 10.0, "the primary's completion stands");
        assert_eq!(s.serial_total(), 13.0);
        assert_eq!((s.hedges(), s.cancels()), (1, 1));
    }

    #[test]
    fn deadline_is_flagged_once() {
        let s = Scheduler::new(SchedConfig::new(1).with_deadline(5.0));
        assert!(!s.under_pressure());
        let a = s.leg(None, "a", 3.0);
        assert!(!a.crossed_deadline);
        assert!(s.under_pressure(), "3.0 ≥ half of 5.0");
        assert!(!s.past_deadline());
        let b = s.leg(None, "b", 3.0);
        assert!(b.crossed_deadline, "first crossing flagged");
        assert!(s.past_deadline());
        let c = s.leg(None, "c", 1.0);
        assert!(!c.crossed_deadline, "flagged once per query");
        assert_eq!(s.deadline_misses(), 1);
    }

    #[test]
    fn timeline_renders_deterministically() {
        let run = || {
            let s = Scheduler::new(SchedConfig::new(7).with_deadline(20.0));
            s.begin_phase();
            s.leg(Some(0), "gather/shard0", 3.0);
            s.leg(Some(1), "gather/shard1", 4.0);
            s.end_phase();
            s.hedged_leg(0, "retrieve", 9.0, 2.0, 3.0);
            s.note_degradation();
            s.timeline()
        };
        let a = run();
        assert_eq!(a, run(), "byte-identical render");
        assert!(a.contains("gather/shard1"), "{a}");
        assert!(a.contains("(hedged)"), "{a}");
        assert!(a.contains("degradations 1"), "{a}");
    }
}
