//! The multi-tenant serving session.
//!
//! Everything below `serve` executes one `ForeignJoin` at a time; this
//! module admits a deterministic *stream* of `(tenant, query)` requests
//! against one shared engine and answers the robustness question the
//! single-query world never faced: what happens when tenants collectively
//! demand more than the server's caps, budgets, and fault-degraded
//! capacity can deliver — and how does one misbehaving tenant get kept
//! from starving the rest?
//!
//! Four mechanisms, all deterministic and all typed (a request is never
//! silently dropped):
//!
//! 1. **Admission control & budgets.** Each tenant carries a cost budget
//!    in `Usage` currency (simulated seconds). Admission estimates the
//!    request's plan cost with the real optimizer — planning is
//!    charge-free — and rejects requests whose estimate exceeds the
//!    tenant's remaining budget ([`ServeError::Rejected`]); the estimate
//!    of every *queued* request is held as a committed reservation so a
//!    tenant cannot over-admit against the same remainder. A per-query
//!    [`CostCeiling`] guard aborts mid-flight when actuals overrun
//!    ([`ServeError::BudgetExhausted`]); partial charges stay booked in
//!    the ordinary ledger and are reconciled into the tenant's invoice.
//! 2. **Overload shedding with graceful degradation.** Admitted requests
//!    wait in per-tenant FIFO queues drained by deficit round-robin:
//!    every round each backlogged tenant's deficit grows by one quantum
//!    and it dispatches head requests while their estimates fit, so
//!    long-run service share is equal per tenant regardless of demand.
//!    When the total backlog reaches the degradation watermark,
//!    dispatches run under forced scheduler pressure and the executor's
//!    degradation lattice (probe skip, PTs/PRtp→Ts) trades cost for
//!    latency — never rows. Only when the bounded queue still overflows
//!    is the lowest-priority queued request shed ([`ServeError::Shed`]).
//! 3. **Tenant fault isolation.** Each tenant owns its `RetryBudget`
//!    (breakers, adaptive attempts, hedge thresholds), its fault-model
//!    fold (plans are priced from the tenant's *own* observed ledger, not
//!    the shared one), and its `Usage` invoice measured as a `since`
//!    delta around each execution. The aggregate server ledger decomposes
//!    exactly into Σ tenant invoices + the migration bucket.
//! 4. **Cross-query sharing.** Each tenant carries a session-scoped
//!    [`ProbeCache`] (epoch-keyed, namespaced by full probe identity) and
//!    a plan cache keyed on (spec shape, topology epoch, folded cost
//!    params). Both are charge-free and result-preserving; hits emit
//!    charge-free `CacheHit` events so the trace↔ledger audit stays
//!    exact. Caches are per-tenant by design: sharing *within* a tenant,
//!    unconditional isolation *across* tenants.
//!
//! The session also closes two carried ROADMAP loops when configured: it
//! auto-executes the windowed monitor's rebalance advice through the
//! online migration engine under a session migration budget, and it
//! adopts the drift watchdog's `calibrate_trace` refit into the live
//! session's `CostParams`.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use textjoin_obs::{
    calibrate_trace, Event, EventKind, FanoutSink, Monitor, MonitorConfig, Recorder, RingSink,
    Sink, TraceCalibration,
};
use textjoin_rel::catalog::Catalog;
use textjoin_rel::table::Table;
use textjoin_text::rebalance::MigrationPlan;
use textjoin_text::server::{TextError, TextServer, Usage};
use textjoin_text::service::TextService;
use textjoin_text::shard::ShardedTextServer;

use crate::cost::params::CostParams;
use crate::exec::{execute_prepared, plan_prepared, prepare_input, ExecHooks};
use crate::methods::cache::ProbeCache;
use crate::methods::{CostCeiling, MethodError};
use crate::optimizer::multi::{ExecutionSpace, PlannedQuery};
use crate::optimizer::plan::MultiJoinQuery;
use crate::retry::{RetryBudget, RetryPolicy};

/// A tenant of the serving session.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (reports and bench tables).
    pub name: String,
    /// Cost budget for the whole session, in simulated seconds of
    /// `Usage` currency. Admission, reservation, and the mid-flight
    /// ceiling all draw on it.
    pub budget: f64,
    /// Shedding priority: under queue overflow the *lowest* priority
    /// queued request is shed first (ties broken toward the newest
    /// arrival). Higher numbers are more important.
    pub priority: u32,
}

impl TenantSpec {
    /// A tenant with the given name, budget, and priority.
    pub fn new(name: &str, budget: f64, priority: u32) -> Self {
        Self {
            name: name.to_owned(),
            budget,
            priority,
        }
    }
}

/// Session tuning. Every knob is deterministic; nothing reads a clock or
/// an unseeded RNG.
#[derive(Clone)]
pub struct ServeConfig {
    /// Cost-model parameters every request is planned with (before the
    /// per-tenant fault fold / calibration adoption).
    pub params: CostParams,
    /// Plan space for the optimizer.
    pub space: ExecutionSpace,
    /// Bound on the total number of queued admitted requests; pushing
    /// past it sheds the lowest-priority queued request.
    pub queue_cap: usize,
    /// Deficit-round-robin quantum, simulated seconds added to each
    /// backlogged tenant's deficit per round. Must be positive.
    pub quantum: f64,
    /// Total backlog at or above which dispatches run under forced
    /// scheduler pressure (the degradation lattice: cost only, never
    /// rows). `0` disables forced degradation.
    pub degrade_depth: usize,
    /// Stats-aware shard routing for the serve path. On by default —
    /// the legacy single-query bins keep it opt-in so their recorded
    /// tables stay byte-identical.
    pub stats_routing: bool,
    /// Simulated-seconds budget for auto-executed rebalance advice;
    /// `0.0` disables auto-rebalancing. Requires an elastic backend and
    /// an attached monitor to have any effect.
    pub migration_budget: f64,
    /// Batch size (documents) for auto-executed migrations.
    pub rebalance_batch_docs: usize,
    /// Adopt a `calibrate_trace` refit of the session trace into the
    /// live `CostParams` after every this many dispatches; `0` disables
    /// adoption.
    pub adopt_drift_every: usize,
    /// Attach a windowed health monitor as a tee on the session
    /// recorder. Required for auto-rebalancing (it is the advice
    /// source).
    pub monitor: Option<MonitorConfig>,
    /// EXPLAIN ANALYZE on every dispatch: per-node actual attribution, a
    /// per-query plan-level Q-error column on the tenant report, and one
    /// free `EstimateSample` trace event per completed query (the
    /// misestimation detector's feed). Pure observation — results,
    /// ledgers, and invoices are byte-identical with it on or off.
    pub analyze: bool,
}

impl ServeConfig {
    /// A session over `params` with serving defaults: PrL plan space,
    /// queue capacity 8, quantum 50 simulated seconds, degradation at
    /// backlog 6, stats-aware routing on, auto-rebalance and drift
    /// adoption off, no monitor.
    pub fn new(params: CostParams) -> Self {
        Self {
            params,
            space: ExecutionSpace::Prl,
            queue_cap: 8,
            quantum: 50.0,
            degrade_depth: 6,
            stats_routing: true,
            migration_budget: 0.0,
            rebalance_batch_docs: 24,
            adopt_drift_every: 0,
            monitor: None,
            analyze: false,
        }
    }
}

/// Typed refusal or failure for one request. A request always terminates
/// in exactly one of: a successful [`QueryOutcome`], or one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission rejected the request: the optimizer's estimate exceeded
    /// the tenant's remaining (uncommitted) budget. Nothing was charged.
    Rejected {
        /// The optimizer's estimated plan cost.
        est_cost: f64,
        /// Budget remaining (net of queued reservations) at admission.
        remaining: f64,
    },
    /// The per-query budget guard aborted mid-flight: actual charges
    /// overran the admitted remainder. The partial charge stays booked
    /// and is reconciled into the tenant's invoice.
    BudgetExhausted {
        /// Simulated seconds actually charged before the abort.
        spent: f64,
        /// Simulated seconds the tenant had remaining at dispatch.
        remaining: f64,
    },
    /// The bounded admission queue overflowed and this request was the
    /// lowest-priority queued work.
    Shed {
        /// Requests still queued after the shed.
        queued: u64,
    },
    /// Planning or execution failed for engine reasons (unknown
    /// relation, no plan, text-server refusal...).
    Exec(MethodError),
}

/// A successful execution inside the session.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result rows (the same multiset every join method computes).
    pub table: Table,
    /// Total simulated cost charged to the query.
    pub total_cost: f64,
    /// Critical-path completion time under the transport scheduler.
    pub makespan: f64,
    /// Degradation-lattice downgrades taken under pressure.
    pub degradations: u64,
}

/// The complete, typed story of one request through the session.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// 0-based arrival index in the session stream.
    pub arrival: u64,
    /// Tenant index the request belonged to.
    pub tenant: usize,
    /// The optimizer's estimate at admission (`0.0` if planning failed
    /// before an estimate existed).
    pub est_cost: f64,
    /// How the request ended.
    pub outcome: Result<QueryOutcome, ServeError>,
    /// `Usage` delta booked to the tenant for this request (zero for
    /// rejected/shed requests; partial for budget aborts).
    pub invoice: Usage,
}

/// Per-tenant session accounting.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The spec the session was configured with.
    pub name: String,
    /// Configured budget, simulated seconds.
    pub budget: f64,
    /// Shedding priority.
    pub priority: u32,
    /// Sum of the tenant's per-request `Usage` deltas — the invoice.
    pub invoice: Usage,
    /// Simulated seconds drawn from the budget (text + relational).
    pub spent: f64,
    /// Requests admitted (passed the budget check and were queued).
    pub admitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests shed from the queue under overload.
    pub shed: u64,
    /// Requests aborted mid-flight by the budget guard.
    pub budget_aborted: u64,
    /// Requests that failed for engine reasons.
    pub exec_errors: u64,
    /// Total cost of each completed request, dispatch order.
    pub costs: Vec<f64>,
    /// Plan-level cost Q-error of each completed request, dispatch order.
    /// Empty unless [`ServeConfig::analyze`] was on.
    pub cost_qs: Vec<f64>,
    /// Session probe-cache counters `(hits, misses, evicted)`.
    pub probe_cache: (u64, u64, u64),
    /// Plan-cache hits.
    pub plan_hits: u64,
}

/// What [`ServeSession::run`] returns.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One record per stream request, arrival order. No silent drops:
    /// `records.len()` equals the stream length.
    pub records: Vec<QueryRecord>,
    /// Per-tenant accounting, tenant-index order.
    pub tenants: Vec<TenantReport>,
    /// Aggregate server `Usage` over the session (delta from session
    /// start). Decomposes exactly into Σ tenant invoices + `migration`.
    pub aggregate: Usage,
    /// The migration bucket's delta over the session.
    pub migration: Usage,
    /// The full session trace (serve events included).
    pub trace: Vec<Event>,
    /// Rendered monitor health table, when a monitor was attached.
    pub monitor_table: Option<String>,
    /// Documents moved by auto-executed rebalance advice.
    pub migrated_docs: u64,
    /// Calibration refits adopted into the live params.
    pub refits: u64,
}

/// The shared text backend. `Elastic` grants the session mutable access
/// so it can drive the online migration engine; queries themselves only
/// ever use the immutable [`TextService`] surface.
pub enum Backend<'a> {
    /// A single unsharded server.
    Single(&'a TextServer),
    /// A sharded/replicated server the session may rebalance online.
    Elastic(&'a mut ShardedTextServer),
}

impl Backend<'_> {
    fn service(&self) -> &dyn TextService {
        match self {
            Backend::Single(s) => *s,
            Backend::Elastic(s) => &**s,
        }
    }
}

/// An admitted request waiting in its tenant's queue, carrying the plan
/// and the cache key it was admitted under (a topology change between
/// admission and dispatch invalidates the key and forces a replan, so
/// planner pricing and executor routing stay in lockstep).
struct QueuedReq {
    arrival: u64,
    query: MultiJoinQuery,
    est: f64,
    key: String,
    planned: PlannedQuery,
}

struct TenantState {
    spec: TenantSpec,
    invoice: Usage,
    /// Simulated seconds drawn from the budget so far.
    spent: f64,
    /// Σ estimates of queued (admitted, undispatched) requests.
    committed: f64,
    retry: RetryBudget,
    probe_cache: RefCell<ProbeCache>,
    plans: BTreeMap<String, PlannedQuery>,
    plan_hits: u64,
    queue: VecDeque<QueuedReq>,
    deficit: f64,
    admitted: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
    budget_aborted: u64,
    exec_errors: u64,
    costs: Vec<f64>,
    cost_qs: Vec<f64>,
}

impl TenantState {
    fn new(spec: TenantSpec) -> Self {
        Self {
            spec,
            invoice: Usage::default(),
            spent: 0.0,
            committed: 0.0,
            retry: RetryBudget::new(RetryPolicy::standard()),
            probe_cache: RefCell::new(ProbeCache::new()),
            plans: BTreeMap::new(),
            plan_hits: 0,
            queue: VecDeque::new(),
            deficit: 0.0,
            admitted: 0,
            completed: 0,
            rejected: 0,
            shed: 0,
            budget_aborted: 0,
            exec_errors: 0,
            costs: Vec::new(),
            cost_qs: Vec::new(),
        }
    }

    fn remaining(&self) -> f64 {
        self.spec.budget - self.spent - self.committed
    }
}

/// The deterministic serving session. Construct with [`new`], feed a
/// stream with [`run`].
///
/// [`new`]: Self::new
/// [`run`]: Self::run
pub struct ServeSession<'a> {
    backend: Backend<'a>,
    catalog: &'a Catalog,
    cfg: ServeConfig,
    tenants: Vec<TenantState>,
    recorder: Rc<Recorder>,
    ring: Rc<RingSink>,
    monitor: Option<Rc<Monitor>>,
    calibration: Option<TraceCalibration>,
    dispatches_since_refit: usize,
    refits: u64,
    advice_consumed: usize,
    migrated_docs: u64,
    records: Vec<QueryRecord>,
    start_usage: Usage,
    start_migration: Usage,
}

impl<'a> ServeSession<'a> {
    /// Opens a session: installs the session recorder (a ring trace,
    /// teed into the monitor when one is configured) on the backend,
    /// switches stats-aware routing to the configured serve default, and
    /// snapshots the ledgers the report's deltas are measured from.
    pub fn new(
        backend: Backend<'a>,
        catalog: &'a Catalog,
        tenants: Vec<TenantSpec>,
        cfg: ServeConfig,
    ) -> Self {
        assert!(cfg.quantum > 0.0, "the DRR quantum must be positive");
        assert!(!tenants.is_empty(), "a session needs at least one tenant");
        let ring = Rc::new(RingSink::unbounded());
        let monitor = cfg.monitor.clone().map(|mc| Rc::new(Monitor::new(mc)));
        let mut sinks: Vec<Rc<dyn Sink>> = vec![ring.clone()];
        if let Some(m) = &monitor {
            sinks.push(m.clone());
        }
        let recorder = Recorder::new(Rc::new(FanoutSink::new(sinks)));
        match &backend {
            Backend::Single(s) => s.set_recorder(Some(recorder.clone())),
            Backend::Elastic(s) => {
                s.set_recorder(Some(recorder.clone()));
                s.set_stats_routing(cfg.stats_routing);
            }
        }
        let start_usage = backend.service().usage();
        let start_migration = match &backend {
            Backend::Elastic(s) => s.migration_usage(),
            Backend::Single(_) => Usage::default(),
        };
        Self {
            backend,
            catalog,
            cfg,
            tenants: tenants.into_iter().map(TenantState::new).collect(),
            recorder,
            ring,
            monitor,
            calibration: None,
            dispatches_since_refit: 0,
            refits: 0,
            advice_consumed: 0,
            migrated_docs: 0,
            records: Vec::new(),
            start_usage,
            start_migration,
        }
    }

    /// Runs the whole stream: each `(tenant, query)` arrival is admitted
    /// (or refused, typed), then one DRR round dispatches what the
    /// deficits afford; after the last arrival the backlog drains with
    /// further rounds. Returns the full per-request, per-tenant, and
    /// ledger story.
    pub fn run(mut self, stream: &[(usize, MultiJoinQuery)]) -> ServeReport {
        for (arrival, (tenant, query)) in stream.iter().enumerate() {
            assert!(*tenant < self.tenants.len(), "unknown tenant index");
            self.admit(arrival as u64, *tenant, query);
            self.round();
            self.maintain();
        }
        while self.total_queued() > 0 {
            self.round();
            self.maintain();
        }
        self.finish()
    }

    fn total_queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Admission: estimate with the real optimizer (charge-free), check
    /// the tenant's uncommitted budget remainder, then queue — shedding
    /// on overflow. Every path records a typed outcome or queues.
    fn admit(&mut self, arrival: u64, ti: usize, query: &MultiJoinQuery) {
        let service = self.backend.service();
        let fold = self.tenants[ti].invoice;
        let input = match prepare_input(
            query,
            self.catalog,
            service,
            self.cfg.params,
            self.calibration.as_ref(),
            Some(&fold),
        ) {
            Ok(i) => i,
            Err(e) => {
                self.tenants[ti].exec_errors += 1;
                self.records.push(QueryRecord {
                    arrival,
                    tenant: ti,
                    est_cost: 0.0,
                    outcome: Err(ServeError::Exec(e)),
                    invoice: Usage::default(),
                });
                return;
            }
        };
        let key = plan_key(query, service.topology_epoch(), &input.params);
        let planned = match self.lookup_plan(ti, &key, &input) {
            Ok(p) => p,
            Err(e) => {
                self.tenants[ti].exec_errors += 1;
                self.records.push(QueryRecord {
                    arrival,
                    tenant: ti,
                    est_cost: 0.0,
                    outcome: Err(ServeError::Exec(e)),
                    invoice: Usage::default(),
                });
                return;
            }
        };
        let est = planned.est_cost;
        let remaining = self.tenants[ti].remaining();
        if est > remaining {
            self.recorder.emit(EventKind::BudgetExhausted {
                tenant: ti as u64,
                arrival,
                spent_ms: to_ms(est),
                remaining_ms: to_ms(remaining.max(0.0)),
            });
            self.tenants[ti].rejected += 1;
            self.records.push(QueryRecord {
                arrival,
                tenant: ti,
                est_cost: est,
                outcome: Err(ServeError::Rejected {
                    est_cost: est,
                    remaining,
                }),
                invoice: Usage::default(),
            });
            return;
        }
        self.recorder.emit(EventKind::Admit {
            tenant: ti as u64,
            arrival,
            est_cost: est,
        });
        self.tenants[ti].admitted += 1;
        self.tenants[ti].committed += est;
        self.tenants[ti].queue.push_back(QueuedReq {
            arrival,
            query: query.clone(),
            est,
            key,
            planned,
        });
        while self.total_queued() > self.cfg.queue_cap {
            self.shed_one();
        }
    }

    /// Sheds the lowest-priority queued request (ties broken toward the
    /// newest arrival) — a typed refusal, never a silent drop.
    fn shed_one(&mut self) {
        let victim = self
            .tenants
            .iter()
            .enumerate()
            .flat_map(|(ti, t)| {
                t.queue
                    .iter()
                    .map(move |q| (t.spec.priority, q.arrival, ti))
            })
            .min_by(|a, b| {
                // Lowest priority first; among those, newest arrival.
                a.0.cmp(&b.0).then(b.1.cmp(&a.1))
            })
            .expect("shed_one is only called with a non-empty backlog");
        let (_, arrival, ti) = victim;
        let pos = self.tenants[ti]
            .queue
            .iter()
            .position(|q| q.arrival == arrival)
            .expect("victim is queued");
        let req = self.tenants[ti].queue.remove(pos).expect("victim position");
        self.tenants[ti].committed -= req.est;
        self.tenants[ti].shed += 1;
        let queued = self.total_queued() as u64;
        self.recorder.emit(EventKind::Shed {
            tenant: ti as u64,
            arrival: req.arrival,
            queued,
        });
        self.records.push(QueryRecord {
            arrival: req.arrival,
            tenant: ti,
            est_cost: req.est,
            outcome: Err(ServeError::Shed { queued }),
            invoice: Usage::default(),
        });
    }

    /// One deficit-round-robin round: every backlogged tenant's deficit
    /// grows by a quantum and head requests dispatch while their
    /// estimates fit. An emptied queue resets its deficit (no hoarding).
    fn round(&mut self) {
        let pressure = self.cfg.degrade_depth > 0 && self.total_queued() >= self.cfg.degrade_depth;
        for ti in 0..self.tenants.len() {
            if self.tenants[ti].queue.is_empty() {
                continue;
            }
            self.tenants[ti].deficit += self.cfg.quantum;
            while let Some(head_est) = self.tenants[ti].queue.front().map(|q| q.est) {
                if head_est > self.tenants[ti].deficit {
                    break;
                }
                let req = self.tenants[ti].queue.pop_front().expect("head exists");
                self.tenants[ti].deficit -= req.est;
                self.tenants[ti].committed -= req.est;
                self.dispatch(ti, req, pressure);
            }
            if self.tenants[ti].queue.is_empty() {
                self.tenants[ti].deficit = 0.0;
            }
        }
    }

    /// Executes one dequeued request with the tenant's isolation kit:
    /// its retry budget, its session caches, its budget ceiling, and a
    /// plan re-validated against the current topology epoch. The invoice
    /// delta is measured around the execution regardless of outcome.
    fn dispatch(&mut self, ti: usize, req: QueuedReq, pressure: bool) {
        self.dispatches_since_refit += 1;
        let service = self.backend.service();
        let fold = self.tenants[ti].invoice;
        let input = match prepare_input(
            &req.query,
            self.catalog,
            service,
            self.cfg.params,
            self.calibration.as_ref(),
            Some(&fold),
        ) {
            Ok(i) => i,
            Err(e) => {
                self.tenants[ti].exec_errors += 1;
                self.records.push(QueryRecord {
                    arrival: req.arrival,
                    tenant: ti,
                    est_cost: req.est,
                    outcome: Err(ServeError::Exec(e)),
                    invoice: Usage::default(),
                });
                return;
            }
        };
        let key = plan_key(&req.query, service.topology_epoch(), &input.params);
        let planned = if key == req.key {
            req.planned
        } else {
            // `service` re-borrows inside `lookup_plan`; end this one.
            // Topology or pricing moved while the request queued: the
            // admitted plan may no longer match what the executor will
            // route, so replan (through the cache) at today's epoch.
            match self.lookup_plan(ti, &key, &input) {
                Ok(p) => p,
                Err(e) => {
                    self.tenants[ti].exec_errors += 1;
                    self.records.push(QueryRecord {
                        arrival: req.arrival,
                        tenant: ti,
                        est_cost: req.est,
                        outcome: Err(ServeError::Exec(e)),
                        invoice: Usage::default(),
                    });
                    return;
                }
            }
        };
        let remaining = (self.tenants[ti].spec.budget - self.tenants[ti].spent).max(0.0);
        let service = self.backend.service();
        let before = service.usage();
        let hooks = ExecHooks {
            retry_budget: Some(&self.tenants[ti].retry),
            probe_cache: Some(&self.tenants[ti].probe_cache),
            ceiling: Some(CostCeiling {
                baseline: before.total_cost(),
                limit: remaining,
            }),
            force_pressure: pressure,
            analyze: self.cfg.analyze,
        };
        let res = execute_prepared(&input, &planned, self.catalog, service, &hooks);
        let delta = service.usage().since(&before);
        self.tenants[ti].invoice.accumulate(&delta);
        let (outcome, spent_now) = match res {
            Ok(out) => {
                self.tenants[ti].completed += 1;
                self.tenants[ti].costs.push(out.total_cost);
                if let Some(pq) = &out.plan_quality {
                    self.tenants[ti].cost_qs.push(pq.cost_q);
                }
                let spent = out.total_cost;
                (
                    Ok(QueryOutcome {
                        table: out.table,
                        total_cost: out.total_cost,
                        makespan: out.makespan,
                        degradations: out.degradations,
                    }),
                    spent,
                )
            }
            Err(MethodError::Text(TextError::BudgetExceeded { spent_ms, limit_ms })) => {
                self.tenants[ti].budget_aborted += 1;
                self.recorder.emit(EventKind::BudgetExhausted {
                    tenant: ti as u64,
                    arrival: req.arrival,
                    spent_ms,
                    remaining_ms: limit_ms,
                });
                (
                    Err(ServeError::BudgetExhausted {
                        spent: delta.total_cost(),
                        remaining,
                    }),
                    delta.total_cost(),
                )
            }
            Err(e) => {
                self.tenants[ti].exec_errors += 1;
                (Err(ServeError::Exec(e)), delta.total_cost())
            }
        };
        self.tenants[ti].spent += spent_now;
        self.records.push(QueryRecord {
            arrival: req.arrival,
            tenant: ti,
            est_cost: req.est,
            outcome,
            invoice: delta,
        });
    }

    /// Plan-cache lookup for a tenant: a hit reuses the cached plan and
    /// emits a charge-free `CacheHit`; a miss runs the optimizer and
    /// remembers the result under the full (spec, epoch, params) key.
    fn lookup_plan(
        &mut self,
        ti: usize,
        key: &str,
        input: &crate::optimizer::multi::PlannerInput,
    ) -> Result<PlannedQuery, MethodError> {
        if let Some(p) = self.tenants[ti].plans.get(key).cloned() {
            self.tenants[ti].plan_hits += 1;
            self.recorder.emit(EventKind::CacheHit {
                scope: "plan",
                epoch: self.backend.service().topology_epoch(),
            });
            return Ok(p);
        }
        let planned = plan_prepared(input, self.backend.service(), self.cfg.space)?;
        self.tenants[ti]
            .plans
            .insert(key.to_owned(), planned.clone());
        Ok(planned)
    }

    /// Between-round maintenance: adopt a drift refit into the live
    /// params, and auto-execute pending monitor advice through the
    /// online migration engine while the migration budget lasts.
    fn maintain(&mut self) {
        if self.cfg.adopt_drift_every > 0 && self.dispatches_since_refit >= self.cfg.adopt_drift_every
        {
            self.dispatches_since_refit = 0;
            self.calibration = Some(calibrate_trace(&self.ring.events()));
            self.refits += 1;
        }
        self.rebalance();
    }

    /// Auto-executes pending monitor advice through the online migration
    /// engine while the migration budget lasts. Runs strictly between
    /// dispatches (and once at session close, where the monitor flushes
    /// its final window), so every transfer lands in the migration
    /// bucket and never inside a tenant's invoice delta.
    fn rebalance(&mut self) {
        if self.cfg.migration_budget <= 0.0 {
            return;
        }
        let Some(mon) = &self.monitor else {
            return;
        };
        let advice = mon.advice();
        let Backend::Elastic(sh) = &mut self.backend else {
            self.advice_consumed = advice.len();
            return;
        };
        while self.advice_consumed < advice.len() {
            let a = &advice[self.advice_consumed];
            self.advice_consumed += 1;
            let spent = sh.migration_usage().since(&self.start_migration).total_cost();
            if spent >= self.cfg.migration_budget {
                continue;
            }
            let plan = MigrationPlan::from_advice(a, self.cfg.rebalance_batch_docs);
            let journal = sh.begin_migration(plan);
            self.migrated_docs += journal.entries.iter().map(|e| e.docs).sum::<u64>();
            // Transiently refused batches resume from the journal; the
            // step cap bounds a migration a permanently dead replica
            // would otherwise spin on.
            let mut steps = 0u32;
            while sh.journal().is_some_and(|j| !j.finished()) && steps < 10_000 {
                let _ = sh.migrate_batch();
                steps += 1;
            }
        }
    }

    /// Closes the session: finishes the monitor, detaches nothing (the
    /// recorder stays for the caller to inspect), and assembles the
    /// report.
    fn finish(mut self) -> ServeReport {
        if let Some(m) = &self.monitor {
            m.finish();
        }
        // The finish above flushed the monitor's last partial window,
        // which may have derived fresh advice; act on it so a session
        // never exits leaving funded advice unexecuted.
        self.rebalance();
        let aggregate = self.backend.service().usage().since(&self.start_usage);
        let migration = match &self.backend {
            Backend::Elastic(s) => s.migration_usage().since(&self.start_migration),
            Backend::Single(_) => Usage::default(),
        };
        self.records.sort_by_key(|r| r.arrival);
        let tenants = self
            .tenants
            .iter()
            .map(|t| TenantReport {
                name: t.spec.name.clone(),
                budget: t.spec.budget,
                priority: t.spec.priority,
                invoice: t.invoice,
                spent: t.spent,
                admitted: t.admitted,
                completed: t.completed,
                rejected: t.rejected,
                shed: t.shed,
                budget_aborted: t.budget_aborted,
                exec_errors: t.exec_errors,
                costs: t.costs.clone(),
                cost_qs: t.cost_qs.clone(),
                probe_cache: t.probe_cache.borrow().full_stats(),
                plan_hits: t.plan_hits,
            })
            .collect();
        ServeReport {
            records: self.records,
            tenants,
            aggregate,
            migration,
            trace: self.ring.events(),
            monitor_table: self.monitor.as_ref().map(|m| m.render_table()),
            migrated_docs: self.migrated_docs,
            refits: self.refits,
        }
    }
}

/// The plan-cache key: canonical spec shape, the topology epoch the
/// statistics were gathered at, and the *folded* cost params (so a
/// tenant whose observed fault rate moved re-prices instead of reusing a
/// stale plan). Debug renderings are deterministic and total.
fn plan_key(query: &MultiJoinQuery, epoch: u64, params: &CostParams) -> String {
    format!("{query:?}|epoch={epoch}|{params:?}")
}

/// Milliseconds of simulated time, for the integer-valued events.
fn to_ms(seconds: f64) -> u64 {
    (seconds * 1000.0).round() as u64
}

/// Deterministic inclusive percentile over completed-query costs
/// (nearest-rank). Empty input yields `0.0`.
pub fn percentile(costs: &[f64], q: f64) -> f64 {
    if costs.is_empty() {
        return 0.0;
    }
    let mut sorted = costs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("costs are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}
