//! Deterministic retry with simulated exponential backoff.
//!
//! The loose-integration boundary is a WAN (paper, Sections 2.3 and 7):
//! connection refusals and timeouts are part of the service contract, not
//! exceptional conditions. This module gives every join method a uniform,
//! *deterministic* response to them — bounded retries with exponential
//! backoff whose waiting time is **simulated seconds charged into the
//! server's [`Usage`] ledger** (`retries` / `time_backoff`), never
//! wall-clock sleeps. Experiments stay byte-reproducible; the chaos bench
//! can report fault overhead as exact numbers.
//!
//! Only errors whose [`TextError::is_transient`] is true are retried.
//! Everything else (term-cap violations, cap renegotiation, unknown ids,
//! parse errors) is deterministic — retrying verbatim cannot help, so the
//! error surfaces immediately and the caller decides whether to *degrade*
//! (split the package, fall back to TS, skip the probe) instead.

use std::cell::RefCell;

use textjoin_text::server::TextError;
use textjoin_text::service::TextService;

/// Bounded-attempt retry schedule with exponential simulated backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Simulated seconds waited after the first failed attempt.
    pub base_backoff: f64,
    /// Multiplier applied per further failure (2.0 = classic doubling).
    pub multiplier: f64,
    /// Ceiling on any single wait.
    pub max_backoff: f64,
}

impl RetryPolicy {
    /// Up to 4 attempts, waiting 1s, 2s, 4s (capped at 30s). Paired with
    /// fault plans whose `max_consecutive < 4`, every operation succeeds.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 1.0,
            multiplier: 2.0,
            max_backoff: 30.0,
        }
    }

    /// One attempt, no retries, no backoff charges — pre-fault behavior.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: 0.0,
            multiplier: 1.0,
            max_backoff: 0.0,
        }
    }

    /// Simulated wait after `failed_attempts` consecutive failures (≥ 1).
    pub fn backoff_after(&self, failed_attempts: u32) -> f64 {
        let exp = self.multiplier.powi(failed_attempts.saturating_sub(1) as i32);
        (self.base_backoff * exp).min(self.max_backoff)
    }

    /// Mean simulated wait per retry under this schedule: the average of
    /// the waits charged between attempts (0 for a never-retry policy).
    /// The planner's expected-retry cost term is `rate × mean_backoff`.
    pub fn mean_backoff(&self) -> f64 {
        if self.max_attempts <= 1 {
            return 0.0;
        }
        let waits = self.max_attempts - 1;
        (1..=waits).map(|f| self.backoff_after(f)).sum::<f64>() / f64::from(waits)
    }

    /// Runs `op`, retrying transient failures up to `max_attempts` total
    /// tries. Each wait is charged to `server`'s ledger via
    /// [`TextService::charge_backoff`]. Non-transient errors and the final
    /// transient error pass through unchanged.
    pub fn run<T>(
        &self,
        server: &dyn TextService,
        mut op: impl FnMut() -> Result<T, TextError>,
    ) -> Result<T, TextError> {
        let attempts = self.max_attempts.max(1);
        let mut failed = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && failed + 1 < attempts => {
                    failed += 1;
                    server.charge_backoff(self.backoff_after(failed));
                    if let Some(rec) = server.recorder() {
                        rec.emit(textjoin_obs::EventKind::Retry {
                            shard: None,
                            attempt: failed,
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Adaptive per-shard retry budget: tracks each shard's observed fault
/// rate with a deterministic integer EWMA and scales the attempt count of
/// a base [`RetryPolicy`] accordingly — fewer attempts against shards that
/// are persistently dead (retrying a black hole only buys backoff), more
/// against shards that have been healthy (a rare blip there is worth
/// riding out).
///
/// The rate is fixed-point in parts-per-1024. Each observed attempt
/// updates `r ← r − r/8 + (faulted ? 128 : 0)`: all-faults converges to
/// the fixpoint 1024, all-successes decays toward 0 (integer division
/// stalls at ≤ 7, comfortably inside the "healthy" band). Integer
/// arithmetic only — byte-reproducible across runs and platforms.
#[derive(Debug)]
pub struct RetryBudget {
    base: RetryPolicy,
    /// Per-shard EWMA fault rates, parts-per-1024; grows on demand.
    rates: RefCell<Vec<u32>>,
    /// Per-shard circuit breakers over the primary replica; grows on
    /// demand alongside `rates`.
    breakers: RefCell<Vec<Breaker>>,
    /// Per-shard EWMA of the primary leg's charged latency (simulated
    /// seconds); 0.0 = no observation yet. Drives the hedge threshold.
    latencies: RefCell<Vec<f64>>,
}

/// Per-shard circuit-breaker state. While open, routed calls skip the
/// shard's primary replica entirely (charging it nothing) and every
/// [`HALF_OPEN_INTERVAL`]-th call half-open-probes it instead; a probe
/// success closes the breaker.
#[derive(Debug, Clone, Copy, Default)]
struct Breaker {
    open: bool,
    /// Calls routed while open; drives the deterministic probe cadence.
    skips: u32,
}

/// Routing decision for one replicated shard leg, from
/// [`RetryBudget::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Breaker closed: try the primary first with the shard's full budget.
    Primary,
    /// Breaker open: skip the primary, go straight to the secondaries.
    Replica,
    /// Breaker open, probe turn: one unretried attempt on the primary; a
    /// success closes the breaker.
    HalfOpenProbe,
}

/// Every this-many-th routed call against an open breaker probes the
/// primary instead of skipping it.
const HALF_OPEN_INTERVAL: u32 = 4;

/// EWMA weight of one observation, parts-per-1024 (1/8 of full scale).
const EWMA_STEP: u32 = 128;
/// Above this rate (3/4 of observations faulting) a shard counts as
/// persistently dead.
const DEAD_THRESHOLD: u32 = 768;
/// Below this rate (1/4) a shard counts as healthy.
const HEALTHY_THRESHOLD: u32 = 256;

/// A primary leg this many times slower than its shard's latency EWMA is a
/// straggler worth hedging.
const HEDGE_MULTIPLIER: f64 = 3.0;
/// Hedging never fires below this absolute latency (seconds) — protects
/// cold EWMAs and trivially cheap legs from spurious duplicate work.
const HEDGE_FLOOR: f64 = 1.0;

impl RetryBudget {
    /// A budget that scales `base` per shard; all shards start neutral
    /// (rate 0 = healthy).
    pub fn new(base: RetryPolicy) -> Self {
        RetryBudget {
            base,
            rates: RefCell::new(Vec::new()),
            breakers: RefCell::new(Vec::new()),
            latencies: RefCell::new(Vec::new()),
        }
    }

    /// Records the charged latency of one successful primary leg against
    /// `shard`. Float EWMA with α = 1/8, seeded with the first observation
    /// — the same decay the fault-rate EWMA uses, so both adapt on the same
    /// horizon. IEEE arithmetic on an identical observation stream is
    /// identical, so this stays byte-reproducible.
    pub fn observe_latency(&self, shard: usize, seconds: f64) {
        let mut lat = self.latencies.borrow_mut();
        if lat.len() <= shard {
            lat.resize(shard + 1, 0.0);
        }
        let l = lat[shard];
        lat[shard] = if l == 0.0 { seconds } else { l + (seconds - l) / 8.0 };
    }

    /// The shard's current latency EWMA (0.0 = nothing observed yet).
    pub fn latency_of(&self, shard: usize) -> f64 {
        self.latencies.borrow().get(shard).copied().unwrap_or(0.0)
    }

    /// The hedge threshold for `shard`: a primary leg whose charged cost
    /// exceeds this launches a hedge on a secondary replica. Infinite
    /// until the EWMA has seen at least one leg (never hedge cold), then
    /// `max(3 × EWMA, 1s)`.
    pub fn hedge_threshold(&self, shard: usize) -> f64 {
        let l = self.latency_of(shard);
        if l == 0.0 {
            f64::INFINITY
        } else {
            (HEDGE_MULTIPLIER * l).max(HEDGE_FLOOR)
        }
    }

    /// Records the outcome of one attempt against `shard`.
    pub fn observe(&self, shard: usize, faulted: bool) {
        let mut rates = self.rates.borrow_mut();
        if rates.len() <= shard {
            rates.resize(shard + 1, 0);
        }
        let r = rates[shard];
        rates[shard] = r - r / 8 + if faulted { EWMA_STEP } else { 0 };
    }

    /// The shard's current EWMA fault rate in parts-per-1024.
    pub fn rate_of(&self, shard: usize) -> u32 {
        self.rates.borrow().get(shard).copied().unwrap_or(0)
    }

    /// Attempts granted against `shard` right now: tightened to
    /// `max(2, base − 2)` when the shard looks persistently dead, the base
    /// count in the uncertain middle band, loosened to `base + 2` when the
    /// shard has been healthy.
    pub fn attempts_for(&self, shard: usize) -> u32 {
        let base = self.base.max_attempts.max(1);
        match self.rate_of(shard) {
            r if r >= DEAD_THRESHOLD => base.saturating_sub(2).max(2),
            r if r >= HEALTHY_THRESHOLD => base,
            _ => base + 2,
        }
    }

    /// The base policy with `max_attempts` swapped for the shard's current
    /// budget; backoff schedule unchanged.
    pub fn policy_for(&self, shard: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.attempts_for(shard),
            ..self.base
        }
    }

    /// Routing decision for the next replicated leg against `shard`. With
    /// the breaker closed this is always [`Route::Primary`]; while open,
    /// calls skip the primary, and every [`HALF_OPEN_INTERVAL`]-th one
    /// half-open-probes it. The probe cadence is a plain counter, so two
    /// identical call sequences route identically.
    pub fn route(&self, shard: usize) -> Route {
        let mut breakers = self.breakers.borrow_mut();
        if breakers.len() <= shard {
            breakers.resize_with(shard + 1, Breaker::default);
        }
        let b = &mut breakers[shard];
        if !b.open {
            return Route::Primary;
        }
        b.skips += 1;
        if b.skips.is_multiple_of(HALF_OPEN_INTERVAL) {
            Route::HalfOpenProbe
        } else {
            Route::Replica
        }
    }

    /// Opens `shard`'s breaker if its EWMA says the primary is persistently
    /// dead (rate ≥ the dead threshold). Called when a primary retry leg
    /// exhausts transiently. Returns true only on the closed → open
    /// transition, so the caller emits exactly one `CircuitOpen` event.
    pub fn open_breaker_if_dead(&self, shard: usize) -> bool {
        if self.rate_of(shard) < DEAD_THRESHOLD {
            return false;
        }
        let mut breakers = self.breakers.borrow_mut();
        if breakers.len() <= shard {
            breakers.resize_with(shard + 1, Breaker::default);
        }
        let b = &mut breakers[shard];
        if b.open {
            return false;
        }
        b.open = true;
        b.skips = 0;
        true
    }

    /// Closes `shard`'s breaker after a successful half-open probe.
    /// Returns true only on the open → closed transition.
    pub fn close_breaker(&self, shard: usize) -> bool {
        let mut breakers = self.breakers.borrow_mut();
        match breakers.get_mut(shard) {
            Some(b) if b.open => {
                b.open = false;
                b.skips = 0;
                true
            }
            _ => false,
        }
    }

    /// Whether `shard`'s breaker is currently open.
    pub fn breaker_open(&self, shard: usize) -> bool {
        self.breakers
            .borrow()
            .get(shard)
            .map(|b| b.open)
            .unwrap_or(false)
    }

    /// Source replica order for a migration transfer off `shard`: the
    /// shard's routing order with the primary demoted to last while its
    /// breaker is open. A transfer should not spend its first attempt on a
    /// replica queries already proved persistently dead, but the primary
    /// stays reachable as a last resort (it may hold the only copy).
    pub fn transfer_order(
        &self,
        sh: &textjoin_text::shard::ShardedTextServer,
        shard: usize,
    ) -> Vec<usize> {
        let mut order = sh.routing_order(shard);
        if self.breaker_open(shard) && order.len() > 1 {
            let primary = sh.primary_of(shard);
            order.retain(|&r| r != primary);
            order.push(primary);
        }
        order
    }
}

/// Runs one migration batch with breaker-aware source routing: while the
/// current move's source shard has an open breaker, the transfer draws
/// from the replicas first ([`RetryBudget::transfer_order`]). The
/// journal-backed resume semantics of
/// [`migrate_batch_via`](textjoin_text::shard::ShardedTextServer::migrate_batch_via)
/// are unchanged — this only reorders which replica the source leg tries
/// first.
pub fn migration_step(
    sh: &textjoin_text::shard::ShardedTextServer,
    budget: &RetryBudget,
) -> Result<textjoin_text::rebalance::MigrationProgress, TextError> {
    match sh.current_move() {
        Some((_, src, _)) => {
            let order = budget.transfer_order(sh, src);
            sh.migrate_batch_via(Some(&order))
        }
        None => sh.migrate_batch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_text::server::TextServer;
    use textjoin_text::doc::{Document, TextSchema};
    use textjoin_text::faults::{Fault, FaultPlan};
    use textjoin_text::index::Collection;
    use textjoin_text::parse::parse_search;

    fn server_with(plan: FaultPlan) -> TextServer {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(Document::new().with(ti, "Query Processing"));
        let mut s = TextServer::new(c);
        s.set_fault_plan(plan);
        s
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff_after(1), 1.0);
        assert_eq!(p.backoff_after(2), 2.0);
        assert_eq!(p.backoff_after(3), 4.0);
        assert_eq!(p.backoff_after(10), 30.0, "capped at max_backoff");
    }

    #[test]
    fn retries_through_transient_faults_and_charges_backoff() {
        // Ops 0 and 1 fault; op 2 (third attempt) succeeds.
        let s = server_with(FaultPlan::scripted(vec![
            (0, Fault::Unavailable),
            (1, Fault::Timeout { after_postings: 7 }),
        ]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let policy = RetryPolicy::standard();
        let r = policy.run(&s, || s.search(&expr)).expect("third try wins");
        assert_eq!(r.len(), 1);
        let u = s.usage();
        assert_eq!(u.faults, 2);
        assert_eq!(u.retries, 2);
        assert_eq!(u.invocations, 3, "two failed attempts + one success");
        assert!((u.time_backoff - (1.0 + 2.0)).abs() < 1e-9);
        // Decomposition stays exact: 3 c_i + postings + short + backoff.
        let c = s.constants();
        let expected = c.c_i * 3.0
            + c.c_p * u.postings_processed as f64
            + c.c_s * u.docs_short as f64
            + u.time_backoff;
        assert!((u.total_cost() - expected).abs() < 1e-9);
    }

    #[test]
    fn exhausted_retries_surface_the_last_transient_error() {
        let s = server_with(FaultPlan::scripted(vec![
            (0, Fault::Unavailable),
            (1, Fault::Unavailable),
            (2, Fault::Unavailable),
            (3, Fault::Unavailable),
        ]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let err = RetryPolicy::standard()
            .run(&s, || s.search(&expr))
            .unwrap_err();
        assert!(matches!(err, TextError::Unavailable));
        let u = s.usage();
        assert_eq!(u.invocations, 4, "all four attempts charged");
        assert_eq!(u.retries, 3, "three waits between four attempts");
    }

    #[test]
    fn non_transient_errors_pass_through_without_retry() {
        let s = server_with(FaultPlan::scripted(vec![(
            0,
            Fault::CapReduced { new_m: 4 },
        )]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let err = RetryPolicy::standard()
            .run(&s, || s.search(&expr))
            .unwrap_err();
        assert!(matches!(err, TextError::CapReduced { new_m: 4 }));
        let u = s.usage();
        assert_eq!(u.invocations, 1, "no second attempt");
        assert_eq!(u.retries, 0);
    }

    #[test]
    fn mean_backoff_averages_the_wait_schedule() {
        // standard(): waits 1s, 2s, 4s between 4 attempts → mean 7/3.
        let p = RetryPolicy::standard();
        assert!((p.mean_backoff() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(RetryPolicy::none().mean_backoff(), 0.0);
    }

    #[test]
    fn budget_tightens_on_dead_shards_and_loosens_on_healthy_ones() {
        let b = RetryBudget::new(RetryPolicy::standard());
        // Unobserved shards are healthy: base + 2 attempts.
        assert_eq!(b.attempts_for(0), 6);
        // A persistently dead shard converges above the dead threshold.
        for _ in 0..20 {
            b.observe(1, true);
        }
        assert!(b.rate_of(1) >= 768, "rate {}", b.rate_of(1));
        assert_eq!(b.attempts_for(1), 2, "max(2, 4 - 2)");
        // Recovery: successes decay the rate back through the bands.
        for _ in 0..3 {
            b.observe(1, false);
        }
        assert_eq!(b.attempts_for(1), 4, "middle band = base attempts");
        for _ in 0..10 {
            b.observe(1, false);
        }
        assert_eq!(b.attempts_for(1), 6, "healthy again");
        // Shard 0 was never touched by shard 1's history.
        assert_eq!(b.rate_of(0), 0);
        let p = b.policy_for(1);
        assert_eq!(p.max_attempts, 6);
        assert_eq!(p.base_backoff, RetryPolicy::standard().base_backoff);
    }

    #[test]
    fn budget_is_deterministic_integer_arithmetic() {
        let run = || {
            let b = RetryBudget::new(RetryPolicy::standard());
            let mut trace = Vec::new();
            for i in 0..50u32 {
                b.observe(0, i % 3 == 0);
                trace.push(b.rate_of(0));
            }
            trace
        };
        assert_eq!(run(), run(), "identical observation stream, identical rates");
    }

    #[test]
    fn breaker_opens_only_when_dead_and_probes_on_a_fixed_cadence() {
        let b = RetryBudget::new(RetryPolicy::standard());
        // A healthy shard cannot trip the breaker.
        assert!(!b.open_breaker_if_dead(1));
        assert_eq!(b.route(1), Route::Primary);
        // Drive the EWMA over the dead threshold, then trip it.
        for _ in 0..20 {
            b.observe(1, true);
        }
        assert!(b.open_breaker_if_dead(1), "closed -> open transition");
        assert!(!b.open_breaker_if_dead(1), "already open: no second event");
        assert!(b.breaker_open(1));
        // Skips 1..3 route to replicas; the 4th call probes.
        assert_eq!(b.route(1), Route::Replica);
        assert_eq!(b.route(1), Route::Replica);
        assert_eq!(b.route(1), Route::Replica);
        assert_eq!(b.route(1), Route::HalfOpenProbe);
        assert_eq!(b.route(1), Route::Replica, "cadence restarts after a probe");
        // A successful probe closes it; routing reverts to the primary.
        assert!(b.close_breaker(1), "open -> closed transition");
        assert!(!b.close_breaker(1), "already closed");
        assert!(!b.breaker_open(1));
        assert_eq!(b.route(1), Route::Primary);
        // Other shards were never affected.
        assert_eq!(b.route(0), Route::Primary);
    }

    #[test]
    fn latency_ewma_drives_the_hedge_threshold() {
        let b = RetryBudget::new(RetryPolicy::standard());
        // Cold shard: never hedge.
        assert_eq!(b.latency_of(0), 0.0);
        assert_eq!(b.hedge_threshold(0), f64::INFINITY);
        // First observation seeds the EWMA outright.
        b.observe_latency(0, 4.0);
        assert!((b.latency_of(0) - 4.0).abs() < 1e-12);
        assert!((b.hedge_threshold(0) - 12.0).abs() < 1e-12, "3 × EWMA");
        // Further observations decay with α = 1/8.
        b.observe_latency(0, 12.0);
        assert!((b.latency_of(0) - 5.0).abs() < 1e-12);
        // The floor protects trivially cheap legs.
        b.observe_latency(1, 0.05);
        assert!((b.hedge_threshold(1) - 1.0).abs() < 1e-12, "floored at 1s");
        // Shards are independent.
        assert_eq!(b.latency_of(2), 0.0);
    }

    #[test]
    fn policy_none_never_retries() {
        let s = server_with(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let err = RetryPolicy::none().run(&s, || s.search(&expr)).unwrap_err();
        assert!(matches!(err, TextError::Unavailable));
        assert_eq!(s.usage().retries, 0);
        assert_eq!(s.usage().time_backoff, 0.0);
    }

    fn sharded_corpus(n: usize) -> Collection {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let mut c = Collection::new(schema);
        for i in 0..n {
            c.add_document(Document::new().with(ti, format!("shared subject {i}")));
        }
        c
    }

    #[test]
    fn transfer_order_demotes_an_open_breaker_primary() {
        use textjoin_text::shard::ShardedTextServer;
        let sh = ShardedTextServer::replicated(&sharded_corpus(40), 4, 3, 7);
        let b = RetryBudget::new(RetryPolicy::standard());
        // Breaker closed: transfer order is the plain routing order.
        assert_eq!(b.transfer_order(&sh, 1), sh.routing_order(1));
        // Open shard 1's breaker the way the failover path does: enough
        // observed faults to cross the dead threshold.
        for _ in 0..16 {
            b.observe(1, true);
        }
        assert!(b.open_breaker_if_dead(1));
        let order = b.transfer_order(&sh, 1);
        let primary = sh.primary_of(1);
        assert_eq!(order.last(), Some(&primary), "primary demoted to last");
        let mut expected = sh.routing_order(1);
        expected.retain(|&r| r != primary);
        expected.push(primary);
        assert_eq!(order, expected, "replica order otherwise preserved");
        // Other shards are untouched.
        assert_eq!(b.transfer_order(&sh, 2), sh.routing_order(2));
    }

    #[test]
    fn migration_step_drains_an_open_breaker_source_via_replicas() {
        use textjoin_text::doc::DocId;
        use textjoin_text::rebalance::{MigrationPlan, MigrationProgress, Move, MoveStatus};
        use textjoin_text::shard::ShardedTextServer;
        use textjoin_text::service::TextService;

        let coll = sharded_corpus(40);
        let mut sh = ShardedTextServer::replicated(&coll, 4, 2, 7);
        let src = sh.owner_of(DocId(0)).unwrap();
        let dst = (src + 1) % 4;
        let primary = sh.primary_of(src);
        // The primary is persistently dead; queries have already opened
        // its breaker.
        sh.replica_mut(src, primary).set_fault_plan(FaultPlan::dead(9));
        let b = RetryBudget::new(RetryPolicy::standard());
        for _ in 0..16 {
            b.observe(src, true);
        }
        assert!(b.open_breaker_if_dead(src));
        sh.begin_migration(MigrationPlan::new(
            vec![Move { range: (DocId(0), DocId(40)), src, dst }],
            4,
        ));
        loop {
            match migration_step(&sh, &b).expect("replica-sourced transfer") {
                MigrationProgress::Idle => break,
                MigrationProgress::Committed { .. } => {}
            }
        }
        assert_eq!(sh.journal().unwrap().entries[0].status, MoveStatus::Done);
        // The dead primary was never asked: every out-leg succeeded on the
        // first (replica) attempt, so the migration bucket carries no
        // faults at all.
        assert_eq!(sh.migration_usage().faults, 0, "breaker pre-empted the dead leg");
        let single = TextServer::new(coll.clone());
        let got = TextService::search_str(&sh, "TI='shared'").unwrap();
        assert_eq!(got.docs, single.search_str("TI='shared'").unwrap().docs);
    }
}
