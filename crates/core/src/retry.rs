//! Deterministic retry with simulated exponential backoff.
//!
//! The loose-integration boundary is a WAN (paper, Sections 2.3 and 7):
//! connection refusals and timeouts are part of the service contract, not
//! exceptional conditions. This module gives every join method a uniform,
//! *deterministic* response to them — bounded retries with exponential
//! backoff whose waiting time is **simulated seconds charged into the
//! server's [`Usage`] ledger** (`retries` / `time_backoff`), never
//! wall-clock sleeps. Experiments stay byte-reproducible; the chaos bench
//! can report fault overhead as exact numbers.
//!
//! Only errors whose [`TextError::is_transient`] is true are retried.
//! Everything else (term-cap violations, cap renegotiation, unknown ids,
//! parse errors) is deterministic — retrying verbatim cannot help, so the
//! error surfaces immediately and the caller decides whether to *degrade*
//! (split the package, fall back to TS, skip the probe) instead.

use textjoin_text::server::{TextError, TextServer};

/// Bounded-attempt retry schedule with exponential simulated backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Simulated seconds waited after the first failed attempt.
    pub base_backoff: f64,
    /// Multiplier applied per further failure (2.0 = classic doubling).
    pub multiplier: f64,
    /// Ceiling on any single wait.
    pub max_backoff: f64,
}

impl RetryPolicy {
    /// Up to 4 attempts, waiting 1s, 2s, 4s (capped at 30s). Paired with
    /// fault plans whose `max_consecutive < 4`, every operation succeeds.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 1.0,
            multiplier: 2.0,
            max_backoff: 30.0,
        }
    }

    /// One attempt, no retries, no backoff charges — pre-fault behavior.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: 0.0,
            multiplier: 1.0,
            max_backoff: 0.0,
        }
    }

    /// Simulated wait after `failed_attempts` consecutive failures (≥ 1).
    pub fn backoff_after(&self, failed_attempts: u32) -> f64 {
        let exp = self.multiplier.powi(failed_attempts.saturating_sub(1) as i32);
        (self.base_backoff * exp).min(self.max_backoff)
    }

    /// Runs `op`, retrying transient failures up to `max_attempts` total
    /// tries. Each wait is charged to `server`'s ledger via
    /// [`TextServer::charge_backoff`]. Non-transient errors and the final
    /// transient error pass through unchanged.
    pub fn run<T>(
        &self,
        server: &TextServer,
        mut op: impl FnMut() -> Result<T, TextError>,
    ) -> Result<T, TextError> {
        let attempts = self.max_attempts.max(1);
        let mut failed = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && failed + 1 < attempts => {
                    failed += 1;
                    server.charge_backoff(self.backoff_after(failed));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_text::doc::{Document, TextSchema};
    use textjoin_text::faults::{Fault, FaultPlan};
    use textjoin_text::index::Collection;
    use textjoin_text::parse::parse_search;

    fn server_with(plan: FaultPlan) -> TextServer {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let mut c = Collection::new(schema);
        c.add_document(Document::new().with(ti, "Query Processing"));
        let mut s = TextServer::new(c);
        s.set_fault_plan(plan);
        s
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff_after(1), 1.0);
        assert_eq!(p.backoff_after(2), 2.0);
        assert_eq!(p.backoff_after(3), 4.0);
        assert_eq!(p.backoff_after(10), 30.0, "capped at max_backoff");
    }

    #[test]
    fn retries_through_transient_faults_and_charges_backoff() {
        // Ops 0 and 1 fault; op 2 (third attempt) succeeds.
        let s = server_with(FaultPlan::scripted(vec![
            (0, Fault::Unavailable),
            (1, Fault::Timeout { after_postings: 7 }),
        ]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let policy = RetryPolicy::standard();
        let r = policy.run(&s, || s.search(&expr)).expect("third try wins");
        assert_eq!(r.len(), 1);
        let u = s.usage();
        assert_eq!(u.faults, 2);
        assert_eq!(u.retries, 2);
        assert_eq!(u.invocations, 3, "two failed attempts + one success");
        assert!((u.time_backoff - (1.0 + 2.0)).abs() < 1e-9);
        // Decomposition stays exact: 3 c_i + postings + short + backoff.
        let c = s.constants();
        let expected = c.c_i * 3.0
            + c.c_p * u.postings_processed as f64
            + c.c_s * u.docs_short as f64
            + u.time_backoff;
        assert!((u.total_cost() - expected).abs() < 1e-9);
    }

    #[test]
    fn exhausted_retries_surface_the_last_transient_error() {
        let s = server_with(FaultPlan::scripted(vec![
            (0, Fault::Unavailable),
            (1, Fault::Unavailable),
            (2, Fault::Unavailable),
            (3, Fault::Unavailable),
        ]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let err = RetryPolicy::standard()
            .run(&s, || s.search(&expr))
            .unwrap_err();
        assert!(matches!(err, TextError::Unavailable));
        let u = s.usage();
        assert_eq!(u.invocations, 4, "all four attempts charged");
        assert_eq!(u.retries, 3, "three waits between four attempts");
    }

    #[test]
    fn non_transient_errors_pass_through_without_retry() {
        let s = server_with(FaultPlan::scripted(vec![(
            0,
            Fault::CapReduced { new_m: 4 },
        )]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let err = RetryPolicy::standard()
            .run(&s, || s.search(&expr))
            .unwrap_err();
        assert!(matches!(err, TextError::CapReduced { new_m: 4 }));
        let u = s.usage();
        assert_eq!(u.invocations, 1, "no second attempt");
        assert_eq!(u.retries, 0);
    }

    #[test]
    fn policy_none_never_retries() {
        let s = server_with(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
        let expr = parse_search("TI='query'", s.collection().schema()).unwrap();
        let err = RetryPolicy::none().run(&s, || s.search(&expr)).unwrap_err();
        assert!(matches!(err, TextError::Unavailable));
        assert_eq!(s.usage().retries, 0);
        assert_eq!(s.usage().time_backoff, 0.0);
    }
}
