//! # textjoin-core — federated join processing with external text sources
//!
//! The primary contribution of the reproduced paper: execution and
//! optimization techniques for conjunctive queries that join stored
//! relations with an external Boolean text retrieval system.
//!
//! * [`methods`] — the foreign-join methods: tuple substitution (TS),
//!   relational text processing (RTP), semi-join (SJ / SJ+RTP), and the
//!   probing family (P+TS, P+RTP) with the probe cache.
//! * [`cost`] — the Section 4 cost model: Table 1 parameters,
//!   g-correlated joint selectivity/fanout, and closed-form cost formulas
//!   for every method.
//! * [`stats`] — sampling-based estimation of predicate selectivity and
//!   fanout against a live text server (Section 4.2).
//! * [`optimizer`] — single-join method + probe-column selection
//!   (Section 5, incl. the Theorem 5.3 bounded search) and the multi-join
//!   System-R enumeration over PrL trees (Section 6).
//! * [`exec`] — plan execution against a relational catalog and the text
//!   server, with per-operator cost accounting.
//! * [`runtime`] — runtime re-optimization: budget-guarded executors for
//!   the fetch-heavy methods that fall back to tuple substitution when
//!   fanout estimates prove unreliable (the safeguard Section 5 points to).
//! * [`sched`] — the deterministic virtual-time transport scheduler:
//!   bounded-concurrency scatter legs, hedged replica reads, per-query
//!   deadlines, and the makespan (critical-path) cost they induce.
//! * [`serve`] — the multi-tenant serving session: admission control
//!   with per-tenant cost budgets, deficit-round-robin fairness with
//!   typed overload shedding, tenant fault isolation (per-tenant retry
//!   budgets, invoices, and fault-model folds), and session-scoped
//!   probe/plan caches.

pub mod cost;
pub mod exec;
pub mod methods;
pub mod optimizer;
pub mod query;
pub mod retry;
pub mod runtime;
pub mod sched;
pub mod serve;
pub mod stats;
